"""Instruction representation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ProgramError
from .opcodes import LATENCY, Opcode, is_control, is_memory


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Registers are small integers (architectural names); ``dest is None`` for
    instructions that produce no register value (stores, branches).  Memory
    instructions carry a static address descriptor: the accessed *region*
    (an index into the program's region table), a per-iteration *stride* in
    bytes and a fixed byte *offset*.  The dynamic address of execution
    ``i`` of the enclosing block is::

        region.base + (i * stride + offset) % region.size

    which lets both simulators generate identical address streams without a
    heap model.
    """

    opcode: Opcode
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = field(default=())
    mem_region: Optional[int] = None
    mem_stride: int = 0
    mem_offset: int = 0

    def __post_init__(self) -> None:
        if is_memory(self.opcode) and self.mem_region is None:
            raise ProgramError(f"{self.opcode} requires a mem_region")
        if not is_memory(self.opcode) and self.mem_region is not None:
            raise ProgramError(f"{self.opcode} must not carry a mem_region")
        if self.opcode is Opcode.LOAD and self.dest is None:
            raise ProgramError("LOAD must write a destination register")
        if is_control(self.opcode) and self.dest is not None:
            raise ProgramError("control instructions write no register")
        if self.mem_stride < 0 or self.mem_offset < 0:
            raise ProgramError("mem_stride / mem_offset must be non-negative")

    @property
    def latency(self) -> int:
        """Best-case execution latency in cycles."""
        return LATENCY[self.opcode]

    @property
    def is_memory(self) -> bool:
        """True if this instruction accesses memory."""
        return is_memory(self.opcode)

    @property
    def is_control(self) -> bool:
        """True if this instruction is a branch or jump."""
        return is_control(self.opcode)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.opcode.value]
        if self.dest is not None:
            parts.append(f"r{self.dest}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.mem_region is not None:
            parts.append(f"[reg{self.mem_region}+{self.mem_offset}+i*{self.mem_stride}]")
        return f"<{' '.join(parts)}>"
