"""Whole-program representation: blocks, CFG edges, memory regions, loops."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import ProgramError
from .block import BasicBlock
from .loops import LoopNest


@dataclass(frozen=True)
class MemRegion:
    """A contiguous data region (array / heap arena) a program accesses."""

    region_id: int
    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ProgramError(f"region {self.name!r}: size must be positive")
        if self.base < 0:
            raise ProgramError(f"region {self.name!r}: negative base address")


@dataclass(frozen=True)
class Program:
    """A static program: indexed basic blocks, CFG, data regions, loop nest.

    Blocks must be stored with ``blocks[i].block_id == i``.  ``successors``
    maps a block id to the ids control may flow to; it is informational for
    the trace generator (which drives control flow from the workload spec)
    but validated for consistency so analyses can rely on it.
    """

    name: str
    blocks: Tuple[BasicBlock, ...]
    successors: Mapping[int, Tuple[int, ...]]
    regions: Tuple[MemRegion, ...]
    loops: LoopNest = field(default_factory=LoopNest)
    entry: int = 0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ProgramError(f"program {self.name!r} has no blocks")
        for i, block in enumerate(self.blocks):
            if block.block_id != i:
                raise ProgramError(
                    f"program {self.name!r}: block at index {i} has id "
                    f"{block.block_id}"
                )
        n = len(self.blocks)
        if not 0 <= self.entry < n:
            raise ProgramError("entry block out of range")
        for src, dsts in self.successors.items():
            if not 0 <= src < n:
                raise ProgramError(f"successor edge from unknown block {src}")
            for dst in dsts:
                if not 0 <= dst < n:
                    raise ProgramError(f"edge {src}->{dst} targets unknown block")
        region_ids = [r.region_id for r in self.regions]
        if region_ids != list(range(len(region_ids))):
            raise ProgramError("region ids must be consecutive from 0")
        for block in self.blocks:
            for inst in block.memory_instructions:
                if inst.mem_region >= len(self.regions):
                    raise ProgramError(
                        f"block {block.name!r} references unknown region "
                        f"{inst.mem_region}"
                    )
        for loop in self.loops:
            for block_id in loop.blocks:
                if block_id >= n:
                    raise ProgramError(
                        f"loop {loop.loop_id} references unknown block {block_id}"
                    )

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def n_blocks(self) -> int:
        """Number of static basic blocks."""
        return len(self.blocks)

    def block(self, block_id: int) -> BasicBlock:
        """Return the block with the given id."""
        return self.blocks[block_id]

    @cached_property
    def block_sizes(self) -> np.ndarray:
        """Vector of block instruction counts, indexed by block id."""
        return np.array([b.size for b in self.blocks], dtype=np.int64)

    @cached_property
    def static_instruction_count(self) -> int:
        """Total static instructions across all blocks."""
        return int(self.block_sizes.sum())

    def region(self, region_id: int) -> MemRegion:
        """Return the region with the given id."""
        return self.regions[region_id]

    def region_table(self) -> Dict[str, MemRegion]:
        """Map region name -> region."""
        return {r.name: r for r in self.regions}
