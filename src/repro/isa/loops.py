"""Static loop structure (the "cyclic program structures" of the paper).

COASTS forms its coarse-grained intervals from iteration instances of
outer-level cyclic structures, so the program model carries an explicit loop
nest.  The nest is a forest: top-level loops have ``parent is None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..errors import ProgramError


@dataclass(frozen=True)
class Loop:
    """One static loop.

    ``header`` is the block id that starts every iteration; ``blocks`` is the
    set of block ids belonging to the loop body (header included).
    """

    loop_id: int
    header: int
    blocks: FrozenSet[int]
    parent: Optional[int] = None
    depth: int = 0

    def __post_init__(self) -> None:
        if self.header not in self.blocks:
            raise ProgramError(f"loop {self.loop_id}: header not in body")
        if self.depth < 0:
            raise ProgramError("loop depth must be non-negative")
        if self.parent is not None and self.parent == self.loop_id:
            raise ProgramError("loop cannot be its own parent")


@dataclass(frozen=True)
class LoopNest:
    """A forest of loops for one program."""

    loops: Tuple[Loop, ...] = field(default=())

    def __post_init__(self) -> None:
        ids = [loop.loop_id for loop in self.loops]
        if ids != list(range(len(ids))):
            raise ProgramError("loop ids must be consecutive from 0")
        for loop in self.loops:
            if loop.parent is not None:
                parent = self.loops[loop.parent]
                if loop.depth != parent.depth + 1:
                    raise ProgramError(
                        f"loop {loop.loop_id}: depth {loop.depth} inconsistent "
                        f"with parent depth {parent.depth}"
                    )
                if not loop.blocks <= parent.blocks:
                    raise ProgramError(
                        f"loop {loop.loop_id}: body escapes parent loop"
                    )
            elif loop.depth != 0:
                raise ProgramError(f"top-level loop {loop.loop_id} has depth != 0")

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self):
        return iter(self.loops)

    @property
    def top_level(self) -> List[Loop]:
        """Loops with no parent (the paper's outermost loops)."""
        return [loop for loop in self.loops if loop.parent is None]

    def children_of(self, loop_id: int) -> List[Loop]:
        """Immediate children of the given loop."""
        return [loop for loop in self.loops if loop.parent == loop_id]

    def loop_of_header(self, block_id: int) -> Optional[Loop]:
        """The loop whose header is *block_id*, if any."""
        for loop in self.loops:
            if loop.header == block_id:
                return loop
        return None

    def innermost_containing(self, block_id: int) -> Optional[Loop]:
        """The deepest loop containing *block_id*, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block_id in loop.blocks and (best is None or loop.depth > best.depth):
                best = loop
        return best

    def depth_map(self) -> Dict[int, int]:
        """Map block id -> nesting depth (0 for blocks outside any loop)."""
        depths: Dict[int, int] = {}
        for loop in self.loops:
            for block_id in loop.blocks:
                depths[block_id] = max(depths.get(block_id, 0), loop.depth + 1)
        return depths
