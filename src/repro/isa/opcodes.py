"""Opcode definitions for the synthetic RISC ISA.

The ISA is deliberately small: it exists to give the timing simulators real
dataflow (register dependences), real functional-unit contention and real
memory / branch behaviour, which is all SimPoint-style phase analysis ever
observes of an ISA.
"""

from __future__ import annotations

import enum


class FuClass(enum.Enum):
    """Functional-unit class an opcode executes on (Table I unit names)."""

    INT_ALU = "int_alu"
    LOAD_STORE = "load_store"
    FP_ADD = "fp_add"
    INT_MULT_DIV = "int_mult_div"
    FP_MULT_DIV = "fp_mult_div"


class Opcode(enum.Enum):
    """Instruction opcodes."""

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"


#: Execution latency in cycles for non-memory opcodes.  LOAD latency is the
#: dynamic cache access time; the value here is its best case (added to the
#: L1 hit latency by the scheduler).
LATENCY: dict[Opcode, int] = {
    Opcode.IALU: 1,
    Opcode.IMUL: 3,
    Opcode.IDIV: 12,
    Opcode.FADD: 2,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.LOAD: 1,
    Opcode.STORE: 1,
    Opcode.BRANCH: 1,
    Opcode.JUMP: 1,
    Opcode.NOP: 1,
}

#: Functional unit class required by each opcode.
FU_CLASS: dict[Opcode, FuClass] = {
    Opcode.IALU: FuClass.INT_ALU,
    Opcode.IMUL: FuClass.INT_MULT_DIV,
    Opcode.IDIV: FuClass.INT_MULT_DIV,
    Opcode.FADD: FuClass.FP_ADD,
    Opcode.FMUL: FuClass.FP_MULT_DIV,
    Opcode.FDIV: FuClass.FP_MULT_DIV,
    Opcode.LOAD: FuClass.LOAD_STORE,
    Opcode.STORE: FuClass.LOAD_STORE,
    Opcode.BRANCH: FuClass.INT_ALU,
    Opcode.JUMP: FuClass.INT_ALU,
    Opcode.NOP: FuClass.INT_ALU,
}

#: Opcodes that reference memory.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes that end a basic block with a control transfer.
CONTROL_OPCODES = frozenset({Opcode.BRANCH, Opcode.JUMP})

#: Floating-point opcodes (used for instruction-mix statistics).
FP_OPCODES = frozenset({Opcode.FADD, Opcode.FMUL, Opcode.FDIV})


def is_memory(opcode: Opcode) -> bool:
    """Return True if *opcode* references memory."""
    return opcode in MEMORY_OPCODES


def is_control(opcode: Opcode) -> bool:
    """Return True if *opcode* transfers control."""
    return opcode in CONTROL_OPCODES
