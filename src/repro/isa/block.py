"""Basic blocks."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

from ..errors import ProgramError
from .instruction import Instruction
from .opcodes import Opcode

#: Bytes per encoded instruction (used for I-cache addressing).
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class BasicBlock:
    """A static basic block: a straight-line run of instructions.

    ``block_id`` indexes the owning program's block table; ``address`` is the
    byte address of the first instruction (for I-cache simulation).
    ``branch_bias`` is the probability that the terminating conditional
    branch (if any) is taken when it is *not* acting as a loop back-edge; the
    trace generator uses it to emit noise paths, and the timing model uses it
    for the steady-state mispredict rate of data-dependent branches.
    """

    block_id: int
    name: str
    instructions: Tuple[Instruction, ...]
    address: int = 0
    branch_bias: float = 1.0

    def __post_init__(self) -> None:
        if self.block_id < 0:
            raise ProgramError("block_id must be non-negative")
        if not self.instructions:
            raise ProgramError(f"block {self.name!r} has no instructions")
        if not 0.0 <= self.branch_bias <= 1.0:
            raise ProgramError("branch_bias must be in [0, 1]")
        for inst in self.instructions[:-1]:
            if inst.is_control:
                raise ProgramError(
                    f"block {self.name!r}: control instruction before block end"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instructions)

    @cached_property
    def terminator(self) -> Instruction:
        """The last instruction of the block."""
        return self.instructions[-1]

    @cached_property
    def ends_in_branch(self) -> bool:
        """True if the block ends in a conditional branch."""
        return self.terminator.opcode is Opcode.BRANCH

    @cached_property
    def memory_instructions(self) -> Tuple[Instruction, ...]:
        """The LOAD/STORE instructions of the block, in program order."""
        return tuple(i for i in self.instructions if i.is_memory)

    @cached_property
    def load_count(self) -> int:
        """Number of LOAD instructions."""
        return sum(1 for i in self.instructions if i.opcode is Opcode.LOAD)

    @cached_property
    def store_count(self) -> int:
        """Number of STORE instructions."""
        return sum(1 for i in self.instructions if i.opcode is Opcode.STORE)

    @cached_property
    def end_address(self) -> int:
        """Byte address just past the last instruction."""
        return self.address + self.size * INSTRUCTION_BYTES

    def instruction_lines(self, line_size: int) -> range:
        """I-cache line indices touched when fetching the whole block."""
        first = self.address // line_size
        last = (self.end_address - 1) // line_size
        return range(first, last + 1)
