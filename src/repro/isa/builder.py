"""Program construction helpers.

:class:`ProgramBuilder` assembles programs block by block, synthesising
instruction sequences with a requested opcode mix and dataflow density, then
lays blocks out in memory and validates the result.  The workload generator
(:mod:`repro.workloads.generator`) is its main client, but it is public API:
examples use it to build custom benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ProgramError
from .block import INSTRUCTION_BYTES, BasicBlock
from .instruction import Instruction
from .loops import Loop, LoopNest
from .opcodes import Opcode
from .program import MemRegion, Program

#: Architectural integer/fp register count used when synthesising operands.
N_REGISTERS = 32


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of the non-terminator instructions in each opcode group.

    The remaining fraction (1 - sum of the others) is plain integer ALU work.
    """

    load: float = 0.20
    store: float = 0.10
    fp: float = 0.0
    mul_div: float = 0.03

    def __post_init__(self) -> None:
        parts = (self.load, self.store, self.fp, self.mul_div)
        if any(p < 0 for p in parts):
            raise ProgramError("instruction mix fractions must be non-negative")
        if sum(parts) > 1.0 + 1e-9:
            raise ProgramError("instruction mix fractions exceed 1.0")

    @property
    def ialu(self) -> float:
        """Implied integer-ALU fraction."""
        return max(0.0, 1.0 - (self.load + self.store + self.fp + self.mul_div))


def _counts_from_mix(n: int, mix: InstructionMix) -> Dict[str, int]:
    """Integer opcode-group counts for *n* instructions under *mix*."""
    loads = int(round(n * mix.load))
    stores = int(round(n * mix.store))
    fps = int(round(n * mix.fp))
    muls = int(round(n * mix.mul_div))
    overflow = loads + stores + fps + muls - n
    while overflow > 0:
        if fps > 0:
            fps -= 1
        elif muls > 0:
            muls -= 1
        elif stores > 0:
            stores -= 1
        else:
            loads -= 1
        overflow -= 1
    return {"load": loads, "store": stores, "fp": fps, "mul_div": muls}


class ProgramBuilder:
    """Incrementally build a :class:`~repro.isa.program.Program`.

    All randomness (operand selection, opcode ordering) is drawn from a
    seeded generator so identical builder calls produce identical programs.
    """

    def __init__(self, name: str, seed: int = 0) -> None:
        self.name = name
        self._rng = np.random.default_rng(seed)
        self._blocks: List[BasicBlock] = []
        self._edges: Dict[int, List[int]] = {}
        self._regions: List[MemRegion] = []
        self._loops: List[Loop] = []
        self._next_address = 0x1000
        self._next_region_base = 0x10_0000

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    def add_region(self, name: str, size: int) -> int:
        """Declare a data region of *size* bytes; returns its region id."""
        if size <= 0:
            raise ProgramError(f"region {name!r}: size must be positive")
        region_id = len(self._regions)
        # Regions are laid out disjointly, aligned to 4K pages, so distinct
        # regions never share cache lines.
        base = self._next_region_base
        self._regions.append(MemRegion(region_id, name, base, size))
        self._next_region_base = base + ((size + 0xFFF) & ~0xFFF) + 0x1000
        return region_id

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------
    def add_block(
        self,
        name: str,
        n_instructions: int,
        mix: Optional[InstructionMix] = None,
        region: Optional[int] = None,
        stride: int = 8,
        offset_step: int = 8,
        dependency_density: float = 0.45,
        branch_bias: float = 1.0,
        terminator: str = "branch",
    ) -> int:
        """Synthesise a block and append it; returns the new block id.

        ``dependency_density`` is the probability that each source operand
        reads one of the most recently written registers in the block,
        controlling the ILP the scheduler can extract.  ``terminator`` is
        ``"branch"``, ``"jump"`` or ``"none"``.
        """
        if n_instructions < 1:
            raise ProgramError("blocks need at least one instruction")
        if terminator not in ("branch", "jump", "none"):
            raise ProgramError(f"unknown terminator {terminator!r}")
        mix = mix or InstructionMix()
        if (mix.load or mix.store) and region is None and n_instructions > 1:
            counts = _counts_from_mix(n_instructions - 1, mix)
            if counts["load"] or counts["store"]:
                raise ProgramError(
                    f"block {name!r}: memory mix requires a region"
                )

        body_len = n_instructions - (0 if terminator == "none" else 1)
        opcodes = self._draw_opcodes(max(body_len, 0), mix)
        instructions = self._assemble(opcodes, region, stride, offset_step,
                                      dependency_density)
        if terminator == "branch":
            instructions.append(
                Instruction(Opcode.BRANCH, srcs=(int(self._rng.integers(N_REGISTERS)),))
            )
        elif terminator == "jump":
            instructions.append(Instruction(Opcode.JUMP))
        if not instructions:
            instructions.append(Instruction(Opcode.NOP))

        block_id = len(self._blocks)
        block = BasicBlock(
            block_id=block_id,
            name=name,
            instructions=tuple(instructions),
            address=self._next_address,
            branch_bias=branch_bias,
        )
        self._next_address = block.end_address + INSTRUCTION_BYTES * 2
        self._blocks.append(block)
        self._edges.setdefault(block_id, [])
        return block_id

    def _draw_opcodes(self, n: int, mix: InstructionMix) -> List[Opcode]:
        """Draw a shuffled opcode sequence matching *mix* for *n* slots."""
        counts = _counts_from_mix(n, mix)
        opcodes: List[Opcode] = []
        opcodes += [Opcode.LOAD] * counts["load"]
        opcodes += [Opcode.STORE] * counts["store"]
        fp_ops = counts["fp"]
        opcodes += [Opcode.FMUL] * (fp_ops // 3)
        opcodes += [Opcode.FADD] * (fp_ops - fp_ops // 3)
        opcodes += [Opcode.IMUL] * counts["mul_div"]
        opcodes += [Opcode.IALU] * (n - len(opcodes))
        self._rng.shuffle(opcodes)
        return opcodes

    def _assemble(
        self,
        opcodes: List[Opcode],
        region: Optional[int],
        stride: int,
        offset_step: int,
        dependency_density: float,
    ) -> List[Instruction]:
        """Turn an opcode sequence into instructions with synthetic dataflow."""
        instructions: List[Instruction] = []
        recent: List[int] = []
        mem_index = 0
        for opcode in opcodes:
            srcs = []
            n_srcs = 1 if opcode in (Opcode.LOAD,) else 2
            for _ in range(n_srcs):
                if recent and self._rng.random() < dependency_density:
                    srcs.append(recent[-1 - int(self._rng.integers(min(3, len(recent))))])
                else:
                    srcs.append(int(self._rng.integers(N_REGISTERS)))
            dest: Optional[int] = int(self._rng.integers(N_REGISTERS))
            kwargs = {}
            if opcode in (Opcode.LOAD, Opcode.STORE):
                kwargs = {
                    "mem_region": region,
                    "mem_stride": stride,
                    "mem_offset": mem_index * offset_step,
                }
                mem_index += 1
                if opcode is Opcode.STORE:
                    dest = None
            instructions.append(
                Instruction(opcode, dest=dest, srcs=tuple(srcs), **kwargs)
            )
            if dest is not None:
                recent.append(dest)
                if len(recent) > 8:
                    recent.pop(0)
        return instructions

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int) -> None:
        """Record a CFG edge."""
        for endpoint in (src, dst):
            if not 0 <= endpoint < len(self._blocks):
                raise ProgramError(f"edge references unknown block {endpoint}")
        if dst not in self._edges[src]:
            self._edges[src].append(dst)

    def add_loop(
        self, header: int, blocks: List[int], parent: Optional[int] = None
    ) -> int:
        """Register a loop over existing blocks; returns its loop id."""
        depth = 0 if parent is None else self._loops[parent].depth + 1
        loop = Loop(
            loop_id=len(self._loops),
            header=header,
            blocks=frozenset(blocks),
            parent=parent,
            depth=depth,
        )
        self._loops.append(loop)
        return loop.loop_id

    def build(self, entry: int = 0) -> Program:
        """Finalise and validate the program."""
        return Program(
            name=self.name,
            blocks=tuple(self._blocks),
            successors={k: tuple(v) for k, v in self._edges.items()},
            regions=tuple(self._regions),
            loops=LoopNest(tuple(self._loops)),
            entry=entry,
        )
