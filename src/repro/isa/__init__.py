"""Synthetic RISC ISA and static program model."""

from .block import INSTRUCTION_BYTES, BasicBlock
from .builder import InstructionMix, N_REGISTERS, ProgramBuilder
from .instruction import Instruction
from .loops import Loop, LoopNest
from .opcodes import FU_CLASS, LATENCY, FuClass, Opcode, is_control, is_memory
from .program import MemRegion, Program

__all__ = [
    "BasicBlock",
    "FU_CLASS",
    "FuClass",
    "INSTRUCTION_BYTES",
    "Instruction",
    "InstructionMix",
    "LATENCY",
    "Loop",
    "LoopNest",
    "MemRegion",
    "N_REGISTERS",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "is_control",
    "is_memory",
]
