"""Simulation-time accounting and speedups.

A sampling method's cost is determined by how many instructions it simulates
in detail and how many it fast-forwards functionally::

    T(plan) = detail_instructions * c_detail + functional_instructions * c_func

The per-instruction cost ratio ``c_detail / c_func = 33`` is calibrated from
the paper itself (DESIGN.md section 2): it is the unique ratio that maps the
paper's Table III instruction fractions onto its reported 6.78x / 14.04x
speedups.  Speedups between methods are ratios of these times, exactly as
the paper computes them; the (one-off, shared) profiling pass is reported
separately and excluded, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_COST_MODEL, CostModel
from ..errors import SamplingError
from .points import SamplingPlan


@dataclass(frozen=True)
class SimulationCost:
    """Instruction counts by simulation mode for one plan (or baseline)."""

    detail_instructions: int
    functional_instructions: int
    total_instructions: int
    profile_instructions: int = 0

    def __post_init__(self) -> None:
        if min(self.detail_instructions, self.functional_instructions) < 0:
            raise SamplingError("negative instruction counts")
        if self.total_instructions <= 0:
            raise SamplingError("total_instructions must be positive")

    @property
    def detail_fraction(self) -> float:
        """Detail instructions / program instructions."""
        return self.detail_instructions / self.total_instructions

    @property
    def functional_fraction(self) -> float:
        """Functional instructions / program instructions."""
        return self.functional_instructions / self.total_instructions

    def time(self, model: CostModel = DEFAULT_COST_MODEL,
             include_profiling: bool = False) -> float:
        """Simulated-time units under *model*."""
        time = (
            self.detail_instructions * model.detail_cost
            + self.functional_instructions * model.functional_cost
        )
        if include_profiling:
            time += self.profile_instructions * model.profile_cost
        return time


def plan_cost(plan: SamplingPlan, profiled: bool = True) -> SimulationCost:
    """Cost accounting of *plan* (profiling = one functional pass)."""
    return SimulationCost(
        detail_instructions=plan.detail_instructions,
        functional_instructions=plan.functional_instructions,
        total_instructions=plan.total_instructions,
        profile_instructions=plan.total_instructions if profiled else 0,
    )


def full_detail_cost(total_instructions: int) -> SimulationCost:
    """Cost of the no-sampling baseline: everything in detail."""
    return SimulationCost(
        detail_instructions=total_instructions,
        functional_instructions=0,
        total_instructions=total_instructions,
    )


def speedup(
    plan: SamplingPlan,
    over: SamplingPlan,
    model: CostModel = DEFAULT_COST_MODEL,
    include_profiling: bool = False,
) -> float:
    """Speedup of *plan* over the *over* plan (e.g. COASTS over SimPoint)."""
    mine = plan_cost(plan).time(model, include_profiling)
    theirs = plan_cost(over).time(model, include_profiling)
    if mine <= 0:
        raise SamplingError("degenerate plan with zero simulation time")
    return theirs / mine


def speedup_over_full(
    plan: SamplingPlan, model: CostModel = DEFAULT_COST_MODEL
) -> float:
    """Speedup of *plan* over full detailed simulation of the program."""
    mine = plan_cost(plan).time(model)
    full = full_detail_cost(plan.total_instructions).time(model)
    return full / mine
