"""Reconstruct whole-program metrics from a sampling plan.

Simulation points are detail-simulated with **functional warming**: the
fast-forward from the start of the program to each point updates caches and
branch predictors (what SimpleScalar's functional mode does when warmup is
enabled, and what the paper's error rates presuppose).  All points of all
plans for one (benchmark, config) pair are recorded in a *single* pass over
the trace — the machine state at a point depends only on the trace prefix,
so the pass is shared and its cost is bounded by one full-trace walk.

A cheap alternative — a fixed warming window before each point
(``SamplingConfig.full_warming = False``) — exists for fast tests and for
the warmup ablation; it trades accuracy for per-point cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import DEFAULT_SAMPLING, SamplingConfig
from ..detailed.results import Deviation, Metrics, SimulationResult, WeightedMetrics
from ..detailed.timing import TimingSimulator
from ..errors import SamplingError
from .points import SamplingPlan, SimulationPoint

#: A point's instruction range, the key of shared point-result caches.
PointRange = Tuple[int, int]


@dataclass(frozen=True)
class PlanEvaluation:
    """A plan's estimate next to the full-run baseline."""

    plan: SamplingPlan
    estimate: Metrics
    baseline: Metrics
    deviation: Deviation

    @property
    def benchmark(self) -> str:
        """Benchmark name."""
        return self.plan.benchmark


def simulate_point_set(
    simulator: TimingSimulator,
    ranges: Iterable[PointRange],
) -> Dict[PointRange, SimulationResult]:
    """Detail-simulate every range with full functional warming, one pass.

    The trace is walked once from instruction 0 to the end of the last
    range; outside all ranges the machine state is warmed without recording,
    inside them results accumulate (nested/overlapping ranges each receive
    the shared stretch).
    """
    ranges = sorted(set(ranges))
    if not ranges:
        return {}
    for start, end in ranges:
        if end <= start or start < 0:
            raise SamplingError(f"bad point range [{start}, {end})")
    results = {r: SimulationResult() for r in ranges}

    boundaries = sorted({0} | {b for r in ranges for b in r})
    state = simulator.new_state()
    throwaway = SimulationResult()
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        active = [r for r in ranges if r[0] <= a and b <= r[1]]
        if not active:
            simulator.simulate_range(a, b, state=state, result=throwaway)
            continue
        piece = SimulationResult()
        simulator.simulate_range(a, b, state=state, result=piece)
        for r in active:
            results[r].merge(piece)
    return results


def plan_ranges(plan: SamplingPlan) -> List[PointRange]:
    """The detail-simulated ranges of *plan* (its leaves)."""
    return [(leaf.start, leaf.end) for leaf in plan.leaves()]


def simulate_tagged_ranges(
    simulator: TimingSimulator,
    tagged: Dict[object, Iterable[PointRange]],
) -> Dict[object, SimulationResult]:
    """Detail-simulate overlapping *groups* of ranges in one warmed pass.

    *tagged* maps an opaque tag (e.g. ``(method, phase)``) to the ranges
    whose merged metrics that tag should accumulate; ranges within a tag
    must be disjoint (they may abut), ranges of *different* tags may
    overlap arbitrarily.  Like :func:`simulate_point_set` this walks the
    trace once from 0 with full functional warming, so each tag's result
    is exactly what a baseline run would have booked over those
    stretches — the accuracy diagnostics use this to compute true
    per-phase metric means for every method at the cost of one extra
    detailed pass, not one per phase.

    The active-tag set is maintained with start/end events (a counter
    per tag, since a tag's next range may abut the previous one), so the
    sweep is O((B + R) log R) bookkeeping on top of the simulation
    itself.
    """
    groups = {tag: sorted(set(ranges)) for tag, ranges in tagged.items()}
    for tag, ranges in groups.items():
        previous_end = None
        for start, end in ranges:
            if end <= start or start < 0:
                raise SamplingError(f"bad point range [{start}, {end})")
            if previous_end is not None and start < previous_end:
                raise SamplingError(
                    f"tag {tag!r}: ranges overlap at {start}"
                )
            previous_end = end
    results = {tag: SimulationResult() for tag in groups}
    starts_at: Dict[int, List[object]] = {}
    ends_at: Dict[int, List[object]] = {}
    for tag, ranges in groups.items():
        for start, end in ranges:
            starts_at.setdefault(start, []).append(tag)
            ends_at.setdefault(end, []).append(tag)
    boundaries = sorted({0} | set(starts_at) | set(ends_at))
    if len(boundaries) < 2:
        return results

    active: Dict[object, int] = {}
    state = simulator.new_state()
    throwaway = SimulationResult()
    for a, b in zip(boundaries[:-1], boundaries[1:]):
        for tag in ends_at.get(a, ()):
            remaining = active.get(tag, 0) - 1
            if remaining <= 0:
                active.pop(tag, None)
            else:
                active[tag] = remaining
        for tag in starts_at.get(a, ()):
            active[tag] = active.get(tag, 0) + 1
        if not active:
            simulator.simulate_range(a, b, state=state, result=throwaway)
            continue
        piece = SimulationResult()
        simulator.simulate_range(a, b, state=state, result=piece)
        for tag in active:
            results[tag].merge(piece)
    return results


def simulate_leaf(
    simulator: TimingSimulator,
    leaf: SimulationPoint,
    warmup: int,
) -> SimulationResult:
    """Detail-simulate one leaf with a fixed warming window (cheap mode)."""
    return simulator.simulate_point(leaf.start, leaf.end, warmup=warmup)


def estimate_plan(
    plan: SamplingPlan,
    simulator: TimingSimulator,
    config: SamplingConfig = DEFAULT_SAMPLING,
    cache: Optional[Dict[PointRange, SimulationResult]] = None,
) -> Metrics:
    """Whole-program metric estimate from the plan's weighted points.

    ``cache`` carries point results across plans of the same benchmark and
    config (the runner fills it with a single shared warming pass); missing
    points are simulated on demand with the configured warming mode.
    """
    ranges = plan_ranges(plan)
    missing = [r for r in ranges if cache is None or r not in cache]
    if missing:
        if config.full_warming:
            fresh = simulate_point_set(simulator, missing)
        else:
            fresh = {
                r: simulator.simulate_point(
                    r[0], r[1], warmup=config.warmup_instructions
                )
                for r in missing
            }
        if cache is None:
            cache = fresh
        else:
            cache.update(fresh)

    accumulator = WeightedMetrics()
    for leaf in plan.leaves():
        if leaf.weight <= 0:
            continue
        result = cache[(leaf.start, leaf.end)]
        accumulator.add(result.metrics(), leaf.weight)
    if accumulator.weight_total <= 0:
        raise SamplingError(f"{plan.method}: no usable leaves to estimate from")
    return accumulator.finish()


def evaluate_plan(
    plan: SamplingPlan,
    simulator: TimingSimulator,
    baseline: Metrics,
    config: SamplingConfig = DEFAULT_SAMPLING,
    cache: Optional[Dict[PointRange, SimulationResult]] = None,
) -> PlanEvaluation:
    """Estimate the plan and compute its deviation from *baseline*."""
    estimate = estimate_plan(plan, simulator, config=config, cache=cache)
    return PlanEvaluation(
        plan=plan,
        estimate=estimate,
        baseline=baseline,
        deviation=Deviation.between(estimate, baseline),
    )
