"""Sampling methods: SimPoint, EarlySP, COASTS and the multi-level framework."""

from .coasts import BoundaryInfo, Coasts
from .cost import (
    SimulationCost,
    full_detail_cost,
    plan_cost,
    speedup,
    speedup_over_full,
)
from .early import EarlySimPoint
from .estimate import PlanEvaluation, estimate_plan, evaluate_plan, simulate_leaf
from .multilevel import MultiLevelSampler
from .points import SamplingPlan, SimulationPoint
from .ranked_set import RankedSetSampler
from .simpoint import DEFAULT_MAX_CLUSTER_SAMPLES, SimPoint
from .stratified import StratifiedSampler

__all__ = [
    "BoundaryInfo",
    "Coasts",
    "DEFAULT_MAX_CLUSTER_SAMPLES",
    "EarlySimPoint",
    "MultiLevelSampler",
    "PlanEvaluation",
    "RankedSetSampler",
    "SamplingPlan",
    "SimPoint",
    "StratifiedSampler",
    "SimulationCost",
    "SimulationPoint",
    "estimate_plan",
    "evaluate_plan",
    "full_detail_cost",
    "plan_cost",
    "simulate_leaf",
    "speedup",
    "speedup_over_full",
]
