"""Simulation points and sampling plans.

A :class:`SamplingPlan` is the output of every sampling method: the chosen
simulation points, their phase weights, and the accounting that determines
simulation cost — how many instructions must be simulated in detail and how
many must be functionally fast-forwarded (everything up to the end of the
last detailed region that is not itself simulated in detail).

Multi-level plans nest: a coarse point that was re-sampled carries *children*
(fine points, with already-composed global weights); only leaves are ever
simulated in detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

from ..errors import SamplingError

#: Weight sums are validated against 1.0 within this tolerance.
WEIGHT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class SimulationPoint:
    """One selected interval: [start, end) instructions with a phase weight.

    ``weight`` is the fraction of the represented population this point
    stands for, composed through levels (a fine point inside a coarse point
    of weight 0.5 that itself has fine weight 0.2 carries weight 0.1).
    """

    start: int
    end: int
    weight: float
    phase: int
    interval_index: int
    children: Tuple["SimulationPoint", ...] = field(default=())

    def __post_init__(self) -> None:
        if self.end <= self.start or self.start < 0:
            raise SamplingError(f"bad point range [{self.start}, {self.end})")
        if not 0.0 <= self.weight <= 1.0 + WEIGHT_TOLERANCE:
            raise SamplingError(f"point weight {self.weight} out of range")
        for child in self.children:
            if not (self.start <= child.start and child.end <= self.end):
                raise SamplingError("child point escapes its parent")

    @property
    def size(self) -> int:
        """Instructions in the point."""
        return self.end - self.start

    @property
    def is_resampled(self) -> bool:
        """True if this point is represented by fine-grained children."""
        return bool(self.children)

    def leaves(self) -> Iterator["SimulationPoint"]:
        """The points actually simulated in detail (self, or the children)."""
        if self.children:
            yield from self.children
        else:
            yield self


@dataclass(frozen=True)
class SamplingPlan:
    """The complete output of a sampling method for one benchmark."""

    method: str
    benchmark: str
    points: Tuple[SimulationPoint, ...]
    total_instructions: int
    n_clusters: int
    origin: int = 0

    def __post_init__(self) -> None:
        if not self.points:
            raise SamplingError(f"{self.method}: plan with no points")
        if self.total_instructions <= 0:
            raise SamplingError("total_instructions must be positive")
        if self.origin < 0:
            raise SamplingError("origin must be non-negative")
        if self.n_clusters <= 0:
            raise SamplingError("n_clusters must be positive")
        top_weight = sum(p.weight for p in self.points)
        if abs(top_weight - 1.0) > 1e-3:
            raise SamplingError(
                f"{self.method}: point weights sum to {top_weight:.6f}, not 1"
            )
        for point in self.points:
            if point.end > self.origin + self.total_instructions:
                raise SamplingError("point beyond end of program")
            if point.start < self.origin:
                raise SamplingError("point before start of represented range")
            if point.children:
                child_weight = sum(c.weight for c in point.children)
                if abs(child_weight - point.weight) > 1e-3:
                    raise SamplingError(
                        "children weights do not compose to the parent weight"
                    )

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of top-level simulation points."""
        return len(self.points)

    def leaves(self) -> Iterator[SimulationPoint]:
        """All points that get detailed simulation, in program order."""
        for point in sorted(self.points, key=lambda p: p.start):
            yield from point.leaves()

    @property
    def n_leaves(self) -> int:
        """Number of detail-simulated points."""
        return sum(1 for _ in self.leaves())

    # ------------------------------------------------------------------
    @property
    def detail_instructions(self) -> int:
        """Instructions simulated in cycle-accurate detail."""
        return sum(leaf.size for leaf in self.leaves())

    @property
    def last_end(self) -> int:
        """End of the last detail-simulated region.

        Execution (functional or detailed) must reach this instruction; the
        rest of the program is never simulated at all.
        """
        return max(leaf.end for leaf in self.leaves())

    @property
    def functional_instructions(self) -> int:
        """Instructions that must be functionally fast-forwarded."""
        return self.last_end - self.origin - self.detail_instructions

    @property
    def detail_fraction(self) -> float:
        """Detail instructions over total program instructions."""
        return self.detail_instructions / self.total_instructions

    @property
    def functional_fraction(self) -> float:
        """Functional instructions over total program instructions."""
        return self.functional_instructions / self.total_instructions

    @property
    def last_point_position(self) -> float:
        """Position of the last simulation point (Section III-B's metric)."""
        return (self.last_end - self.origin) / self.total_instructions

    @property
    def mean_interval_size(self) -> float:
        """Mean size of the detail-simulated points."""
        leaves = list(self.leaves())
        return sum(l.size for l in leaves) / len(leaves)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.method}[{self.benchmark}]: {self.n_points} points "
            f"({self.n_leaves} leaves, {self.n_clusters} clusters), "
            f"detail {self.detail_fraction:.4%}, "
            f"functional {self.functional_fraction:.2%}, "
            f"last point at {self.last_point_position:.2%}"
        )
