"""COASTS: COarse-grained Accurately Sampling Technique for Simulators.

The paper's first-level sampler (Section IV-A).  Three steps:

1. **Boundary collection** — pick top-level cyclic program structures from
   dynamic profiling and discard those covering less than 1% of executed
   instructions; the iteration instances of the survivors become the
   (variable-length, coarse-grained) intervals.
2. **Metrics collection** — per iteration instance, collect the BBVs of its
   temporal sub-chunks, randomly project each to 15 dimensions, concatenate
   into a signature vector and normalise.
3. **Coarse-grained sampling** — k-means (``Kmax = 3`` by default) with BIC
   model selection classifies the instances into phases; the **earliest
   instance** of each phase becomes its coarse simulation point, weighted by
   the phase's share of instructions.

Selecting earliest instances (rather than centroid-nearest) is what puts the
last simulation point at a very early program position and collapses the
functional-simulation cost.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.bbv import concat_signatures
from ..analysis.bic import cluster_with_bic
from ..analysis.distance import earliest_member
from ..analysis.kmeans import cluster_quality
from ..config import DEFAULT_SAMPLING, SamplingConfig
from ..engine.functional import FunctionalSimulator
from ..engine.profiles import CoarseIntervalProfile
from ..engine.trace import Trace
from ..errors import SamplingError
from ..obs import ObsContext
from ..obs.diag import MethodDiag, build_method_diag
from .points import SamplingPlan, SimulationPoint


@dataclass(frozen=True)
class BoundaryInfo:
    """Outcome of boundary collection: which structures form intervals."""

    kept_loops: Tuple[int, ...]
    discarded_loops: Tuple[int, ...]
    bounds: np.ndarray  # (n_intervals, 2)
    #: Instruction coverage lost to the <1% rule (sum of the discarded
    #: structures' coverages) — a direct contributor to sampling error,
    #: surfaced by the accuracy diagnostics.
    discarded_coverage: float = 0.0

    @property
    def n_intervals(self) -> int:
        """Number of coarse intervals."""
        return len(self.bounds)


class Coasts:
    """The coarse-grained first-level sampler."""

    method_name = "coasts"

    def __init__(
        self,
        config: SamplingConfig = DEFAULT_SAMPLING,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.config = config
        #: Observability context: when present, sampling runs inside a
        #: ``sampling`` span and the clustering-quality diagnostics are
        #: attached to it as attributes.
        self.obs = obs
        #: Clustering-quality diagnostics of the most recent
        #: :meth:`sample`/:meth:`sample_profile` call (the harness fills
        #: in the error attribution after detail simulation).
        self.last_diagnostics: Optional[MethodDiag] = None

    # ------------------------------------------------------------------
    def collect_boundaries(self, trace: Trace) -> BoundaryInfo:
        """Step 1: choose top-level cyclic structures, filter by coverage."""
        functional = FunctionalSimulator(trace)
        structures = functional.profile_structures()
        nest = trace.program.loops
        kept: List[int] = []
        discarded: List[int] = []
        for loop in nest.top_level:
            profile = structures[loop.loop_id]
            if profile.coverage >= self.config.min_structure_coverage:
                kept.append(loop.loop_id)
            else:
                discarded.append(loop.loop_id)
        if not kept:
            raise SamplingError(
                "no cyclic structure passes the coverage floor; cannot form "
                "coarse intervals"
            )
        bounds_list: List[np.ndarray] = []
        outer_id = trace.workload.outer_loop_id
        for loop_id in kept:
            if loop_id == outer_id:
                bounds_list.append(trace.outer_bounds())
            else:
                bounds_list.append(self._loop_instance_bounds(trace, loop_id))
        bounds = np.concatenate(bounds_list, axis=0)
        bounds = bounds[np.argsort(bounds[:, 0])]
        return BoundaryInfo(
            kept_loops=tuple(kept),
            discarded_loops=tuple(discarded),
            bounds=bounds,
            discarded_coverage=float(
                sum(structures[loop_id].coverage for loop_id in discarded)
            ),
        )

    @staticmethod
    def _loop_instance_bounds(trace: Trace, loop_id: int) -> np.ndarray:
        """Instance bounds of a non-outer top-level loop: each contiguous
        run of its segments is one instance."""
        spans: List[Tuple[int, int]] = []
        current: Tuple[int, int] | None = None
        loop_ids = trace.loop_id
        for index in range(trace.n_segments):
            if int(loop_ids[index]) == loop_id:
                start, end = trace.segment_span(index)
                if current is not None and start == current[1]:
                    current = (current[0], end)
                else:
                    if current is not None:
                        spans.append(current)
                    current = (start, end)
            elif current is not None:
                spans.append(current)
                current = None
        if current is not None:
            spans.append(current)
        if not spans:
            raise SamplingError(f"loop {loop_id} never executes")
        return np.array(spans, dtype=np.int64)

    # ------------------------------------------------------------------
    def profile(
        self, trace: Trace, boundaries: BoundaryInfo | None = None
    ) -> CoarseIntervalProfile:
        """Step 2: per-instance sub-chunk BBVs for the kept intervals."""
        boundaries = boundaries or self.collect_boundaries(trace)
        functional = FunctionalSimulator(trace)
        return functional.profile_coarse_intervals(
            n_segments=self.config.signature_segments,
            bounds=boundaries.bounds,
        )

    def signatures(self, profile: CoarseIntervalProfile) -> np.ndarray:
        """Concatenated, normalised signature vectors of each instance."""
        return concat_signatures(
            profile.segment_bbvs,
            dim=self.config.projection_dim,
            seed=self.config.random_seed,
        )

    # ------------------------------------------------------------------
    def sample(self, trace: Trace, benchmark: str = "") -> SamplingPlan:
        """Run all three steps and return the coarse sampling plan."""
        boundaries = self.collect_boundaries(trace)
        profile = self.profile(trace, boundaries)
        return self.sample_profile(
            profile,
            benchmark=benchmark or trace.spec.name,
            total_instructions=trace.total_instructions,
            discarded_coverage=boundaries.discarded_coverage,
        )

    def sample_profile(
        self,
        profile: CoarseIntervalProfile,
        benchmark: str,
        total_instructions: int,
        discarded_coverage: float = 0.0,
    ) -> SamplingPlan:
        """Step 3 on an existing coarse profile."""
        span_ctx = (
            self.obs.tracer.span(
                "sampling", method=self.method_name, benchmark=benchmark
            )
            if self.obs is not None else nullcontext()
        )
        with span_ctx as span:
            signatures = self.signatures(profile)
            result, _ = cluster_with_bic(
                signatures,
                kmax=self.config.coarse_kmax,
                seed=self.config.random_seed,
                n_seeds=self.config.kmeans_seeds,
                threshold=self.config.bic_threshold,
            )
            labels = result.labels
            k = result.k
            picks = earliest_member(labels, k)

            insts = profile.instructions.astype(np.float64)
            covered = insts.sum()
            if covered <= 0:
                raise SamplingError("coarse profile covers no instructions")

            weights = np.array([
                float(insts[labels == phase].sum() / covered)
                for phase in range(k)
            ])
            points: List[SimulationPoint] = []
            for phase in range(k):
                pick = int(picks[phase])
                if pick < 0:
                    continue
                points.append(
                    SimulationPoint(
                        start=int(profile.starts[pick]),
                        end=profile.end_of(pick),
                        weight=float(weights[phase]),
                        phase=phase,
                        interval_index=pick,
                    )
                )
            points.sort(key=lambda p: p.start)

            quality = cluster_quality(signatures, result)
            interval_bounds = [
                (int(profile.starts[i]), profile.end_of(i))
                for i in range(profile.n_instances)
            ]
            self.last_diagnostics = build_method_diag(
                method=self.method_name,
                benchmark=benchmark,
                labels=labels,
                picks=picks,
                weights=weights,
                bounds=interval_bounds,
                instructions=profile.instructions,
                quality=quality,
                resample_threshold=self.config.resample_threshold,
                coverage_discarded=discarded_coverage,
            )
            if span is not None:
                span.set(
                    n_intervals=profile.n_instances,
                    n_clusters=k,
                    coverage_discarded=round(discarded_coverage, 6),
                    oversized_points=self.last_diagnostics.n_oversized,
                    mean_silhouette=round(quality.mean_silhouette, 4),
                )
            return SamplingPlan(
                method=self.method_name,
                benchmark=benchmark,
                points=tuple(points),
                total_instructions=total_instructions,
                n_clusters=k,
            )
