"""Ranked-set sampling with repeated subsampling (see PAPERS.md).

Ranked-set sampling (RSS) exploits a *cheap* ranking signal to spread an
expensive measurement budget evenly over the distribution of program
behaviour.  Here the ranking proxy is the first principal component of
the normalised per-interval BBVs — already available from the functional
profile, no detailed simulation needed — which orders intervals along
the program's dominant axis of phase behaviour (the paper's Figure 1
uses exactly this curve to visualise phases).

One cycle draws ``m = ranked_set_size`` random candidate sets of ``m``
intervals each; the ``j``-th set contributes only its ``j``-th
order statistic (by proxy rank), so each cycle yields one measurement
per rank stratum.  ``r = ranked_set_cycles`` cycles are averaged —
"repeated subsampling" — giving ``m * r`` detailed intervals spread over
the proxy distribution.

The estimator weights rank stratum ``j`` by the instruction share
``W_j`` of its proxy-quantile bucket and averages the ``r`` picks within
it (each selection carries weight ``W_j / r``; duplicate picks within a
stratum merge their weights).  Phases are the rank strata, so the
per-phase error attribution sums exactly like every other method's.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.bbv import normalize_rows
from ..analysis.kmeans import KMeansResult, cluster_quality
from ..analysis.pca import first_component
from ..config import DEFAULT_SAMPLING, SamplingConfig
from ..errors import SamplingError
from ..obs import ObsContext
from ..obs.diag import MethodDiag, build_method_diag
from .points import SamplingPlan, SimulationPoint


class RankedSetSampler:
    """RSS over fixed-length intervals, ranked by the first BBV PC."""

    method_name = "ranked_set"

    def __init__(
        self,
        config: SamplingConfig = DEFAULT_SAMPLING,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.config = config
        self.interval_size = config.fine_interval_size
        self.obs = obs
        #: Clustering-style diagnostics of the most recent :meth:`sample`
        #: call (rank strata play the role of phases).
        self.last_diagnostics: Optional[MethodDiag] = None

    # ------------------------------------------------------------------
    def sample(self, profile, benchmark: str = "") -> SamplingPlan:
        """Build the ranked-set plan from a fixed-interval profile."""
        if profile.interval_size != self.interval_size:
            raise SamplingError(
                f"profile interval size {profile.interval_size} != sampler's "
                f"{self.interval_size}"
            )
        n = profile.n_intervals
        insts = profile.instructions.astype(np.float64)
        total = float(insts.sum())
        if total <= 0:
            raise SamplingError("no instructions in profile")

        span_ctx = (
            self.obs.tracer.span(
                "sampling", method=self.method_name, benchmark=benchmark
            )
            if self.obs is not None else nullcontext()
        )
        with span_ctx as span:
            proxy = self._proxy(profile)
            m = min(self.config.ranked_set_size, n)
            r = self.config.ranked_set_cycles

            # Rank strata: m proxy-quantile buckets (every bucket
            # non-empty because m <= n).  Stable sort keeps ties
            # deterministic.
            order = np.argsort(proxy, kind="stable")
            bucket_labels = np.empty(n, dtype=np.int64)
            bucket_means = np.zeros(m, dtype=np.float64)
            stratum_weights = np.zeros(m, dtype=np.float64)
            for j in range(m):
                members = order[(j * n) // m:((j + 1) * n) // m]
                bucket_labels[members] = j
                bucket_means[j] = float(proxy[members].mean())
                stratum_weights[j] = float(insts[members].sum()) / total

            # Repeated subsampling: r cycles, each contributing one
            # order statistic per rank.
            rng = np.random.default_rng(self.config.random_seed)
            selections: List[List[int]] = [[] for _ in range(m)]
            for _cycle in range(r):
                for j in range(m):
                    draw = rng.choice(n, size=m, replace=False)
                    ranked = draw[np.argsort(proxy[draw], kind="stable")]
                    selections[j].append(int(ranked[j]))

            points: List[SimulationPoint] = []
            picks = np.full(m, -1, dtype=np.int64)
            for j in range(m):
                merged: Dict[int, float] = {}
                for index in selections[j]:
                    merged[index] = (
                        merged.get(index, 0.0) + stratum_weights[j] / r
                    )
                for index in sorted(merged):
                    points.append(SimulationPoint(
                        start=int(profile.starts[index]),
                        end=profile.end_of(index),
                        weight=merged[index],
                        phase=j,
                        interval_index=index,
                    ))
                # Reporting representative: the selection whose proxy is
                # nearest its stratum mean (the estimate averages all).
                gaps = [abs(proxy[i] - bucket_means[j]) for i in selections[j]]
                picks[j] = selections[j][int(np.argmin(gaps))]
            points.sort(key=lambda p: p.start)

            quality = cluster_quality(
                proxy.reshape(-1, 1),
                KMeansResult(
                    centroids=bucket_means.reshape(-1, 1),
                    labels=bucket_labels,
                    inertia=0.0,
                ),
            )
            interval_bounds: List[Tuple[int, int]] = [
                (int(profile.starts[i]), profile.end_of(i))
                for i in range(n)
            ]
            self.last_diagnostics = build_method_diag(
                method=self.method_name,
                benchmark=benchmark,
                labels=bucket_labels,
                picks=picks,
                weights=stratum_weights,
                bounds=interval_bounds,
                instructions=profile.instructions,
                quality=quality,
                resample_threshold=self.config.resample_threshold,
            )
            if span is not None:
                span.set(
                    n_intervals=n,
                    set_size=m,
                    cycles=r,
                    mean_silhouette=round(quality.mean_silhouette, 4),
                )
            return SamplingPlan(
                method=self.method_name,
                benchmark=benchmark,
                points=tuple(points),
                total_instructions=profile.total_instructions,
                n_clusters=m,
                origin=int(profile.starts[0]),
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _proxy(profile) -> np.ndarray:
        """Cheap ranking metric: first PC of the normalised BBVs."""
        if profile.n_intervals < 2:
            return np.zeros(profile.n_intervals, dtype=np.float64)
        return first_component(normalize_rows(profile.bbv))
