"""Two-phase stratified sampling (Ekman & Stenström-style, see PAPERS.md).

Phase one stratifies the fixed-length intervals by BBV cluster (the same
projection + k-means/BIC machinery as SimPoint, so the strata *are* the
program's phases).  Phase two allocates a detailed-simulation budget of
``stratified_budget`` intervals across the strata proportionally to
``N_h * sqrt(S_h)`` — instruction mass times within-stratum standard
deviation, the Neyman-optimal allocation — and draws each stratum's
sample uniformly without replacement.

The estimator is Horvitz–Thompson style: every sampled interval ``i`` of
stratum ``h`` carries weight ``W_h * inst_i / sum_sample(inst)`` — the
stratum's instruction share, self-normalised over the drawn sample — so
the plan's weighted metric mean is the stratified estimator and the
per-phase error attribution (``est − base = Σ c_p + residual``)
decomposes over strata exactly as for the paper's methods.

Versus SimPoint (one centroid-nearest representative per cluster),
stratified sampling spends *more* detailed intervals inside
high-variance phases, trading detailed-simulation time for robustness
against a single unrepresentative pick.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional

import numpy as np

from ..analysis.kmeans import KMeansResult, cluster_quality
from ..errors import SamplingError
from ..isa.program import Program
from ..obs.diag import build_method_diag
from .points import SamplingPlan, SimulationPoint
from .simpoint import SimPoint


class StratifiedSampler(SimPoint):
    """BBV-cluster strata with variance-proportional budget allocation."""

    method_name = "stratified"

    # ------------------------------------------------------------------
    def sample(
        self,
        profile,
        benchmark: str = "",
        program: Optional[Program] = None,
    ) -> SamplingPlan:
        """Build the stratified plan from a fixed-interval profile."""
        if profile.interval_size != self.interval_size:
            raise SamplingError(
                f"profile interval size {profile.interval_size} != sampler's "
                f"{self.interval_size}"
            )
        span_ctx = (
            self.obs.tracer.span(
                "sampling", method=self.method_name, benchmark=benchmark
            )
            if self.obs is not None else nullcontext()
        )
        with span_ctx as span:
            features = self._project(profile, program)
            labels, centroids, k = self._cluster(features)
            weights = self._weights(profile, labels, k)
            quality = cluster_quality(
                features,
                KMeansResult(centroids=centroids, labels=labels, inertia=0.0),
            )

            insts = profile.instructions.astype(np.float64)
            allocation = self._allocate(labels, weights, quality, k)

            rng = np.random.default_rng(self.config.random_seed)
            points: List[SimulationPoint] = []
            picks = np.full(k, -1, dtype=np.int64)
            for phase in range(k):
                quota = allocation.get(phase, 0)
                if quota <= 0:
                    continue
                members = np.flatnonzero(labels == phase)
                chosen = np.sort(
                    rng.choice(members, size=quota, replace=False)
                )
                sample_inst = float(insts[chosen].sum())
                for index in chosen:
                    index = int(index)
                    share = (
                        insts[index] / sample_inst if sample_inst > 0
                        else 1.0 / len(chosen)
                    )
                    points.append(SimulationPoint(
                        start=int(profile.starts[index]),
                        end=profile.end_of(index),
                        weight=float(weights[phase]) * share,
                        phase=phase,
                        interval_index=index,
                    ))
                # Reporting representative: the sampled member closest to
                # its centroid (the estimate itself uses every sample).
                distances = quality.member_distances[chosen]
                picks[phase] = int(chosen[int(np.argmin(distances))])
            points.sort(key=lambda p: p.start)

            interval_bounds = [
                (int(profile.starts[i]), profile.end_of(i))
                for i in range(profile.n_intervals)
            ]
            self.last_diagnostics = build_method_diag(
                method=self.method_name,
                benchmark=benchmark,
                labels=labels,
                picks=picks,
                weights=weights,
                bounds=interval_bounds,
                instructions=profile.instructions,
                quality=quality,
                resample_threshold=self.config.resample_threshold,
            )
            if span is not None:
                span.set(
                    n_intervals=profile.n_intervals,
                    n_clusters=k,
                    budget=sum(allocation.values()),
                    mean_silhouette=round(quality.mean_silhouette, 4),
                )
            return SamplingPlan(
                method=self.method_name,
                benchmark=benchmark,
                points=tuple(points),
                total_instructions=profile.total_instructions,
                n_clusters=k,
                origin=int(profile.starts[0]),
            )

    # ------------------------------------------------------------------
    def _allocate(
        self,
        labels: np.ndarray,
        weights: np.ndarray,
        quality,
        k: int,
    ) -> Dict[int, int]:
        """Split the detailed budget over strata, Neyman style.

        Every non-empty stratum gets at least one interval; the rest of
        the budget goes greedily to the stratum with the largest
        ``score / alloc`` ratio (score ``W_h * sqrt(variance_h)``, the
        instruction-mass proxy for ``N_h * S_h``), never exceeding the
        stratum's member count.  Deterministic: ties break on the lowest
        stratum index.
        """
        sizes = np.array(
            [int(np.count_nonzero(labels == h)) for h in range(k)]
        )
        nonempty = [h for h in range(k) if sizes[h] > 0]
        if not nonempty:
            raise SamplingError("stratification produced no members")
        n = int(sizes.sum())
        budget = max(min(self.config.stratified_budget, n), len(nonempty))

        scores = np.array([
            float(weights[h]) * float(np.sqrt(quality.variances[h]))
            for h in range(k)
        ])
        if not np.any(scores[nonempty] > 0):
            # Zero within-stratum variance everywhere: fall back to
            # allocation proportional to instruction mass.
            scores = np.asarray(weights, dtype=np.float64).copy()

        allocation = {h: 1 for h in nonempty}
        remaining = budget - len(nonempty)
        while remaining > 0:
            best = -1
            best_ratio = -1.0
            for h in nonempty:
                if allocation[h] >= sizes[h]:
                    continue
                ratio = scores[h] / allocation[h]
                if ratio > best_ratio:
                    best, best_ratio = h, ratio
            if best < 0:
                break
            allocation[best] += 1
            remaining -= 1
        return allocation
