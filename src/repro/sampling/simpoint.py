"""Fixed-length SimPoint (Sherwood et al., ASPLOS 2002) — the baseline.

Pipeline, faithful to the SimPoint release the paper compares against:

1. split execution into fixed-length intervals (10M instructions at paper
   scale) and collect per-interval BBVs;
2. normalise each BBV and randomly project it to 15 dimensions;
3. run k-means for k = 1..Kmax (default 30), several seeds each, score with
   BIC and keep the smallest k reaching 90% of the BIC range;
4. pick, per cluster, the interval nearest the centroid as its simulation
   point, weighted by the cluster's share of executed instructions.

Like the SimPoint tool, clustering optionally runs on a random sub-sample of
intervals (all intervals are then assigned to the nearest centroid), which
bounds clustering cost on long programs.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional

import numpy as np

from ..analysis.bbv import normalize_rows
from ..analysis.bic import cluster_with_bic
from ..analysis.distance import assign_points, nearest_to_centroid
from ..analysis.kmeans import KMeansResult, cluster_quality
from ..analysis.metrics import metric_matrix
from ..analysis.projection import RandomProjection
from ..config import DEFAULT_SAMPLING, SamplingConfig
from ..engine.profiles import FixedIntervalProfile
from ..errors import SamplingError
from ..isa.program import Program
from ..obs import ObsContext
from ..obs.diag import MethodDiag, build_method_diag
from .points import SamplingPlan, SimulationPoint

#: Clustering runs on at most this many intervals (SimPoint-style sampling).
DEFAULT_MAX_CLUSTER_SAMPLES = 4000


class SimPoint:
    """The fixed-length SimPoint baseline sampler."""

    method_name = "simpoint"

    def __init__(
        self,
        config: SamplingConfig = DEFAULT_SAMPLING,
        interval_size: Optional[int] = None,
        kmax: Optional[int] = None,
        max_cluster_samples: int = DEFAULT_MAX_CLUSTER_SAMPLES,
        metric: str = "bbv",
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.config = config
        self.interval_size = interval_size or config.fine_interval_size
        self.kmax = kmax or config.fine_kmax
        if max_cluster_samples < 2:
            raise SamplingError("max_cluster_samples must be >= 2")
        self.max_cluster_samples = max_cluster_samples
        #: Phase metric: "bbv" (default), "loop_frequency" or "working_set"
        #: (the Section II alternatives; non-BBV metrics need `program`).
        self.metric = metric
        #: Observability context: when present, sampling runs inside a
        #: ``sampling`` span carrying clustering-quality attributes.
        self.obs = obs
        #: Clustering-quality diagnostics of the most recent
        #: :meth:`sample` call (EarlySP inherits this — only the
        #: representative-selection rule differs).
        self.last_diagnostics: Optional[MethodDiag] = None

    # ------------------------------------------------------------------
    def sample(
        self,
        profile: FixedIntervalProfile,
        benchmark: str = "",
        program: Optional[Program] = None,
    ) -> SamplingPlan:
        """Select simulation points from a fixed-interval profile.

        *program* is required for the non-BBV metrics, which need the loop
        nest / region table to fold the profile.
        """
        if profile.interval_size != self.interval_size:
            raise SamplingError(
                f"profile interval size {profile.interval_size} != sampler's "
                f"{self.interval_size}"
            )
        span_ctx = (
            self.obs.tracer.span(
                "sampling", method=self.method_name, benchmark=benchmark
            )
            if self.obs is not None else nullcontext()
        )
        with span_ctx as span:
            features = self._project(profile, program)
            labels, centroids, k = self._cluster(features)
            weights = self._weights(profile, labels, k)
            picks = self._select(features, labels, centroids)

            points: List[SimulationPoint] = []
            for phase in range(k):
                pick = int(picks[phase])
                if pick < 0:
                    continue
                points.append(
                    SimulationPoint(
                        start=int(profile.starts[pick]),
                        end=profile.end_of(pick),
                        weight=float(weights[phase]),
                        phase=phase,
                        interval_index=pick,
                    )
                )
            points.sort(key=lambda p: p.start)

            # Quality statistics over the full assignment (clustering may
            # have fitted a sub-sample; labels cover every interval).  The
            # inertia slot is unused by cluster_quality, so a zero keeps
            # this a view rather than a re-clustering.
            quality = cluster_quality(
                features,
                KMeansResult(centroids=centroids, labels=labels, inertia=0.0),
            )
            interval_bounds = [
                (int(profile.starts[i]), profile.end_of(i))
                for i in range(profile.n_intervals)
            ]
            self.last_diagnostics = build_method_diag(
                method=self.method_name,
                benchmark=benchmark,
                labels=labels,
                picks=picks,
                weights=weights,
                bounds=interval_bounds,
                instructions=profile.instructions,
                quality=quality,
                resample_threshold=self.config.resample_threshold,
            )
            if span is not None:
                span.set(
                    n_intervals=profile.n_intervals,
                    n_clusters=k,
                    oversized_points=self.last_diagnostics.n_oversized,
                    mean_silhouette=round(quality.mean_silhouette, 4),
                )
            return SamplingPlan(
                method=self.method_name,
                benchmark=benchmark,
                points=tuple(points),
                total_instructions=profile.total_instructions,
                n_clusters=k,
                origin=int(profile.starts[0]),
            )

    # ------------------------------------------------------------------
    def _project(
        self,
        profile: FixedIntervalProfile,
        program: Optional[Program] = None,
    ) -> np.ndarray:
        if self.metric == "bbv":
            data = profile.bbv
        else:
            if program is None:
                raise SamplingError(
                    f"metric {self.metric!r} requires the program"
                )
            data = metric_matrix(self.metric, profile, program)
        normalized = normalize_rows(data)
        projection = RandomProjection(
            data.shape[1],
            min(self.config.projection_dim, data.shape[1]),
            seed=self.config.random_seed,
        )
        return projection.project(normalized)

    def _cluster(self, features: np.ndarray):
        n = len(features)
        rng = np.random.default_rng(self.config.random_seed)
        if n > self.max_cluster_samples:
            chosen = np.sort(
                rng.choice(n, size=self.max_cluster_samples, replace=False)
            )
            fit_data = features[chosen]
        else:
            fit_data = features
        result, _ = cluster_with_bic(
            fit_data,
            kmax=self.kmax,
            seed=self.config.random_seed,
            n_seeds=self.config.kmeans_seeds,
            threshold=self.config.bic_threshold,
        )
        centroids = result.centroids
        labels, _ = assign_points(features, centroids)
        return labels, centroids, result.k

    @staticmethod
    def _weights(
        profile: FixedIntervalProfile, labels: np.ndarray, k: int
    ) -> np.ndarray:
        weights = np.zeros(k, dtype=np.float64)
        insts = profile.instructions.astype(np.float64)
        for phase in range(k):
            weights[phase] = insts[labels == phase].sum()
        total = weights.sum()
        if total <= 0:
            raise SamplingError("no instructions in profile")
        return weights / total

    def _select(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        centroids: np.ndarray,
    ) -> np.ndarray:
        """Representative choice: interval nearest each centroid."""
        return nearest_to_centroid(features, labels, centroids)
