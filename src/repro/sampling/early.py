"""EarlySP: early simulation points (Perelman, Hamerly & Calder, PACT 2003).

The related-work baseline the paper mentions: instead of the interval
nearest each centroid, pick the *earliest* interval whose distance to the
centroid is within a tolerance of the best, trading a little representative
quality for less fast-forwarding.  The paper notes this "can only reduce
some functional simulation time" — the last cluster still constrains how far
execution must go — which our ablation bench reproduces.
"""

from __future__ import annotations

import numpy as np

from ..analysis.distance import squared_distances
from ..config import DEFAULT_SAMPLING, SamplingConfig
from ..errors import SamplingError
from .simpoint import DEFAULT_MAX_CLUSTER_SAMPLES, SimPoint


class EarlySimPoint(SimPoint):
    """SimPoint with early-point selection (the EarlySP criterion)."""

    method_name = "early_sp"

    def __init__(
        self,
        config: SamplingConfig = DEFAULT_SAMPLING,
        interval_size: int | None = None,
        kmax: int | None = None,
        max_cluster_samples: int = DEFAULT_MAX_CLUSTER_SAMPLES,
        tolerance: float = 0.30,
        obs=None,
    ) -> None:
        super().__init__(
            config,
            interval_size=interval_size,
            kmax=kmax,
            max_cluster_samples=max_cluster_samples,
            obs=obs,
        )
        if tolerance < 0:
            raise SamplingError("tolerance must be non-negative")
        self.tolerance = tolerance

    def _select(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        centroids: np.ndarray,
    ) -> np.ndarray:
        """Earliest member within (1 + tolerance)^2 of the best distance."""
        k = len(centroids)
        picks = np.full(k, -1, dtype=np.int64)
        distances = squared_distances(features, centroids)
        slack = (1.0 + self.tolerance) ** 2
        for phase in range(k):
            members = np.flatnonzero(labels == phase)
            if not len(members):
                continue
            member_distances = distances[members, phase]
            cutoff = member_distances.min() * slack + 1e-12
            eligible = members[member_distances <= cutoff]
            picks[phase] = eligible[0]
        return picks
