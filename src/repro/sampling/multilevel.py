"""The multi-level sampling framework (Section IV).

Level one runs :class:`~repro.sampling.coasts.Coasts` to pick coarse-grained
simulation points.  Level two re-samples every coarse point whose size
exceeds the threshold (fine interval size x fine Kmax, the paper's
10M x 30 = 300M) with ordinary fixed-length SimPoint applied *inside* the
point.  Fine points represent only their coarse parent, so far fewer of them
are needed than when fine-grained SimPoint must represent the whole program
— that is the source of the detailed-simulation-time reduction.

Weights compose multiplicatively: a fine point with in-parent weight ``w_f``
inside a coarse point of weight ``w_c`` carries global weight
``w_c * w_f``.  Sampling twice accumulates slightly more error (paper,
Section III-B) — visible in our Table II reproduction too.
"""

from __future__ import annotations

import copy
from typing import List, Optional

from ..config import DEFAULT_SAMPLING, SamplingConfig
from ..engine.functional import FunctionalSimulator
from ..engine.trace import Trace
from ..errors import SamplingError
from ..obs import ObsContext
from ..obs.diag import MethodDiag
from .coasts import Coasts
from .points import SamplingPlan, SimulationPoint
from .simpoint import SimPoint


class MultiLevelSampler:
    """COASTS + in-point fine-grained SimPoint re-sampling."""

    method_name = "multilevel"

    def __init__(
        self,
        config: SamplingConfig = DEFAULT_SAMPLING,
        coarse: Optional[Coasts] = None,
        fine: Optional[SimPoint] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.config = config
        self.obs = obs
        self.coarse = coarse or Coasts(config, obs=obs)
        self.fine = fine or SimPoint(config)
        if self.config.resample_threshold < self.fine.interval_size:
            raise SamplingError(
                "resample threshold smaller than the fine interval size"
            )
        #: Diagnostics of the most recent :meth:`sample` call: the coarse
        #: clustering's diagnostics with the re-sampled phases marked
        #: (None when the coarse diagnostics were unavailable).
        self.last_diagnostics: Optional[MethodDiag] = None

    # ------------------------------------------------------------------
    def sample(
        self,
        trace: Trace,
        benchmark: str = "",
        coarse_plan: SamplingPlan | None = None,
        coarse_diag: Optional[MethodDiag] = None,
    ) -> SamplingPlan:
        """Produce the multi-level plan for *trace*.

        An existing COASTS plan can be passed to avoid re-clustering when
        both are evaluated side by side (as the harness does); pass the
        matching *coarse_diag* alongside so the multi-level diagnostics
        can be derived without re-clustering either.
        """
        benchmark = benchmark or trace.spec.name
        if coarse_plan is None:
            coarse_plan = self.coarse.sample(trace, benchmark=benchmark)
            coarse_diag = self.coarse.last_diagnostics
        functional = FunctionalSimulator(trace)

        points: List[SimulationPoint] = []
        for point in coarse_plan.points:
            if point.size <= self.config.resample_threshold:
                points.append(point)
                continue
            points.append(self._resample(functional, point, benchmark))

        # The second level re-samples *within* phases, so the phase
        # structure — weights, members, cluster quality — is the coarse
        # clustering's; only the representative terms differ (the
        # harness computes those from the plan's leaves).
        self.last_diagnostics = None
        if coarse_diag is not None:
            diag = copy.deepcopy(coarse_diag)
            diag.method = self.method_name
            for point in points:
                row = diag.phase_by_id(point.phase)
                if row is not None and point.is_resampled:
                    row.resampled = True
            self.last_diagnostics = diag
            if self.obs is not None:
                self.obs.tracer.start_span(
                    "sampling", method=self.method_name, benchmark=benchmark,
                    resampled_points=sum(1 for p in points if p.is_resampled),
                    n_clusters=coarse_plan.n_clusters,
                ).end()

        return SamplingPlan(
            method=self.method_name,
            benchmark=benchmark,
            points=tuple(points),
            total_instructions=coarse_plan.total_instructions,
            n_clusters=coarse_plan.n_clusters,
        )

    # ------------------------------------------------------------------
    def _resample(
        self,
        functional: FunctionalSimulator,
        point: SimulationPoint,
        benchmark: str,
    ) -> SimulationPoint:
        """Second-level sampling of one oversized coarse point."""
        profile = functional.profile_fixed_intervals(
            self.fine.interval_size, start=point.start, end=point.end
        )
        fine_plan = self.fine.sample(
            profile, benchmark=f"{benchmark}:{point.phase}"
        )
        children = tuple(
            SimulationPoint(
                start=child.start,
                end=child.end,
                weight=point.weight * child.weight,
                phase=child.phase,
                interval_index=child.interval_index,
            )
            for child in fine_plan.points
        )
        return SimulationPoint(
            start=point.start,
            end=point.end,
            weight=point.weight,
            phase=point.phase,
            interval_index=point.interval_index,
            children=children,
        )
