"""Command-line interface.

Three subcommands drive the library without writing Python::

    python -m repro run gzip                  # one benchmark, all methods
    python -m repro run gzip --methods coasts multilevel
    python -m repro suite --config b          # whole-suite summary table
    python -m repro suite --jobs 4 --timing   # parallel, with stage report
    python -m repro leaderboard --quick       # rank every registered sampler
    python -m repro experiment fig3           # regenerate a paper table/figure
    python -m repro suite --trace-out t.jsonl # + span/metric event log
    python -m repro obs report t.jsonl        # render a recorded trace
    python -m repro obs diag t.jsonl          # per-phase error budgets
    python -m repro obs history               # past runs (.repro_history/)
    python -m repro obs diff prev last        # regression check, exit 1
    python -m repro bench                     # analysis microbenchmarks
    python -m repro bench --compare benchmarks/BENCH_baseline.json

Every ``run``/``suite``/``bench`` invocation appends one record to the
cross-run history (``.repro_history/``, or ``$REPRO_HISTORY_DIR``;
``--no-history`` opts out), which is what ``obs history``/``obs diff``
read.

Heavy artefacts are disk-cached exactly as in the benches (the
``.repro_cache`` directory, or ``$REPRO_CACHE_DIR``); the cache is safe to
share between the parallel workers of one or several invocations.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import __version__
from .bench import (
    BENCH_WORKLOAD,
    DEFAULT_BENCH_SCALE,
    DEFAULT_REPORT_NAME,
    BenchReport,
    compare_reports,
    load_report,
    run_bench,
    select_cases,
    set_bench_workload,
)
from .config import CONFIG_A, CONFIG_B, MachineConfig
from .errors import (
    ConfigError,
    FaultSpecError,
    HarnessError,
    ObservabilityError,
    ReproError,
    TraceImportError,
)
from .obs import (
    EventLog,
    ObsContext,
    RunHistory,
    RunManifest,
    TelemetryPlane,
    TelemetryServer,
    diag_views,
    diff_records,
    follow_events,
    format_diag_report,
    format_diff,
    format_event,
    format_history,
    format_trace_report,
    match_event,
    parse_filters,
    read_events,
    read_trace_jsonl,
    record_from_bench,
    record_from_manifest,
    render_folded,
    trace_report_json,
    write_folded,
    write_prometheus,
    write_trace_jsonl,
)
from .harness import (
    DEFAULT_LEASE_TIMEOUT,
    ExperimentRunner,
    FaultPolicy,
    accuracy_experiment,
    build_leaderboard,
    campaign_experiment,
    failure_rows,
    format_table,
    granularity_experiment,
    motivation_experiment,
    make_pool,
    speedup_experiment,
    statistics_experiment,
)
from .harness.runner import BOTH_CONFIGS
from .samplers import registered_methods
from .workloads import benchmark_names, load_trace
from .workloads import sets as workload_sets
from .workloads import trace_import as workload_trace_import

#: Experiment names accepted by the ``experiment`` subcommand.
EXPERIMENTS = ("fig1", "fig3", "fig4", "table2", "table3", "motivation",
               "campaign")

#: Default population of ``repro experiment campaign``: the suite's
#: phase-heavy benchmarks plus a slice of every seeded family.
DEFAULT_CAMPAIGN = ("phase-heavy + fam:irregular[0:2] "
                    "+ fam:phase-heavy[0:2] + fam:input-dependent[0:2] "
                    "+ fam:multi-regime[0:2] + fam:cache-hostile[0:2]")

#: Exit code when the suite completed but some runs failed (partial
#: tables were rendered; details went to stderr).
EXIT_PARTIAL = 1

#: ``ReproError``-to-exit-code mapping: user/configuration mistakes exit
#: 2 (argparse's own convention), data errors (corrupt trace/history
#: files) exit 1, any other library error 70 (EX_SOFTWARE).  First match
#: wins.
ERROR_EXIT_CODES = (
    (ConfigError, 2),
    (HarnessError, 2),
    (FaultSpecError, 2),
    (ObservabilityError, 1),
    (TraceImportError, 1),
    (ReproError, 70),
)


def exit_code_for(error: ReproError) -> int:
    """The process exit code a library error maps to."""
    for error_class, code in ERROR_EXIT_CODES:
        if isinstance(error, error_class):
            return code
    return 70


def _config_of(name: str) -> MachineConfig:
    return {"a": CONFIG_A, "b": CONFIG_B}[name.lower()]


def _configure_logging(args: argparse.Namespace) -> None:
    """Route harness progress through ``logging`` (satisfying ``-v``).

    Parallel workers log through the same module loggers; keeping output
    on the logging machinery (instead of raw ``print``) stops interleaved
    stdout from concurrent processes.
    """
    verbose = getattr(args, "verbose", 0)
    if verbose >= 2:
        level = logging.DEBUG
    elif verbose >= 1 or getattr(args, "progress", False):
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(level=level, format="%(message)s")


def _emit_timing(runner: ExperimentRunner, args: argparse.Namespace) -> None:
    """Print and/or dump the per-stage timing report when requested."""
    if getattr(args, "timing", False):
        print(runner.timing.format_report())
    timing_json = getattr(args, "timing_json", None)
    if timing_json:
        payload = runner.timing.to_dict()
        Path(timing_json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[timing report written to {timing_json}]")


def _emit_obs(
    runner: ExperimentRunner,
    args: argparse.Namespace,
    config: Optional[MachineConfig] = None,
    names: Optional[List[str]] = None,
    outcome=None,
) -> None:
    """Write the observability artefacts the flags asked for.

    All three sinks share one :class:`RunManifest` snapshot, so the
    trace header, the standalone manifest and the metrics exposition
    describe the same invocation.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    manifest_out = getattr(args, "manifest_out", None)
    if not (trace_out or metrics_out or manifest_out):
        return
    manifest = RunManifest.collect(
        runner, config=config, names=names or [], outcome=outcome
    )
    if trace_out:
        count = write_trace_jsonl(
            trace_out, runner.obs.tracer, runner.obs.metrics,
            manifest.to_dict(),
        )
        print(f"[trace: {count} records written to {trace_out}]")
    if metrics_out:
        write_prometheus(metrics_out, runner.obs.metrics)
        print(f"[metrics written to {metrics_out}]")
    if manifest_out:
        manifest.write(manifest_out)
        print(f"[manifest written to {manifest_out}]")


def _start_telemetry(
    runner: ExperimentRunner, args: argparse.Namespace
):
    """Attach the live telemetry plane when ``--serve``/``--events-out``
    ask for it; returns ``(plane, server)`` or ``None``.

    The plane folds streamed worker metrics into a live registry and
    records lifecycle events; the server (only with ``--serve``) exposes
    ``/metrics``, ``/progress``, ``/events`` and ``/healthz`` while the
    campaign runs.  Telemetry is strictly out-of-band — results are
    byte-identical with or without it.
    """
    serve_port = getattr(args, "serve", None)
    events_out = getattr(args, "events_out", None)
    if serve_port is None and events_out is None:
        return None
    plane = TelemetryPlane(runner.obs, events=EventLog(sink=events_out))
    runner.telemetry = plane
    server = None
    if serve_port is not None:
        server = TelemetryServer(plane, port=serve_port)
        server.start()
        print(f"[telemetry: {server.url}/metrics /progress /events "
              f"/healthz]", file=sys.stderr)
    return (plane, server)


def _finish_telemetry(handle, args: argparse.Namespace) -> None:
    """Flip ``/healthz`` to done, honour ``--serve-grace``, tear down.

    ``mark_done`` runs only after every artefact (``--metrics-out`` et
    al.) is written, so a scraper that observed ``phase: done`` can take
    one final ``/metrics`` sample and trust it equals the written file.
    """
    if handle is None:
        return
    plane, server = handle
    if server is not None:
        server.mark_done()
        grace = getattr(args, "serve_grace", 0.0) or 0.0
        if grace > 0:
            time.sleep(grace)
        server.stop()
    plane.close()


def _history_store(args: argparse.Namespace) -> RunHistory:
    """The history store the flags point at (default: ``.repro_history``)."""
    directory = getattr(args, "history_dir", None)
    return RunHistory(Path(directory) if directory else None)


def _append_history(
    runner: ExperimentRunner,
    args: argparse.Namespace,
    kind: str,
    config: Optional[MachineConfig] = None,
    names: Optional[List[str]] = None,
    runs=(),
    outcome=None,
    ranks=None,
) -> None:
    """Append this invocation's record to the cross-run history.

    *ranks* (leaderboard invocations) attaches the aggregate rank per
    method before the record seals, so ``obs diff`` can flag rank
    regressions.  A failed append (read-only checkout, full disk) warns
    instead of failing the run — the history is a byproduct, not the
    result.
    """
    if getattr(args, "no_history", False):
        return
    manifest = RunManifest.collect(
        runner, config=config, names=names or [], outcome=outcome
    )
    record = record_from_manifest(
        manifest, runs=runs, kind=kind, registry=runner.obs.metrics
    )
    if ranks:
        # record_from_manifest already sealed; re-open so the run_id
        # digest covers the ranks too.
        record.ranks = dict(ranks)
        record.run_id = ""
    try:
        _history_store(args).append(record)
    except OSError as error:
        print(f"warning: history not recorded: {error}", file=sys.stderr)


def _methods_of(args: argparse.Namespace):
    """The ``--methods`` selection, or ``None`` for every registered one."""
    methods = getattr(args, "methods", None)
    return tuple(methods) if methods else None


def _resolve_benchmarks(exprs) -> Optional[List[str]]:
    """Resolve ``--benchmarks`` set expressions to an ordered name list.

    Multiple expressions union (each parenthesised so operator
    precedence cannot leak between arguments); ``None``/empty means "no
    selection" and callers fall back to the suite default.
    """
    if not exprs:
        return None
    expression = (exprs[0] if len(exprs) == 1
                  else " + ".join(f"({e})" for e in exprs))
    return list(workload_sets.resolve(expression))


def _resolve_one(expression: str, flag: str) -> str:
    """Resolve *expression* to exactly one benchmark, or exit 2."""
    names = workload_sets.resolve(expression)
    if len(names) != 1:
        raise HarnessError(
            f"{flag} needs exactly one benchmark, but {expression!r} "
            f"resolves to {len(names)}: {', '.join(names[:8])}"
            f"{', ...' if len(names) > 8 else ''}"
        )
    return names[0]


def _cmd_run(args: argparse.Namespace) -> int:
    benchmark = _resolve_one(args.benchmark, "run")
    runner = ExperimentRunner(
        workload_scale=args.scale, methods=_methods_of(args)
    )
    config = _config_of(args.config)
    run = runner.run_benchmark(benchmark, config)
    print(f"{benchmark} on {config.name}: baseline CPI "
          f"{run.baseline.cpi:.3f}, L1 {run.baseline.l1_hit_rate:.4f}, "
          f"L2 {run.baseline.l2_hit_rate:.4f}")
    # The speedup column divides by SimPoint (the paper's axis) when it
    # ran; under a --methods selection without it, fall back to speedup
    # over full detailed simulation.
    over_simpoint = "simpoint" in run.methods
    rows = []
    for method, result in run.methods.items():
        speedup = (run.speedup(method) if over_simpoint
                   else run.speedup_over_full(method))
        rows.append([
            method,
            result.stats.n_leaves,
            f"{result.estimate.cpi:.3f}",
            f"{100 * result.deviation.cpi:.2f}%",
            f"{100 * result.deviation.l1_hit_rate:.2f}%",
            f"{100 * result.deviation.l2_hit_rate:.2f}%",
            f"{speedup:.2f}x",
        ])
    print(format_table(
        ["method", "points", "CPI est", "CPI dev", "L1 dev", "L2 dev",
         "speedup" if over_simpoint else "spd/full"],
        rows,
    ))
    _emit_timing(runner, args)
    _emit_obs(runner, args, config=config, names=[benchmark])
    _append_history(
        runner, args, kind="run", config=config, names=[benchmark],
        runs=[run],
    )
    return 0


def _policy_of(args: argparse.Namespace) -> FaultPolicy:
    """Build the fault policy from the ``--retries`` family of flags."""
    return FaultPolicy(
        max_retries=getattr(args, "retries", 1),
        timeout=getattr(args, "timeout", None),
        fail_fast=getattr(args, "fail_fast", False),
    )


def _make_runner(args: argparse.Namespace) -> ExperimentRunner:
    runner = ExperimentRunner(
        workload_scale=args.scale,
        jobs=getattr(args, "jobs", 1),
        policy=_policy_of(args),
        methods=_methods_of(args),
    )
    runner.resume = getattr(args, "resume", False)
    if getattr(args, "dispatch", False):
        runner.pool = make_pool(
            dispatch=True,
            workers=getattr(args, "workers", 2),
            launcher=getattr(args, "launcher", None),
            lease_timeout=getattr(args, "lease_timeout",
                                  DEFAULT_LEASE_TIMEOUT),
        )
    return runner


def _report_failures(runner: ExperimentRunner) -> int:
    """Print the failure summary (stderr) and pick the exit code."""
    if not runner.failures:
        return 0
    print(
        f"{len(runner.failures)} run(s) failed "
        f"(rerun with --resume to re-attempt only those):",
        file=sys.stderr,
    )
    for failure in runner.failures:
        print(f"  {failure.describe()}", file=sys.stderr)
    return EXIT_PARTIAL


def _cmd_suite(args: argparse.Namespace) -> int:
    names = _resolve_benchmarks(getattr(args, "benchmarks", None))
    runner = _make_runner(args)
    config = _config_of(args.config)
    telemetry = _start_telemetry(runner, args)
    outcome = runner.run_suite(config, names=names, quick=args.quick,
                               progress=args.progress)
    # Columns follow the selected method set: one CPI-deviation column
    # per method, plus speedup-over-SimPoint columns (the paper's Figs
    # 3/4 axis) when SimPoint itself is in the set to divide by.
    dev_methods = list(runner.methods)
    spd_methods = (
        [m for m in ("coasts", "multilevel") if m in runner.methods]
        if "simpoint" in runner.methods else []
    )
    headers = (
        ["benchmark", "CPI"]
        + [f"{m} dev" for m in dev_methods]
        + [f"{m} spd" for m in spd_methods]
    )
    rows = []
    for run in outcome:
        rows.append(
            [run.benchmark, f"{run.baseline.cpi:.3f}"]
            + [f"{100 * run.methods[m].deviation.cpi:.2f}%"
               for m in dev_methods]
            + [f"{run.speedup(m):.2f}x" for m in spd_methods]
        )
    rows.extend(failure_rows(outcome.failures, width=len(headers)))
    print(format_table(
        headers,
        rows,
        title=f"suite summary ({config.name})",
    ))
    chosen = names if names is not None else \
        benchmark_names(quick=args.quick)
    _emit_timing(runner, args)
    _emit_obs(
        runner, args, config=config, names=chosen, outcome=outcome,
    )
    _append_history(
        runner, args, kind="suite", config=config,
        names=chosen, runs=list(outcome), outcome=outcome,
    )
    _finish_telemetry(telemetry, args)
    return _report_failures(runner)


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    """Rank every selected sampler by accuracy × speedup over a suite."""
    runner = _make_runner(args)
    config = _config_of(args.config)
    names = _resolve_benchmarks(args.benchmarks) or \
        benchmark_names(quick=args.quick)
    telemetry = _start_telemetry(runner, args)
    outcome = runner.run_suite(
        config, names=names, quick=args.quick, progress=args.progress
    )
    runs = list(outcome)
    if not runs:
        _report_failures(runner)
        _finish_telemetry(telemetry, args)
        print("error: no benchmark completed; nothing to rank",
              file=sys.stderr)
        return EXIT_PARTIAL
    board = build_leaderboard(runs, methods=runner.methods)
    print(board.format())
    if args.json:
        Path(args.json).write_text(
            json.dumps(board.to_dict(), indent=2) + "\n"
        )
        print(f"[leaderboard written to {args.json}]")
    _emit_timing(runner, args)
    _emit_obs(runner, args, config=config, names=names, outcome=outcome)
    _append_history(
        runner, args, kind="leaderboard", config=config, names=names,
        runs=runs, outcome=outcome, ranks=board.ranks,
    )
    _finish_telemetry(telemetry, args)
    return _report_failures(runner)


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    telemetry = _start_telemetry(runner, args)
    name = args.name
    if name in ("fig3", "fig4"):
        method = "coasts" if name == "fig3" else "multilevel"
        series = speedup_experiment(runner, method, progress=args.progress)
        rows = [[b, f"{v:.2f}x"] for b, v in series.speedups.items()]
        rows.extend(failure_rows(series.failures, width=2))
        if series.speedups:
            rows.append(["GEOMEAN", f"{series.geomean:.2f}x"])
        print(format_table(["benchmark", "speedup"], rows,
                           title=f"{name}: {method} over SimPoint"))
    elif name == "table2":
        table = accuracy_experiment(runner, BOTH_CONFIGS,
                                    progress=args.progress)
        rows = []
        for metric in table.METRICS:
            for method in table.methods:
                row = [metric, method]
                for config_name in table.config_names:
                    cell = table.cells[(metric, method, config_name)]
                    row.append(f"{100 * cell.average:.2f}%")
                    row.append(f"{100 * cell.worst:.2f}%")
                rows.append(row)
        print(format_table(
            ["metric", "method", "A avg", "A worst", "B avg", "B worst"],
            rows, title="table2: deviations",
        ))
    elif name == "table3":
        rows = [
            [r.method, f"{r.mean_interval_size:.0f}",
             f"{r.mean_sample_number:.1f}",
             f"{100 * r.mean_detail_fraction:.3f}%",
             f"{100 * r.mean_functional_fraction:.2f}%"]
            for r in statistics_experiment(runner, progress=args.progress)
        ]
        print(format_table(
            ["method", "mean interval", "samples", "detail %",
             "functional %"],
            rows, title="table3: point statistics",
        ))
    elif name == "motivation":
        rows = [
            [r.benchmark, r.phase_count,
             f"{100 * r.last_point_position:.1f}%"]
            for r in motivation_experiment(runner, progress=args.progress)
        ]
        print(format_table(
            ["benchmark", "phases", "last position"], rows,
            title="III-B motivation statistics",
        ))
    elif name == "campaign":
        expression = args.benchmark or DEFAULT_CAMPAIGN
        result = campaign_experiment(runner, expression,
                                     progress=args.progress,
                                     jobs=getattr(args, "jobs", None))
        rows = []
        for group in result.groups:
            for method in group.mean_cpi_deviation:
                rows.append([
                    group.group, len(group.benchmarks), method,
                    f"{100 * group.mean_cpi_deviation[method]:.2f}%",
                    f"{100 * group.worst_cpi_deviation[method]:.2f}%",
                ])
        rows.extend(failure_rows(result.failures, width=5))
        print(format_table(
            ["group", "n", "method", "mean CPI dev", "worst CPI dev"],
            rows, title=f"campaign: {expression}",
        ))
    elif name == "fig1":
        series = granularity_experiment(runner, args.benchmark or "lucas")
        print(format_table(
            ["curve", "intervals", "points", "roughness"],
            [
                ["fine", len(series.fine_values),
                 len(series.fine_selected), f"{series.fine_variation:.3f}"],
                ["coarse", len(series.coarse_values),
                 len(series.coarse_selected),
                 f"{series.coarse_variation:.3f}"],
            ],
            title=f"fig1: granularity on {series.benchmark}",
        ))
    _emit_timing(runner, args)
    _emit_obs(runner, args)
    _finish_telemetry(telemetry, args)
    return _report_failures(runner)


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the microbenchmark suite; write and optionally compare."""
    if args.scale <= 0:
        raise HarnessError(f"scale must be > 0, got {args.scale}")
    if args.reps <= 0:
        raise HarnessError(f"reps must be >= 1, got {args.reps}")
    if getattr(args, "benchmark", None):
        set_bench_workload(_resolve_one(args.benchmark, "bench --benchmark"))
    cases = select_cases(args.filter)
    if args.list:
        for case in cases:
            print(f"{case.name}: {case.description} "
                  f"[{case.layer}: {', '.join(case.backends)}]")
        return 0

    baseline = None
    if args.compare is not None:
        # Load (and validate) the baseline before spending minutes
        # measuring, so a bad path fails fast with exit code 2.
        if args.threshold <= 0:
            raise HarnessError(
                f"threshold must be > 0, got {args.threshold}"
            )
        baseline = load_report(args.compare)

    obs = ObsContext()
    results = run_bench(
        cases, scale=args.scale, reps=args.reps, warmup=args.warmup, obs=obs
    )

    rows = []
    for result in results:
        vectorized = result.timings.get("vectorized")
        scalar = result.timings.get("scalar")
        rows.append([
            result.name,
            f"{1e3 * vectorized.best:.3f}" if vectorized else "-",
            f"{1e3 * vectorized.mean:.3f}" if vectorized else "-",
            f"{1e3 * scalar.best:.3f}" if scalar else "-",
            f"{result.speedup:.2f}x" if result.speedup is not None else "-",
        ])
    print(format_table(
        ["case", "vec best ms", "vec mean ms", "scalar best ms", "speedup"],
        rows,
        title=f"repro bench (scale {args.scale}, {args.reps} reps, "
              f"{args.warmup} warmup)",
    ))

    report = BenchReport.build(
        results, scale=args.scale,
        min_speedups=baseline.min_speedups if baseline is not None else None,
    )
    report.write(args.out)
    print(f"[bench report written to {args.out}]")
    if not getattr(args, "no_history", False):
        try:
            _history_store(args).append(record_from_bench(report))
        except OSError as error:
            print(f"warning: history not recorded: {error}", file=sys.stderr)
    if args.trace_out:
        count = write_trace_jsonl(
            args.trace_out, obs.tracer, obs.metrics, report.to_dict()
        )
        print(f"[trace: {count} records written to {args.trace_out}]")

    if baseline is not None:
        regressions = compare_reports(
            report, baseline, threshold=args.threshold, wall=args.wall
        )
        if regressions:
            print(f"{len(regressions)} perf regression(s) vs "
                  f"{args.compare}:", file=sys.stderr)
            for regression in regressions:
                print(f"  {regression}", file=sys.stderr)
            return EXIT_PARTIAL
        print(f"no perf regressions vs {args.compare}")
    return 0


def _cmd_sets(args: argparse.Namespace) -> int:
    """List the named workload sets, or resolve a set expression."""
    if args.expression is None:
        rows = [[name, summary]
                for name, summary in workload_sets.describe_sets()]
        print(format_table(["set", "members"], rows,
                           title="named workload sets"))
        return 0
    for name in workload_sets.resolve(args.expression):
        print(name)
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Unroll one benchmark and write its run-length stream to a file."""
    benchmark = _resolve_one(args.benchmark, "trace export")
    trace = load_trace(benchmark, scale=args.scale)
    path = workload_trace_import.export_trace(
        trace, args.out, benchmark=benchmark, scale=args.scale
    )
    print(f"[{benchmark} @ scale {args.scale:g}: "
          f"{trace.n_segments} segments, "
          f"{trace.total_instructions} instructions -> {path}]")
    print(f"run it back with: repro run 'import:{path}'")
    return 0


def _cmd_trace_import(args: argparse.Namespace) -> int:
    """Validate an external trace file and report its vital signs."""
    obs = ObsContext()
    record = workload_trace_import.load_import(
        args.path, metrics=obs.metrics
    )
    n_segments = int(record.arrays["reps"].shape[0])
    print(f"[valid {record.path}: base {record.benchmark} @ scale "
          f"{record.scale:g}, {n_segments} segments, "
          f"{record.total_instructions} instructions, "
          f"sha256 {record.digest[:16]}]")
    print(f"benchmark name: import:{args.path}")
    return 0


def _require_trace(path_text: str) -> Path:
    """Missing trace files are usage errors (exit 2), not data errors."""
    path = Path(path_text)
    if not path.exists():
        raise HarnessError(f"no such trace file: {path}")
    return path


def _cmd_obs_report(args: argparse.Namespace) -> int:
    dump = read_trace_jsonl(_require_trace(args.trace))
    if getattr(args, "json", False):
        print(json.dumps(trace_report_json(dump), indent=2))
        return 0
    print(format_trace_report(dump, max_depth=args.depth))
    return 0


def _cmd_obs_serve(args: argparse.Namespace) -> int:
    """Serve a recorded trace dump over the live-telemetry endpoints."""
    dump = read_trace_jsonl(_require_trace(args.trace))
    obs = ObsContext()
    obs.metrics.merge(dump.metrics)
    plane = TelemetryPlane(obs)
    server = TelemetryServer(plane, port=args.port)
    server.start()
    server.mark_done()  # a recorded dump is final by definition
    print(f"[serving {args.trace} on {server.url}; Ctrl-C to stop]")
    try:
        deadline = (
            time.monotonic() + args.duration
            if args.duration is not None else None
        )
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        plane.close()
    return 0


def _cmd_obs_events(args: argparse.Namespace) -> int:
    """Print (or tail) a flight-recorder JSONL log."""
    filters = parse_filters(args.filter)
    path = Path(args.path)
    if args.follow:
        # A missing file is waited for, tail -f style: the campaign
        # being watched may not have emitted its first event yet.
        try:
            for event in follow_events(path, duration=args.duration):
                if match_event(event, filters):
                    print(format_event(event), flush=True)
        except KeyboardInterrupt:
            pass
        return 0
    if not path.exists():
        raise HarnessError(f"no such events file: {path}")
    events = [e for e in read_events(path) if match_event(e, filters)]
    if args.limit:
        events = events[-args.limit:]
    for event in events:
        print(format_event(event))
    return 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    """Export a recorded trace as folded stacks (flamegraph input)."""
    dump = read_trace_jsonl(_require_trace(args.trace))
    if args.out:
        count = write_folded(args.out, dump)
        print(f"[{count} folded stacks written to {args.out}]")
    else:
        sys.stdout.write(render_folded(dump))
    return 0


def _cmd_obs_diag(args: argparse.Namespace) -> int:
    dump = read_trace_jsonl(_require_trace(args.trace))
    views = diag_views(dump.metrics)
    print(format_diag_report(
        views, benchmark=args.benchmark, method=args.method
    ))
    return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    records = _history_store(args).load()
    print(format_history(records, limit=args.limit))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    store = _history_store(args)
    records = store.load()
    a = store.resolve(args.run_a, records)
    b = store.resolve(args.run_b, records)
    diff = diff_records(a, b, threshold=args.threshold)
    print(format_diff(diff, verbose=args.all))
    if diff.regressed:
        print(
            f"{len(diff.regressed)} metric(s) regressed", file=sys.stderr
        )
        return EXIT_PARTIAL
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-level phase analysis for sampling simulation "
                    "(DATE 2013 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default: 1.0)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="progress at INFO (-v) or DEBUG (-vv) level")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        # accepted both before and after the subcommand
        p.add_argument("--scale", type=float, default=argparse.SUPPRESS,
                       help="workload scale factor (default: 1.0)")
        p.add_argument("-v", "--verbose", action="count",
                       default=argparse.SUPPRESS,
                       help="progress at INFO (-v) or DEBUG (-vv) level")
        p.add_argument("--timing", action="store_true",
                       help="print the per-stage timing report")
        p.add_argument("--timing-json", metavar="FILE", default=None,
                       help="dump the timing report as JSON to FILE")
        p.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the span/metric event log as JSONL to "
                            "FILE (inspect with `repro obs report`)")
        p.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the metrics as Prometheus text "
                            "exposition to FILE")
        p.add_argument("--manifest-out", metavar="FILE", default=None,
                       help="write the run manifest (provenance record) "
                            "as JSON to FILE")

    def add_history(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-history", action="store_true",
                       help="do not append this invocation to the "
                            "cross-run history")
        p.add_argument("--history-dir", metavar="DIR", default=None,
                       help="history directory (default: .repro_history, "
                            "or $REPRO_HISTORY_DIR)")

    def add_methods(p: argparse.ArgumentParser) -> None:
        # Choices come from the sampler registry, so a sampler
        # registered by a plugin import shows up automatically.
        p.add_argument("--methods", nargs="+", metavar="METHOD",
                       choices=registered_methods(), default=None,
                       help="sampling methods to run (default: every "
                            "registered sampler: "
                            f"{', '.join(registered_methods())})")

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for per-benchmark runs "
                            "(0 = one per CPU; default: 1)")

    def add_dispatch(p: argparse.ArgumentParser) -> None:
        # Distributed backend: subprocess workers under lease-based
        # dispatch (see `Distributed campaigns` in the README).
        p.add_argument("--dispatch", action="store_true",
                       help="execute runs through the distributed "
                            "dispatcher (subprocess workers, lease-based "
                            "work stealing) instead of the in-process "
                            "pool")
        p.add_argument("--workers", type=int, default=2, metavar="N",
                       help="dispatched worker processes (default: 2)")
        p.add_argument("--launcher", metavar="CMD", default=None,
                       help="worker launch command (default: this "
                            "python running -m repro.harness.worker; an "
                            "SSH/cluster launcher is just a prefix, e.g. "
                            "'ssh node7 python -m repro.harness.worker')")
        p.add_argument("--lease-timeout", type=float,
                       default=DEFAULT_LEASE_TIMEOUT, metavar="SECONDS",
                       help="reclaim a task after this long without a "
                            "worker heartbeat (default: "
                            f"{DEFAULT_LEASE_TIMEOUT:g})")

    def add_serve(p: argparse.ArgumentParser) -> None:
        # Live telemetry plane: streamed worker metrics, progress and
        # the flight recorder, scrapeable while the campaign runs.
        p.add_argument("--serve", type=int, default=None, metavar="PORT",
                       help="serve live telemetry over HTTP while the "
                            "campaign runs: /metrics (Prometheus), "
                            "/progress, /events, /healthz "
                            "(PORT 0 = ephemeral)")
        p.add_argument("--serve-grace", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the telemetry server up this long "
                            "after the command finishes, for a final "
                            "scrape (default: 0)")
        p.add_argument("--events-out", metavar="FILE", default=None,
                       help="append flight-recorder lifecycle events as "
                            "JSONL to FILE (tail with `repro obs events "
                            "--follow`)")

    def add_fault(p: argparse.ArgumentParser) -> None:
        # Fault tolerance: failing runs are retried, then reported as
        # FAILED table rows (exit 1) instead of aborting the campaign.
        p.add_argument("--retries", type=int, default=1, metavar="N",
                       help="re-attempts per failing run (default: 1)")
        p.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-run wall-clock bound (default: none)")
        p.add_argument("--fail-fast", action="store_true",
                       help="abort the whole suite on the first run "
                            "that exhausts its retries")
        p.add_argument("--resume", action="store_true",
                       help="skip runs already checkpointed in the suite "
                            "journal; re-attempt failed/missing ones")

    run = sub.add_parser("run", help="run one benchmark with all methods")
    run.add_argument("benchmark",
                     help="benchmark name or set expression resolving to "
                          "exactly one benchmark (suite name, "
                          "fam:<family>[i], or import:<path>; see "
                          "`repro sets`)")
    run.add_argument("--config", choices=("a", "b"), default="a")
    add_methods(run)
    add_common(run)
    add_history(run)
    run.set_defaults(func=_cmd_run)

    suite = sub.add_parser("suite", help="whole-suite summary")
    suite.add_argument("--config", choices=("a", "b"), default="a")
    suite.add_argument("--progress", action="store_true")
    suite.add_argument("--quick", action="store_true",
                       help="only the quick benchmark subset")
    suite.add_argument("--benchmarks", nargs="+", metavar="EXPR",
                       default=None,
                       help="benchmark set expression(s), e.g. "
                            "'phase-heavy + fam:irregular[0:4]' "
                            "(multiple EXPRs union; overrides --quick; "
                            "see `repro sets`)")
    add_methods(suite)
    add_jobs(suite)
    add_dispatch(suite)
    add_serve(suite)
    add_fault(suite)
    add_common(suite)
    add_history(suite)
    suite.set_defaults(func=_cmd_suite)

    leaderboard = sub.add_parser(
        "leaderboard",
        help="run every registered sampler over a suite and rank them "
             "by accuracy x speedup",
    )
    leaderboard.add_argument("--config", choices=("a", "b"), default="a")
    leaderboard.add_argument("--progress", action="store_true")
    leaderboard.add_argument("--quick", action="store_true",
                             help="only the quick benchmark subset")
    leaderboard.add_argument("--benchmarks", nargs="+", metavar="EXPR",
                             default=None,
                             help="benchmark set expression(s), e.g. "
                                  "'cache-hostile - quick' (default: the "
                                  "whole suite, or --quick subset)")
    leaderboard.add_argument("--json", metavar="FILE", default=None,
                             help="also write the ranked tables as JSON "
                                  "to FILE")
    add_methods(leaderboard)
    add_jobs(leaderboard)
    add_dispatch(leaderboard)
    add_serve(leaderboard)
    add_fault(leaderboard)
    add_common(leaderboard)
    add_history(leaderboard)
    leaderboard.set_defaults(func=_cmd_leaderboard)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--benchmark", default=None,
                            help="benchmark for fig1 (default lucas); for "
                                 "campaign, the population set expression")
    add_methods(experiment)
    experiment.add_argument("--progress", action="store_true")
    add_jobs(experiment)
    add_dispatch(experiment)
    add_serve(experiment)
    add_fault(experiment)
    add_common(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    bench = sub.add_parser(
        "bench",
        help="run the analysis microbenchmark suite and record "
             "BENCH_phase_analysis.json",
    )
    bench.add_argument("--reps", type=int, default=5, metavar="N",
                       help="measured repetitions per case and backend "
                            "(default: 5)")
    bench.add_argument("--warmup", type=int, default=1, metavar="N",
                       help="unmeasured warm-up runs per case and backend "
                            "(default: 1)")
    bench.add_argument("--filter", default=None, metavar="PATTERN",
                       help="only cases whose name contains PATTERN "
                            "(glob patterns match the whole name; a "
                            "layer name selects that layer)")
    bench.add_argument("--list", action="store_true",
                       help="list the matching cases and exit")
    bench.add_argument("--benchmark", metavar="EXPR", default=None,
                       help="workload for the trace-backed cases: any "
                            "expression resolving to one benchmark "
                            f"(default: {BENCH_WORKLOAD})")
    # The bench suite has its own scale default: trace-backed cases use
    # a reduced gzip workload so a full run stays interactive.
    bench.add_argument("--scale", type=float, default=DEFAULT_BENCH_SCALE,
                       help="workload scale for the trace-backed cases "
                            f"(default: {DEFAULT_BENCH_SCALE})")
    bench.add_argument("--out", metavar="FILE", default=DEFAULT_REPORT_NAME,
                       help=f"report file (default: {DEFAULT_REPORT_NAME})")
    bench.add_argument("--compare", metavar="BASELINE", default=None,
                       help="compare against a recorded baseline report; "
                            "regressions exit 1")
    bench.add_argument("--threshold", type=float, default=0.5,
                       metavar="FRACTION",
                       help="tolerated fractional slack for --compare; "
                            "applies to the relative ratio check and "
                            "--wall, never to the min_speedup floors "
                            "(default: 0.5)")
    bench.add_argument("--wall", action="store_true",
                       help="also compare wall-clock times (same-host "
                            "baselines only; ratio checks are always on)")
    bench.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the bench span/metric log as JSONL")
    bench.add_argument("-v", "--verbose", action="count",
                       default=argparse.SUPPRESS,
                       help="per-case progress at INFO level")
    add_history(bench)
    bench.set_defaults(func=_cmd_bench)

    sets_cmd = sub.add_parser(
        "sets",
        help="list the named workload sets, or resolve a set expression",
    )
    sets_cmd.add_argument(
        "expression", nargs="?", default=None,
        help="set expression to resolve (one benchmark name per output "
             "line); omit to list the named sets and families. Grammar: "
             "names/sets combined with + (union), - (difference, "
             "whitespace-separated), [a:b] slices and parentheses, e.g. "
             "'phase-heavy - quick + fam:irregular[0:8]'",
    )
    sets_cmd.set_defaults(func=_cmd_sets)

    trace_cmd = sub.add_parser(
        "trace",
        help="export a benchmark's run-length stream, or validate an "
             "external one for use as import:<path>",
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command",
                                         required=True)
    texport = trace_sub.add_parser(
        "export",
        help="unroll one benchmark and write its segment stream "
             "(.jsonl or .npz)",
    )
    texport.add_argument("benchmark",
                         help="benchmark name or single-benchmark "
                              "expression")
    texport.add_argument("--out", metavar="FILE", required=True,
                         help="output file; .jsonl (line-per-segment) or "
                              ".npz (flat arrays)")
    texport.add_argument("--scale", type=float, default=argparse.SUPPRESS,
                         help="workload scale to unroll at "
                              "(default: 1.0)")
    texport.set_defaults(func=_cmd_trace_export)
    timport = trace_sub.add_parser(
        "import",
        help="validate an external trace file; invalid files are "
             "rejected with exit 1",
    )
    timport.add_argument("path", help="trace file (.jsonl or .npz)")
    timport.set_defaults(func=_cmd_trace_import)

    obs = sub.add_parser("obs", help="inspect observability artefacts")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="render a --trace-out JSONL file as a span tree, aggregate "
             "table and counter summary",
    )
    report.add_argument("trace", help="path to a --trace-out JSONL file")
    report.add_argument("--depth", type=int, default=None, metavar="N",
                        help="limit the rendered span tree depth")
    report.add_argument("--json", action="store_true",
                        help="emit the span tree, aggregates and metrics "
                             "as one JSON document instead of text")
    report.set_defaults(func=_cmd_obs_report)

    serve = obs_sub.add_parser(
        "serve",
        help="serve a recorded --trace-out dump over the live-telemetry "
             "HTTP endpoints (/metrics, /progress, /healthz)",
    )
    serve.add_argument("trace", help="path to a --trace-out JSONL file")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="port to bind (default: 0 = ephemeral)")
    serve.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="serve this long then exit (default: until "
                            "Ctrl-C)")
    serve.set_defaults(func=_cmd_obs_serve)

    events = obs_sub.add_parser(
        "events",
        help="print or tail a flight-recorder log (--events-out JSONL)",
    )
    events.add_argument("path", help="path to an --events-out JSONL file")
    events.add_argument("--follow", action="store_true",
                        help="tail -f style: wait for new events (and "
                             "for the file itself) instead of exiting")
    events.add_argument("--filter", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="only events matching every filter; a bare "
                             "word filters the event kind (repeatable)")
    events.add_argument("--limit", type=int, default=0, metavar="N",
                        help="only the N most recent events (default: "
                             "all)")
    events.add_argument("--duration", type=float, default=None,
                        metavar="SECONDS",
                        help="with --follow: stop after this long "
                             "(default: until Ctrl-C)")
    events.set_defaults(func=_cmd_obs_events)

    flame = obs_sub.add_parser(
        "flame",
        help="export a recorded trace as folded stacks "
             "(flamegraph.pl / speedscope input)",
    )
    flame.add_argument("trace", help="path to a --trace-out JSONL file")
    flame.add_argument("--out", metavar="FILE", default=None,
                       help="write to FILE instead of stdout")
    flame.set_defaults(func=_cmd_obs_flame)

    diag = obs_sub.add_parser(
        "diag",
        help="render per-benchmark error budgets (per-phase error "
             "attribution and clustering-quality telemetry) from a "
             "--trace-out JSONL file",
    )
    diag.add_argument("trace", help="path to a --trace-out JSONL file")
    diag.add_argument("--benchmark", default=None,
                      help="only this benchmark")
    diag.add_argument("--method", default=None,
                      help="only this sampling method")
    diag.set_defaults(func=_cmd_obs_diag)

    history = obs_sub.add_parser(
        "history", help="list the recorded cross-run history"
    )
    history.add_argument("--limit", type=int, default=0, metavar="N",
                         help="only the N most recent records")
    add_history(history)
    history.set_defaults(func=_cmd_obs_history)

    diff = obs_sub.add_parser(
        "diff",
        help="compare two history records; accuracy regressions exit 1",
    )
    diff.add_argument("run_a", help="older record: 'last', 'prev', '~N' "
                                    "or a run_id prefix")
    diff.add_argument("run_b", help="newer record (same forms)")
    diff.add_argument("--threshold", type=float, default=1e-9,
                      metavar="DELTA",
                      help="deviation growth tolerated before a metric "
                           "counts as regressed (default: 1e-9)")
    diff.add_argument("--all", action="store_true",
                      help="also print PASS and INFO entries")
    add_history(diff)
    diff.set_defaults(func=_cmd_obs_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Library errors (:class:`ReproError`) print a one-line message and
    exit with a mapped code (see :data:`ERROR_EXIT_CODES`) instead of a
    traceback; suites that completed partially exit :data:`EXIT_PARTIAL`
    after rendering their tables.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
