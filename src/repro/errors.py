"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A machine or sampling configuration is inconsistent or out of range."""


class ProgramError(ReproError):
    """A program / CFG is malformed (dangling edges, empty blocks, ...)."""


class TraceError(ReproError):
    """The dynamic trace is inconsistent with the static program."""


class TraceImportError(ReproError):
    """An external trace file is malformed or inconsistent with the base
    workload it claims to have been exported from."""


class ClusteringError(ReproError):
    """Phase clustering could not be performed (bad k, empty data, ...)."""


class SamplingError(ReproError):
    """A sampling method received inputs it cannot sample."""


class SimulationError(ReproError):
    """A simulator was driven into an invalid state."""


class HarnessError(ReproError):
    """The experiment harness was misused or an experiment is unknown."""


class RunTimeout(ReproError):
    """A pipeline run exceeded the fault policy's per-run timeout."""


class WorkerCrash(ReproError):
    """A worker process died (killed, OOM, segfault) mid-run."""


class DispatchError(ReproError):
    """The distributed dispatcher hit a protocol violation or lost its
    worker fleet (launcher failures, unparseable worker messages)."""


class FaultSpecError(ReproError):
    """A fault-injection spec (``$REPRO_FAULTS``) is malformed."""


class ObservabilityError(ReproError):
    """The observability layer was misused or fed an unreadable trace."""


class InjectedFault(ReproError):
    """An error raised deliberately by the fault-injection harness."""
