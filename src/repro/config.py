"""Machine and sampling configuration.

This module encodes the paper's Table I machine configurations (Part A: base
configuration, Part B: sensitivity-analysis configuration) and the sampling
constants used throughout the evaluation.

Scaling convention
------------------
The paper works in units of millions (M) of instructions on multi-billion
instruction SPEC2000 runs.  The reproduction scales instruction counts by
``SCALE = 250``: one paper "M instruction" corresponds to 250 instructions
here.  Hence the paper's 10M fine-grained SimPoint interval becomes
``FINE_INTERVAL_SIZE = 2_500`` instructions, and the 300M re-sampling
threshold becomes ``75_000``.  All quantities the paper evaluates are ratios
of instruction counts, so they are invariant under this scaling; what must
be preserved (and is, by suite construction) is the hierarchy of ratios:
program >> coarse interval > re-sample threshold >> fine interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Instructions per paper "M instructions" (paper scale is 1_000_000).
SCALE = 250

#: Fine-grained interval size: the paper's recommended 10M SimPoint interval.
FINE_INTERVAL_SIZE = 10 * SCALE

#: Maximum number of clusters for fine-grained SimPoint (SimPoint default).
FINE_KMAX = 30

#: Maximum number of clusters for coarse-grained COASTS phases (paper: 3).
COARSE_KMAX = 3

#: Coarse points larger than this are re-sampled at the second level.
#: The paper derives it as 10M * Kmax = 300M instructions.
RESAMPLE_THRESHOLD = FINE_INTERVAL_SIZE * FINE_KMAX

#: Cyclic program structures covering less than this fraction of dynamic
#: instructions are discarded during COASTS boundary collection (paper: 1%).
MIN_STRUCTURE_COVERAGE = 0.01

#: Dimensionality of the random projection applied to raw BBVs (paper: 15).
PROJECTION_DIM = 15

#: Intervals of size >= 1000M (scaled) are "coarse-grained" per Section I.
COARSE_GRAIN_BOUNDARY = 1000 * SCALE


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level.

    Sizes are in bytes.  ``assoc = 1`` is a direct-mapped cache.
    """

    name: str
    size: int
    assoc: int
    line_size: int
    latency: int

    def __post_init__(self) -> None:
        if self.size <= 0 or self.assoc <= 0 or self.line_size <= 0:
            raise ConfigError(f"cache {self.name}: non-positive geometry")
        if self.latency < 0:
            raise ConfigError(f"cache {self.name}: negative latency")
        if self.size % (self.assoc * self.line_size) != 0:
            raise ConfigError(
                f"cache {self.name}: size {self.size} not divisible by "
                f"assoc*line_size = {self.assoc * self.line_size}"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size // (self.assoc * self.line_size)

    @property
    def n_lines(self) -> int:
        """Total number of cache lines."""
        return self.size // self.line_size


@dataclass(frozen=True)
class BranchPredictorConfig:
    """A combined (bimodal + gshare with meta chooser) branch predictor."""

    kind: str = "combined"
    bht_entries: int = 8192
    history_bits: int = 8
    mispredict_penalty: int = 14

    def __post_init__(self) -> None:
        if self.kind not in ("bimodal", "gshare", "combined", "taken"):
            raise ConfigError(f"unknown predictor kind {self.kind!r}")
        if self.bht_entries <= 0 or self.bht_entries & (self.bht_entries - 1):
            raise ConfigError("bht_entries must be a positive power of two")
        if not 0 <= self.history_bits <= 16:
            raise ConfigError("history_bits must be in [0, 16]")
        if self.mispredict_penalty < 0:
            raise ConfigError("mispredict_penalty must be non-negative")


@dataclass(frozen=True)
class FunctionalUnits:
    """Counts of pipelined functional units (Table I)."""

    int_alu: int = 8
    load_store: int = 4
    fp_add: int = 2
    int_mult_div: int = 2
    fp_mult_div: int = 2

    def __post_init__(self) -> None:
        for fu_name in ("int_alu", "load_store", "fp_add", "int_mult_div", "fp_mult_div"):
            if getattr(self, fu_name) <= 0:
                raise ConfigError(f"functional unit count {fu_name} must be positive")


@dataclass(frozen=True)
class MachineConfig:
    """A full machine configuration, mirroring Table I of the paper."""

    name: str
    issue_width: int = 8
    rob_entries: int = 128
    lsq_entries: int = 64
    int_registers: int = 32
    fp_registers: int = 32
    functional_units: FunctionalUnits = field(default_factory=FunctionalUnits)
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig("il1", 8 * 1024, 2, 32, 1)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig("dl1", 16 * 1024, 4, 32, 2)
    )
    l2cache: CacheConfig = field(
        default_factory=lambda: CacheConfig("ul2", 1024 * 1024, 4, 32, 20)
    )
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    mem_latency_first: int = 150
    mem_latency_next: int = 10

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")
        if self.rob_entries <= 0 or self.lsq_entries <= 0:
            raise ConfigError("ROB/LSQ entries must be positive")
        if self.mem_latency_first < self.l2cache.latency:
            raise ConfigError("memory latency must exceed L2 latency")

    def with_name(self, name: str) -> "MachineConfig":
        """Return a copy of this config under a different name."""
        return replace(self, name=name)


def make_config_a() -> MachineConfig:
    """Table I Part A: the base configuration used against SimPoint."""
    return MachineConfig(name="config_a")


def make_config_b() -> MachineConfig:
    """Table I Part B: the sensitivity-analysis configuration.

    Larger caches (32K direct-mapped I$, 128K 2-way D$, 4M 8-way L2), longer
    memory latency, and a different functional-unit mix.
    """
    return MachineConfig(
        name="config_b",
        functional_units=FunctionalUnits(
            int_alu=6, load_store=2, fp_add=6, int_mult_div=4, fp_mult_div=4
        ),
        icache=CacheConfig("il1", 32 * 1024, 1, 32, 1),
        dcache=CacheConfig("dl1", 128 * 1024, 2, 32, 1),
        l2cache=CacheConfig("ul2", 4 * 1024 * 1024, 8, 32, 30),
        mem_latency_first=200,
        mem_latency_next=15,
    )


#: Table I Part A, ready to use.
CONFIG_A = make_config_a()

#: Table I Part B, ready to use.
CONFIG_B = make_config_b()


@dataclass(frozen=True)
class SamplingConfig:
    """Knobs of the sampling pipeline (paper defaults).

    The defaults replicate the paper's setup: 10M (scaled) fine intervals,
    ``Kmax`` of 30/3 for fine/coarse clustering, 15-dim random projection,
    1% structure-coverage floor and the 300M re-sampling threshold.
    """

    fine_interval_size: int = FINE_INTERVAL_SIZE
    fine_kmax: int = FINE_KMAX
    coarse_kmax: int = COARSE_KMAX
    resample_threshold: int = RESAMPLE_THRESHOLD
    min_structure_coverage: float = MIN_STRUCTURE_COVERAGE
    projection_dim: int = PROJECTION_DIM
    signature_segments: int = 4
    kmeans_seeds: int = 5
    bic_threshold: float = 0.9
    random_seed: int = 42
    full_warming: bool = True
    warmup_instructions: int = 30 * SCALE
    #: Two-phase stratified sampling: total detailed-interval budget
    #: spread over the BBV-cluster strata (Neyman-style allocation).
    stratified_budget: int = 30
    #: Ranked-set sampling: set size m (ranks per cycle, also the number
    #: of rank strata) and the number of repeated subsampling cycles r.
    ranked_set_size: int = 5
    ranked_set_cycles: int = 3

    def __post_init__(self) -> None:
        if self.fine_interval_size <= 0:
            raise ConfigError("fine_interval_size must be positive")
        if self.fine_kmax <= 0 or self.coarse_kmax <= 0:
            raise ConfigError("Kmax values must be positive")
        if self.resample_threshold < self.fine_interval_size:
            raise ConfigError("resample_threshold must be >= fine interval size")
        if not 0.0 <= self.min_structure_coverage < 1.0:
            raise ConfigError("min_structure_coverage must be in [0, 1)")
        if self.projection_dim <= 0:
            raise ConfigError("projection_dim must be positive")
        if self.signature_segments <= 0:
            raise ConfigError("signature_segments must be positive")
        if not 0.0 < self.bic_threshold <= 1.0:
            raise ConfigError("bic_threshold must be in (0, 1]")
        if self.kmeans_seeds <= 0:
            raise ConfigError("kmeans_seeds must be positive")
        if self.warmup_instructions < 0:
            raise ConfigError("warmup_instructions must be non-negative")
        if self.stratified_budget <= 0:
            raise ConfigError("stratified_budget must be positive")
        if self.ranked_set_size <= 0:
            raise ConfigError("ranked_set_size must be positive")
        if self.ranked_set_cycles <= 0:
            raise ConfigError("ranked_set_cycles must be positive")


#: Default sampling configuration used by the harness.
DEFAULT_SAMPLING = SamplingConfig()


@dataclass(frozen=True)
class CostModel:
    """Relative per-instruction costs of the simulation modes.

    ``detail_cost / functional_cost = 33`` is derived from the paper's own
    numbers: plugging Table III's detail/functional instruction fractions
    into ``T = d*R + f`` reproduces both the 6.78x COASTS and the 14.04x
    multi-level speedups at ``R ~= 33`` (see DESIGN.md section 2).
    """

    detail_cost: float = 33.0
    functional_cost: float = 1.0
    profile_cost: float = 0.2

    def __post_init__(self) -> None:
        if min(self.detail_cost, self.functional_cost) <= 0:
            raise ConfigError("simulation costs must be positive")
        if self.profile_cost < 0:
            raise ConfigError("profile_cost must be non-negative")
        if self.detail_cost < self.functional_cost:
            raise ConfigError("detailed simulation cannot be cheaper than functional")


#: Default cost model calibrated against the paper (see DESIGN.md).
DEFAULT_COST_MODEL = CostModel()
