"""Analytic LRU cache-occupancy model for data accesses.

The block-level timing simulator models the data hierarchy with per-region
*residency* accounting rather than per-line state (cf. statistical cache
models such as StatCache/StatStack).

**Visit-level hit rates.** A loop visit sweeps its footprint ``F`` lines
(re-starting from the beginning each visit) for a known total of ``T``
distinct-line touches.  When a visit begins, the model derives one hit rate
for the whole visit from the residency ``R`` its region retained since its
last visit::

    hits(T) = min(T, F) * R/F          # first sweep: only retained lines hit
            + max(0, T - F) * min(1, C/F)   # re-sweeps: self-capacity bound

Every batch of the visit — whether the baseline processes it as one giant
run or a simulation point slices 2.5K instructions out of its middle —
hits at the same rate.  This position-independence is deliberate: real 10M
SimPoint intervals dwarf inner-loop sweeps, so per-interval cache behaviour
is position-stationary in the paper's setting; at our 250:1 instruction
scale a per-line (or within-visit-evolving) model would make a thin slice's
hit rate depend on where in the sweep it falls, which is an artifact, not
microarchitecture.

**LRU across regions.** Residency is capacity-managed across regions with
recency-ordered eviction: the region being swept keeps its footprint (up to
capacity); the stalest regions lose theirs first.  History therefore still
matters — a phase's first-ever visit after a long absence sees whatever its
region retained, warming passes populate state, and capacity differences
(config A vs B) shift every hit rate.

The set-associative model in :mod:`repro.uarch.cache` remains in use for
the instruction cache and the instruction-level OoO reference simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from ..config import CacheConfig
from ..errors import SimulationError


def visit_hit_rate(
    resident: float, footprint: float, visit_touches: float, capacity: float
) -> float:
    """Hit rate of a visit of *visit_touches* touches over *footprint* lines
    entered with *resident* lines retained, in a cache of *capacity* lines."""
    if visit_touches <= 0:
        return 0.0
    if footprint <= 0:
        raise SimulationError("bad footprint")
    resident = min(resident, footprint)
    first = min(visit_touches, footprint)
    hits = first * (resident / footprint)
    rest = visit_touches - first
    if rest > 0:
        hits += rest * min(1.0, capacity / footprint)
    return min(1.0, hits / visit_touches)


class OccupancyCache:
    """Per-region residency ledger of one cache level (LRU across regions)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.capacity = float(config.n_lines)
        self._residency: Dict[int, float] = {}
        self._last_access: Dict[int, int] = {}
        self._clock = 0

    def reset(self) -> None:
        """Drop all residency (cold cache)."""
        self._residency.clear()
        self._last_access.clear()
        self._clock = 0

    # ------------------------------------------------------------------
    def residency(self, region: int) -> float:
        """Resident lines of *region*."""
        return self._residency.get(region, 0.0)

    @property
    def occupancy(self) -> float:
        """Total resident lines across regions."""
        return sum(self._residency.values())

    def install(self, region: int, lines: float) -> None:
        """Set *region*'s residency to *lines* (capped by capacity), marking
        it most recently used and evicting stalest regions on overflow."""
        lines = min(lines, self.capacity)
        self._residency[region] = lines
        self._clock += 1
        self._last_access[region] = self._clock
        overflow = sum(self._residency.values()) - self.capacity
        if overflow > 1e-9:
            for key in sorted(self._residency, key=self._last_access.get):
                if key == region:
                    continue
                take = min(overflow, self._residency[key])
                self._residency[key] -= take
                overflow -= take
                if overflow <= 1e-9:
                    break
            if overflow > 1e-9:
                self._residency[region] = max(
                    0.0, self._residency[region] - overflow
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OccupancyCache {self.config.name} {self.occupancy:.0f}/"
            f"{self.capacity:.0f} lines>"
        )


@dataclass
class _VisitState:
    """Hit rates derived at visit entry, applied to all its batches."""

    key: Hashable
    l1_hit: float
    l2_hit: float


class DataHierarchyModel:
    """L1D over unified L2, both as occupancy ledgers with visit hit rates.

    Instruction-fetch misses share the L2: they are routed in as touches of
    a dedicated *code region*.
    """

    #: Region id used for instruction lines in the (unified) L2.
    CODE_REGION = -1

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig) -> None:
        self.l1 = OccupancyCache(l1_config)
        self.l2 = OccupancyCache(l2_config)
        self._visits: Dict[int, _VisitState] = {}
        self._code_hit = 0.0
        self._code_seen = 0.0

    def reset(self) -> None:
        """Cold hierarchy."""
        self.l1.reset()
        self.l2.reset()
        self._visits.clear()
        self._code_hit = 0.0
        self._code_seen = 0.0

    # ------------------------------------------------------------------
    def access_data(
        self,
        region: int,
        footprint: float,
        visit_key: Hashable,
        visit_touches: float,
        touches: float,
    ) -> Tuple[float, float]:
        """Data touches of one batch of a visit; returns fractional
        ``(l1_misses, l2_misses)``.

        ``visit_key`` identifies the visit (one loop-body segment of the
        trace); its first batch fixes the visit's hit rates from current
        residency, and installs the visit's footprint as resident.
        """
        state = self._visits.get(region)
        if state is None or state.key != visit_key:
            state = self._begin_visit(region, footprint, visit_key,
                                      visit_touches)
        l1_misses = touches * (1.0 - state.l1_hit)
        l2_misses = l1_misses * (1.0 - state.l2_hit)
        return l1_misses, l2_misses

    def _begin_visit(
        self,
        region: int,
        footprint: float,
        visit_key: Hashable,
        visit_touches: float,
    ) -> _VisitState:
        l1_hit = visit_hit_rate(
            self.l1.residency(region), footprint, visit_touches,
            self.l1.capacity,
        )
        l2_touches = visit_touches * (1.0 - l1_hit)
        l2_hit = visit_hit_rate(
            self.l2.residency(region), footprint, l2_touches,
            self.l2.capacity,
        )
        # After the visit the region holds what it had plus the newly
        # missed lines (a full sweep leaves the whole footprint resident, a
        # sparse traversal only its touched subset), capacity permitting.
        l1_resident = min(
            footprint,
            self.l1.residency(region) + visit_touches * (1.0 - l1_hit),
        )
        self.l1.install(region, l1_resident)
        l2_resident = min(
            footprint,
            self.l2.residency(region) + l2_touches * (1.0 - l2_hit),
        )
        self.l2.install(region, l2_resident)
        state = _VisitState(key=visit_key, l1_hit=l1_hit, l2_hit=l2_hit)
        self._visits[region] = state
        return state

    # ------------------------------------------------------------------
    def access_code(self, code_lines: float, touches: float) -> float:
        """Instruction-fetch misses arriving at the L2; returns L2 misses.

        Code is a steadily re-touched region: its hit rate is its resident
        fraction, updated incrementally.
        """
        if touches <= 0:
            return 0.0
        resident = self.l2.residency(self.CODE_REGION)
        hit = min(1.0, resident / max(code_lines, 1.0))
        misses = touches * (1.0 - hit)
        self.l2.install(
            self.CODE_REGION, min(code_lines, resident + misses)
        )
        return misses
