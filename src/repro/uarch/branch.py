"""Branch predictors.

Two layers live here:

* **Stateful predictors** (:class:`BimodalPredictor`,
  :class:`GSharePredictor`, :class:`CombinedPredictor`) used per-branch by
  the instruction-level OoO reference simulator.
* **Analytic helpers** used by the block-level timing simulator: exact
  2-bit-counter dynamics for loop back-edges (``advance_loop_branch``) and
  the exact Markov-chain stationary mispredict rate for data-dependent
  branches with a fixed taken probability (``stationary_mispredict_rate``).

The analytic layer ignores BHT aliasing; with 8K entries (Table I) and a few
hundred static branches per benchmark, aliasing is negligible.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import BranchPredictorConfig
from ..errors import SimulationError

#: 2-bit saturating counter bounds; >= TAKEN_THRESHOLD predicts taken.
COUNTER_MAX = 3
TAKEN_THRESHOLD = 2


# ----------------------------------------------------------------------
# analytic helpers (block-level timing simulator)
# ----------------------------------------------------------------------
def advance_loop_branch(state: int, takens: int) -> Tuple[int, int]:
    """Run *takens* consecutive taken outcomes through a 2-bit counter.

    Returns ``(new_state, mispredicts)``; exact, O(1).
    """
    if not 0 <= state <= COUNTER_MAX:
        raise SimulationError(f"bad counter state {state}")
    if takens < 0:
        raise SimulationError("takens must be non-negative")
    if takens == 0:
        return state, 0
    mispredicts = min(takens, max(0, TAKEN_THRESHOLD - state))
    return min(COUNTER_MAX, state + takens), mispredicts


def exit_loop_branch(state: int) -> Tuple[int, int]:
    """Run the final not-taken (loop exit) outcome through the counter."""
    if not 0 <= state <= COUNTER_MAX:
        raise SimulationError(f"bad counter state {state}")
    mispredict = 1 if state >= TAKEN_THRESHOLD else 0
    return max(0, state - 1), mispredict


def stationary_mispredict_rate(taken_probability: float) -> float:
    """Exact stationary mispredict rate of a 2-bit counter under Bernoulli
    outcomes with the given taken probability.

    The counter is a birth-death Markov chain with ratio
    ``r = p / (1 - p)``; its stationary distribution is ``pi_i ~ r**i``.
    Mispredicts happen when the counter disagrees with the outcome.
    """
    p = taken_probability
    if not 0.0 <= p <= 1.0:
        raise SimulationError("taken probability must be in [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    r = p / (1.0 - p)
    weights = [1.0, r, r * r, r * r * r]
    z = sum(weights)
    pi = [w / z for w in weights]
    predict_not_taken = pi[0] + pi[1]
    predict_taken = pi[2] + pi[3]
    return predict_not_taken * p + predict_taken * (1.0 - p)


# ----------------------------------------------------------------------
# stateful predictors (instruction-level OoO simulator)
# ----------------------------------------------------------------------
class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise SimulationError("entries must be a positive power of two")
        self.entries = entries
        self.table: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predict taken?"""
        return self.table.get(self._index(pc), 1) >= TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome."""
        index = self._index(pc)
        counter = self.table.get(index, 1)
        counter = min(COUNTER_MAX, counter + 1) if taken else max(0, counter - 1)
        self.table[index] = counter


class GSharePredictor:
    """Global-history predictor: PC xor history indexes the counter table."""

    def __init__(self, entries: int, history_bits: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise SimulationError("entries must be a positive power of two")
        if not 0 <= history_bits <= 16:
            raise SimulationError("history_bits out of range")
        self.entries = entries
        self.history_bits = history_bits
        self.history = 0
        self.table: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        """Predict taken?"""
        return self.table.get(self._index(pc), 1) >= TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        """Train and shift the global history."""
        index = self._index(pc)
        counter = self.table.get(index, 1)
        counter = min(COUNTER_MAX, counter + 1) if taken else max(0, counter - 1)
        self.table[index] = counter
        mask = (1 << self.history_bits) - 1 if self.history_bits else 0
        self.history = ((self.history << 1) | int(taken)) & mask


class CombinedPredictor:
    """SimpleScalar-style combined predictor: bimodal + gshare + meta."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self.bimodal = BimodalPredictor(config.bht_entries)
        self.gshare = GSharePredictor(config.bht_entries, config.history_bits)
        self.meta: Dict[int, int] = {}
        self.predictions = 0
        self.mispredicts = 0

    def _meta_index(self, pc: int) -> int:
        return (pc >> 2) & (self.config.bht_entries - 1)

    def predict(self, pc: int) -> bool:
        """Predict taken, choosing between components via the meta table."""
        use_gshare = self.meta.get(self._meta_index(pc), 1) >= TAKEN_THRESHOLD
        return self.gshare.predict(pc) if use_gshare else self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Train all components and record accuracy statistics."""
        bim = self.bimodal.predict(pc)
        gsh = self.gshare.predict(pc)
        prediction = self.predict(pc)
        self.predictions += 1
        if prediction != taken:
            self.mispredicts += 1
        index = self._meta_index(pc)
        meta = self.meta.get(index, 1)
        if bim != gsh:
            if gsh == taken:
                meta = min(COUNTER_MAX, meta + 1)
            else:
                meta = max(0, meta - 1)
            self.meta[index] = meta
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)

    @property
    def mispredict_rate(self) -> float:
        """Observed mispredict rate."""
        return self.mispredicts / self.predictions if self.predictions else 0.0


def make_predictor(config: BranchPredictorConfig):
    """Build the stateful predictor described by *config*."""
    if config.kind == "bimodal":
        return BimodalPredictor(config.bht_entries)
    if config.kind == "gshare":
        return GSharePredictor(config.bht_entries, config.history_bits)
    if config.kind == "combined":
        return CombinedPredictor(config)
    raise SimulationError(f"no stateful model for predictor {config.kind!r}")
