"""Static block scheduling.

For every basic block the scheduler derives the steady-state cycles one
execution costs on a given machine, assuming all loads hit in L1 (dynamic
miss penalties are added by the timing simulator):

* **throughput bound** — instructions / issue width, and per functional-unit
  class, instructions needing that class / unit count;
* **latency bound** — the block's dataflow critical path, de-rated by how
  many block iterations the ROB can keep in flight simultaneously.

This is the "interval model" decomposition: steady-state cycles are the
maximum of the structural bounds, and miss/mispredict events add penalties
on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..config import MachineConfig
from ..isa.block import BasicBlock
from ..isa.opcodes import FU_CLASS, FuClass, Opcode
from ..isa.program import Program


@dataclass(frozen=True)
class BlockTiming:
    """Scheduling result for one block."""

    base_cycles: float
    throughput_cycles: float
    critical_path: int

    def __post_init__(self) -> None:
        assert self.base_cycles >= self.throughput_cycles > 0


class BlockScheduler:
    """Compute per-block steady-state timing for one machine config."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._fu_counts: Dict[FuClass, int] = {
            FuClass.INT_ALU: config.functional_units.int_alu,
            FuClass.LOAD_STORE: config.functional_units.load_store,
            FuClass.FP_ADD: config.functional_units.fp_add,
            FuClass.INT_MULT_DIV: config.functional_units.int_mult_div,
            FuClass.FP_MULT_DIV: config.functional_units.fp_mult_div,
        }

    # ------------------------------------------------------------------
    def schedule(self, block: BasicBlock) -> BlockTiming:
        """Derive the steady-state timing of *block*."""
        config = self.config
        n = block.size

        width_bound = n / config.issue_width
        fu_use: Dict[FuClass, int] = {}
        for inst in block.instructions:
            fu = FU_CLASS[inst.opcode]
            fu_use[fu] = fu_use.get(fu, 0) + 1
        fu_bound = max(
            (count / self._fu_counts[fu] for fu, count in fu_use.items()),
            default=0.0,
        )
        throughput = max(width_bound, fu_bound, 1e-9)

        critical_path = self._critical_path(block)
        # The ROB overlaps ~rob/n block iterations, so the per-iteration
        # share of the dataflow latency is cp / (rob / n).
        overlap = max(1.0, config.rob_entries / n)
        latency_bound = critical_path / overlap

        base = max(throughput, latency_bound)
        return BlockTiming(
            base_cycles=base,
            throughput_cycles=throughput,
            critical_path=critical_path,
        )

    # ------------------------------------------------------------------
    def _latency(self, opcode: Opcode) -> int:
        if opcode is Opcode.LOAD:
            return self.config.dcache.latency + 1
        from ..isa.opcodes import LATENCY

        return LATENCY[opcode]

    def _critical_path(self, block: BasicBlock) -> int:
        """Longest register-dependence chain, in cycles."""
        done_at: Dict[int, int] = {}
        longest = 0
        for inst in block.instructions:
            ready = 0
            for src in inst.srcs:
                ready = max(ready, done_at.get(src, 0))
            finish = ready + self._latency(inst.opcode)
            longest = max(longest, finish)
            if inst.dest is not None:
                done_at[inst.dest] = finish
        return longest

    # ------------------------------------------------------------------
    def schedule_program(self, program: Program) -> np.ndarray:
        """Vector of per-block base cycles for *program*."""
        return np.array(
            [self.schedule(block).base_cycles for block in program.blocks],
            dtype=np.float64,
        )


def effective_mlp(config: MachineConfig) -> float:
    """Memory-level parallelism factor used to de-rate miss penalties.

    Scales with the LSQ depth: a 64-entry LSQ sustains more outstanding
    misses than a 16-entry one.  Clamped to [1, 4].
    """
    return float(min(4.0, max(1.0, math.sqrt(config.lsq_entries / 8.0))))
