"""Set-associative LRU cache model.

Caches are simulated at cache-line granularity: callers translate byte
addresses into line ids (``address // line_size``) and collapse consecutive
accesses to the same line (which are hits by construction for the private
strided streams our blocks generate) before calling :meth:`Cache.access_run`.

A *streaming fast path* handles runs whose working set is far larger than
the cache: every distinct-line touch of such a sweep misses under LRU, so
the model counts them analytically and resets the cache state instead of
simulating millions of guaranteed misses (see DESIGN.md, decision 2).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

import numpy as np

from ..config import CacheConfig

#: A streaming sweep must cover this many times the cache's line capacity
#: before the analytic all-miss fast path is taken.
STREAM_FACTOR = 2


class Cache:
    """One level of set-associative LRU cache, keyed by line id."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self.capacity_lines = config.n_lines
        self._sets: Dict[int, OrderedDict] = {}
        self.accesses = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        self._sets.clear()
        self.accesses = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines, keeping statistics."""
        self._sets.clear()

    @property
    def hits(self) -> int:
        """Accesses that hit."""
        return self.accesses - self.misses

    # ------------------------------------------------------------------
    def access(self, line: int) -> bool:
        """Access one line; returns True on hit."""
        self.accesses += 1
        set_index = line % self.n_sets
        ways = self._sets.get(set_index)
        if ways is None:
            ways = OrderedDict()
            self._sets[set_index] = ways
        if line in ways:
            ways.move_to_end(line)
            return True
        self.misses += 1
        ways[line] = True
        if len(ways) > self.assoc:
            ways.popitem(last=False)
        return False

    def contains(self, line: int) -> bool:
        """True if the line is resident (no state change, no stats)."""
        ways = self._sets.get(line % self.n_sets)
        return bool(ways) and line in ways

    # ------------------------------------------------------------------
    def access_run(
        self, lines: np.ndarray, streaming: bool = False
    ) -> Tuple[int, List[int]]:
        """Access a run of distinct-line touches.

        Returns ``(misses, miss_lines)`` where ``miss_lines`` is the list of
        line ids that missed (the refill stream for the next level).  With
        ``streaming=True`` and a long enough run, every touch is counted as
        a miss analytically and the cache is flushed — the post-state of a
        sweep much larger than the cache.
        """
        n = len(lines)
        if n == 0:
            return 0, []
        if streaming and n >= STREAM_FACTOR * self.capacity_lines:
            self.accesses += n
            self.misses += n
            self.flush()
            return n, list(map(int, lines))
        miss_lines: List[int] = []
        n_sets = self.n_sets
        assoc = self.assoc
        sets = self._sets
        misses = 0
        for line in lines:
            line = int(line)
            ways = sets.get(line % n_sets)
            if ways is None:
                ways = OrderedDict()
                sets[line % n_sets] = ways
            if line in ways:
                ways.move_to_end(line)
            else:
                misses += 1
                miss_lines.append(line)
                ways[line] = True
                if len(ways) > assoc:
                    ways.popitem(last=False)
        self.accesses += n
        self.misses += misses
        return misses, miss_lines

    # ------------------------------------------------------------------
    def resident_lines(self) -> int:
        """Number of currently valid lines (for tests/inspection)."""
        return sum(len(ways) for ways in self._sets.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cfg = self.config
        return (
            f"<Cache {cfg.name} {cfg.size}B {cfg.assoc}-way "
            f"{self.accesses} accesses, {self.misses} misses>"
        )
