"""Two-level memory hierarchy: split L1 I/D caches over a unified L2.

The hierarchy routes distinct-line access runs through L1 and feeds each
level's misses to the next.  ``ws_lines`` — the footprint (in lines) of the
stream the run was drawn from — arms the analytic streaming fast path in
each level independently (a sweep may thrash a 16K L1 while fitting in a
1M L2).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..config import MachineConfig
from .cache import STREAM_FACTOR, Cache


class MemoryHierarchy:
    """L1I + L1D over a unified L2, with miss propagation."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.il1 = Cache(config.icache)
        self.dl1 = Cache(config.dcache)
        self.ul2 = Cache(config.l2cache)

    def reset(self) -> None:
        """Invalidate all levels and zero their statistics."""
        self.il1.reset()
        self.dl1.reset()
        self.ul2.reset()

    # ------------------------------------------------------------------
    def access_data_run(
        self, lines: Sequence[int], ws_lines: int
    ) -> Tuple[int, int]:
        """Route a distinct-line data run; returns (l1d_misses, l2_misses)."""
        l1_streaming = ws_lines >= STREAM_FACTOR * self.dl1.capacity_lines
        l1_misses, miss_lines = self.dl1.access_run(lines, streaming=l1_streaming)
        if not miss_lines:
            return l1_misses, 0
        l2_streaming = ws_lines >= STREAM_FACTOR * self.ul2.capacity_lines
        l2_misses, _ = self.ul2.access_run(miss_lines, streaming=l2_streaming)
        return l1_misses, l2_misses

    def access_instruction_lines(
        self, lines: Sequence[int]
    ) -> Tuple[int, int]:
        """Fetch instruction lines; returns (l1i_misses, l2_misses)."""
        l1_misses, miss_lines = self.il1.access_run(lines)
        if not miss_lines:
            return l1_misses, 0
        l2_misses, _ = self.ul2.access_run(miss_lines)
        return l1_misses, l2_misses

    # ------------------------------------------------------------------
    def data_line_ids(self, addresses: Sequence[int]) -> List[int]:
        """Translate byte addresses to D-cache line ids."""
        line = self.config.dcache.line_size
        return [int(a) // line for a in addresses]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryHierarchy il1={self.il1!r} dl1={self.dl1!r} "
            f"ul2={self.ul2!r}>"
        )
