"""Microarchitecture component models."""

from .branch import (
    BimodalPredictor,
    CombinedPredictor,
    GSharePredictor,
    advance_loop_branch,
    exit_loop_branch,
    make_predictor,
    stationary_mispredict_rate,
)
from .cache import STREAM_FACTOR, Cache
from .hierarchy import MemoryHierarchy
from .occupancy import DataHierarchyModel, OccupancyCache
from .scheduler import BlockScheduler, BlockTiming, effective_mlp

__all__ = [
    "BimodalPredictor",
    "BlockScheduler",
    "BlockTiming",
    "Cache",
    "CombinedPredictor",
    "GSharePredictor",
    "DataHierarchyModel",
    "MemoryHierarchy",
    "OccupancyCache",
    "STREAM_FACTOR",
    "advance_loop_branch",
    "effective_mlp",
    "exit_loop_branch",
    "make_predictor",
    "stationary_mispredict_rate",
]
