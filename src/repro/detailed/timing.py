"""Block-level out-of-order timing simulator (the experiments' sim-outorder).

The engine walks the run-length trace and charges, per block execution:

* the block's steady-state cycles from the static list scheduler
  (issue-width, functional-unit and ROB-derated critical-path bounds);
* data-cache penalties from the analytic LRU occupancy hierarchy
  (:mod:`repro.uarch.occupancy`): per memory instruction, a run of ``n``
  strided accesses collapses to ``n * stride / line`` distinct-line touches
  (the within-line remainder hits by construction), which hit in each level
  with probability given by the region's current residency;
* instruction-cache behaviour from a real set-associative L1I, with misses
  routed into the shared L2 occupancy as code-region traffic;
* branch penalties: exact 2-bit-counter dynamics for loop back-edges, and
  the exact Markov stationary mispredict rate for data-dependent branches.

Load miss penalties are de-rated by a memory-level-parallelism factor
derived from the LSQ depth.  All quantities are deterministic; fractional
expected counts (occupancy hits, statistical mispredicts) accumulate as
floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import MachineConfig
from ..engine.trace import SegmentPiece, Trace
from ..errors import SimulationError
from ..obs import DETAILED_CALLS, DETAILED_INSTRUCTIONS, MetricsRegistry
from ..uarch.branch import (
    advance_loop_branch,
    exit_loop_branch,
    stationary_mispredict_rate,
)
from ..uarch.cache import Cache
from ..uarch.occupancy import DataHierarchyModel
from ..uarch.scheduler import BlockScheduler, effective_mlp
from .results import SimulationResult

#: Extra overlap factor for L1-miss/L2-hit latency: the OoO window hides
#: most of a short L2 access beyond what memory-level parallelism covers.
L1_MISS_OVERLAP = 3.0


@dataclass
class _BlockMemory:
    """Aggregate memory behaviour of one block's memory instructions.

    A block's memory instructions partition its region into chunks and
    jointly sweep it, so they are modelled as one batch per block execution
    run: ``touches_per_rep`` distinct-line touches per iteration in total
    (the within-line remainder of the accesses hits by construction), of
    which ``load_fraction`` stall the pipeline on a miss.
    """

    region: int
    ws_lines: float
    n_mem: int
    touches_per_rep: float
    load_fraction: float


@dataclass
class _SegmentStatics:
    """Per-segment constants hoisted out of the piece-simulation loop.

    Everything that does not depend on machine state is reduced to batch
    quantities once per segment: instructions and steady-state cycles per
    rep, and the aggregate expected-mispredict rate of the segment's
    data-dependent branches (stationary rates touch no predictor state, so
    their per-rep sum folds into one multiply per piece).  Only the
    state-carrying accesses — instruction fetch, data hierarchy, the loop
    back-edge counter — remain in the per-block loop, in the exact order
    the scalar loop used, so machine-state evolution is unchanged.
    """

    rep_insts: int
    rep_cycles: float
    #: Per block, in execution order: (block_id, inst_lines, memory or None).
    blocks: Tuple[Tuple[int, np.ndarray, Optional[_BlockMemory]], ...]
    #: Data-dependent (non-loop) branches per rep and their rate sum.
    plain_branches: int
    plain_rate_sum: float
    #: Block id of the loop back-edge branch, or -1.
    loop_branch_block: int


class MachineState:
    """Mutable microarchitectural state carried across simulated ranges."""

    def __init__(self, config: MachineConfig, code_lines: int) -> None:
        self.il1 = Cache(config.icache)
        self.data = DataHierarchyModel(config.dcache, config.l2cache)
        self.code_lines = float(max(1, code_lines))
        #: 2-bit counter per loop back-edge branch, keyed by block id.
        self.loop_counters: Dict[int, int] = {}

    def reset(self) -> None:
        """Return to the cold-machine state."""
        self.il1.reset()
        self.data.reset()
        self.loop_counters.clear()


class TimingSimulator:
    """Detailed timing simulation of (ranges of) one trace.

    *metrics* hooks the simulator into an observability registry at
    coarse granularity — one bump per :meth:`simulate_range` call, never
    inside the per-piece loop.  A private registry is used when none is
    supplied.
    """

    def __init__(
        self,
        trace: Trace,
        config: MachineConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        program = trace.program
        self.program = program

        scheduler = BlockScheduler(config)
        self.base_cycles = scheduler.schedule_program(program)
        self.mlp = effective_mlp(config)
        # L1 misses that hit the L2 are short enough for the OoO window to
        # overlap most of the latency on top of the MLP overlap; misses to
        # memory are too long to hide and only benefit from MLP.
        self.l1d_penalty = max(
            0, config.l2cache.latency - config.dcache.latency
        ) / L1_MISS_OVERLAP
        self.l2_penalty = config.mem_latency_first
        self.l1i_penalty = config.l2cache.latency
        self.branch_penalty = config.branch.mispredict_penalty

        line = config.dcache.line_size
        iline = config.icache.line_size
        self._block_memory: List[Optional[_BlockMemory]] = []
        self._inst_lines: List[np.ndarray] = []
        self._data_branch_rate: List[float] = []
        self._ends_in_branch: List[bool] = []
        code_lines = set()
        for block in program.blocks:
            mem_insts = block.memory_instructions
            if mem_insts:
                region = program.region(mem_insts[0].mem_region)
                touches = [
                    min(1.0, inst.mem_stride / line) for inst in mem_insts
                ]
                load_touches = sum(
                    t for t, inst in zip(touches, mem_insts)
                    if inst.opcode.value == "load"
                )
                total = sum(touches)
                self._block_memory.append(
                    _BlockMemory(
                        region=mem_insts[0].mem_region,
                        ws_lines=max(1.0, region.size / line),
                        n_mem=len(mem_insts),
                        touches_per_rep=total,
                        load_fraction=load_touches / total if total else 0.0,
                    )
                )
            else:
                self._block_memory.append(None)
            lines = np.array(list(block.instruction_lines(iline)), dtype=np.int64)
            code_lines.update(int(l) for l in lines)
            self._inst_lines.append(lines)
            self._ends_in_branch.append(block.ends_in_branch)
            self._data_branch_rate.append(
                stationary_mispredict_rate(block.branch_bias)
                if block.ends_in_branch
                else 0.0
            )
        self._code_lines = len(code_lines)
        self._seg_statics: List[Optional[_SegmentStatics]] = \
            [None] * trace.n_segments

    def _statics_of(self, seg_index: int) -> _SegmentStatics:
        """The (lazily built, memoised) statics of segment *seg_index*."""
        statics = self._seg_statics[seg_index]
        if statics is None:
            seg = self.trace.segment_at(seg_index)
            last_index = len(seg.blocks) - 1
            plain_branches = 0
            plain_rate_sum = 0.0
            loop_branch_block = -1
            rep_cycles = 0.0
            blocks = []
            for position, block_id in enumerate(seg.blocks):
                rep_cycles += self.base_cycles[block_id]
                blocks.append((
                    block_id,
                    self._inst_lines[block_id],
                    self._block_memory[block_id],
                ))
                if not self._ends_in_branch[block_id]:
                    continue
                if seg.loop_id >= 0 and position == last_index:
                    loop_branch_block = block_id
                else:
                    plain_branches += 1
                    plain_rate_sum += self._data_branch_rate[block_id]
            statics = _SegmentStatics(
                rep_insts=int(self.trace.rep_lengths[seg_index]),
                rep_cycles=rep_cycles,
                blocks=tuple(blocks),
                plain_branches=plain_branches,
                plain_rate_sum=plain_rate_sum,
                loop_branch_block=loop_branch_block,
            )
            self._seg_statics[seg_index] = statics
        return statics

    # ------------------------------------------------------------------
    def new_state(self) -> MachineState:
        """A fresh (cold) machine state."""
        return MachineState(self.config, self._code_lines)

    def simulate_full(self) -> SimulationResult:
        """Simulate the whole trace from cold state (the baseline run)."""
        return self.simulate_range(0, self.trace.total_instructions)

    def simulate_range(
        self,
        start: int,
        end: int,
        state: Optional[MachineState] = None,
        result: Optional[SimulationResult] = None,
    ) -> SimulationResult:
        """Simulate instructions [start, end), rounded out to rep boundaries.

        *state* carries cache/predictor contents across calls; *result*
        accumulates counters (pass a throwaway result to warm state without
        keeping the numbers).
        """
        if state is None:
            state = self.new_state()
        if result is None:
            result = SimulationResult()
        before = result.instructions
        for piece in self.trace.clip(start, end):
            self._simulate_piece(piece, state, result)
        # Coarse accounting only: simulate_full/simulate_point delegate
        # here, so every detail-simulated instruction is counted exactly
        # once, outside the hot loop.
        self.metrics.counter(DETAILED_CALLS).inc()
        self.metrics.counter(DETAILED_INSTRUCTIONS).inc(
            float(result.instructions - before)
        )
        return result

    def simulate_point(
        self, start: int, end: int, warmup: int = 0
    ) -> SimulationResult:
        """Simulate one simulation point from cold state with a fixed-window
        warming prefix (see :mod:`repro.sampling.estimate` for the full-
        warming alternative the harness uses)."""
        if end <= start:
            raise SimulationError(f"empty simulation point [{start}, {end})")
        state = self.new_state()
        if warmup > 0 and start > 0:
            warm_start = max(0, start - warmup)
            if warm_start < start:
                self.simulate_range(
                    warm_start, start, state=state, result=SimulationResult()
                )
        return self.simulate_range(start, end, state=state)

    # ------------------------------------------------------------------
    def _simulate_piece(
        self,
        piece: SegmentPiece,
        state: MachineState,
        result: SimulationResult,
    ) -> None:
        seg = piece.segment
        n = piece.n_reps
        statics = self._statics_of(piece.seg_index)
        data = state.data
        il1 = state.il1

        # Batched stateless quantities: instruction count, steady-state
        # cycles, expected mispredicts of data-dependent branches.
        result.instructions += statics.rep_insts * n
        cycles = statics.rep_cycles * n
        if statics.plain_branches:
            expected = n * statics.plain_rate_sum
            result.branches += statics.plain_branches * n
            result.mispredicts += expected
            cycles += expected * self.branch_penalty

        # State-carrying accesses stay in block order: instruction fetch
        # and data touches of one block interleave exactly as the scalar
        # loop interleaved them (they share the L2 occupancy ledger, whose
        # recency ordering is order-sensitive).
        for block_id, ilines, memory in statics.blocks:
            # --- instruction fetch ----------------------------------------
            # Each fetch line is touched through the real L1I once per
            # piece; the remaining n-1 rounds re-fetch the same lines
            # back-to-back and hit by construction.
            l1i_misses, miss_lines = il1.access_run(ilines)
            result.l1i_accesses += len(ilines) * n
            result.l1i_misses += l1i_misses
            if l1i_misses:
                l2i_misses = data.access_code(state.code_lines,
                                              float(len(miss_lines)))
                result.l2_accesses += l1i_misses
                result.l2_misses += l2i_misses
                cycles += (
                    l1i_misses * self.l1i_penalty + l2i_misses * self.l2_penalty
                )

            # --- data accesses ----------------------------------------------
            if memory is not None:
                touches = max(1.0, memory.touches_per_rep * n)
                visit_touches = max(1.0, memory.touches_per_rep * seg.reps)
                l1m, l2m = data.access_data(
                    memory.region, memory.ws_lines, (seg, block_id),
                    visit_touches, touches,
                )
                result.l1d_accesses += memory.n_mem * n
                result.l1d_misses += l1m
                result.l2_accesses += l1m
                result.l2_misses += l2m
                cycles += (
                    (l1m * self.l1d_penalty + l2m * self.l2_penalty)
                    * memory.load_fraction / self.mlp
                )

        # --- loop back-edge branch ---------------------------------------
        # The 2-bit counter is private per-branch state: running it after
        # the cache accesses cannot change any cache outcome.
        if statics.loop_branch_block >= 0:
            block_id = statics.loop_branch_block
            includes_end = piece.rep_offset + n == seg.reps
            counter = state.loop_counters.get(block_id, 1)
            takens = n - 1 if includes_end else n
            counter, mis = advance_loop_branch(counter, takens)
            mispredicts = float(mis)
            if includes_end:
                counter, exit_mis = exit_loop_branch(counter)
                mispredicts += exit_mis
            state.loop_counters[block_id] = counter
            result.branches += n
            result.mispredicts += mispredicts
            cycles += mispredicts * self.branch_penalty

        result.cycles += cycles
