"""Instruction-level out-of-order reference simulator.

A compact sim-outorder analogue that executes the *expanded* instruction
stream one instruction at a time: fetch bandwidth and I-cache, ROB occupancy,
per-cycle issue-width and functional-unit contention, register dataflow,
D-cache accesses through the real hierarchy, and a real combined branch
predictor with mispredict redirect penalties.

It is deliberately not the engine used for whole-suite experiments — pure
Python instruction-level simulation of multi-hundred-million-instruction
traces is intractable — but it validates the block-level timing model: tests
check that both engines rank workload phases identically and agree on CPI
within a tolerance band on small kernels.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..config import MachineConfig
from ..engine.trace import Trace
from ..errors import SimulationError
from ..isa.block import INSTRUCTION_BYTES
from ..isa.opcodes import FU_CLASS, LATENCY, Opcode
from ..uarch.branch import CombinedPredictor
from ..uarch.hierarchy import MemoryHierarchy
from .results import SimulationResult

#: Safety cap on expanded instructions per simulation.
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


class OoOSimulator:
    """Cycle-level OoO core over the expanded instruction stream."""

    def __init__(self, trace: Trace, config: MachineConfig, seed: int = 0) -> None:
        self.trace = trace
        self.config = config
        self.program = trace.program
        self._seed = seed

    # ------------------------------------------------------------------
    def _expand(
        self, start: int, end: int, cap: int
    ) -> Iterator[Tuple[int, int, int, bool, bool]]:
        """Yield ``(block_id, inst_index, iteration, is_loop_branch,
        loop_exit)`` per dynamic instruction in [start, end)."""
        emitted = 0
        for piece in self.trace.clip(start, end):
            seg = piece.segment
            last_pos = len(seg.blocks) - 1
            for rep in range(piece.n_reps):
                iteration = seg.iter_base + piece.rep_offset + rep
                is_final = piece.rep_offset + rep == seg.reps - 1
                for pos, block_id in enumerate(seg.blocks):
                    block = self.program.blocks[block_id]
                    loop_branch = seg.loop_id >= 0 and pos == last_pos
                    for index in range(block.size):
                        yield (block_id, index, iteration, loop_branch, is_final)
                        emitted += 1
                        if emitted >= cap:
                            return

    # ------------------------------------------------------------------
    def simulate_range(
        self,
        start: int,
        end: int,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ) -> SimulationResult:
        """Simulate [start, end) from cold state, instruction by instruction."""
        if end <= start:
            raise SimulationError("empty OoO simulation range")
        config = self.config
        program = self.program
        hierarchy = MemoryHierarchy(config)
        predictor = CombinedPredictor(config.branch)
        rng = np.random.default_rng(self._seed)
        result = SimulationResult()

        fu_counts = {
            "int_alu": config.functional_units.int_alu,
            "load_store": config.functional_units.load_store,
            "fp_add": config.functional_units.fp_add,
            "int_mult_div": config.functional_units.int_mult_div,
            "fp_mult_div": config.functional_units.fp_mult_div,
        }
        width = config.issue_width
        iline_size = config.icache.line_size
        dline_size = config.dcache.line_size
        l1d_pen = max(0, config.l2cache.latency - config.dcache.latency)
        l2_pen = config.mem_latency_first
        bpen = config.branch.mispredict_penalty

        fetch_cycle = 0
        fetched_this_cycle = 0
        current_iline = -1
        reg_ready: Dict[int, int] = {}
        fu_busy: Dict[Tuple[int, str], int] = defaultdict(int)
        issued_at: Dict[int, int] = defaultdict(int)
        committed_at: Dict[int, int] = defaultdict(int)
        rob: deque = deque()
        last_commit = 0
        horizon = 0

        for block_id, index, iteration, loop_branch, loop_exit in self._expand(
            start, end, max_instructions
        ):
            block = program.blocks[block_id]
            inst = block.instructions[index]
            pc = block.address + index * INSTRUCTION_BYTES

            # --- ROB back-pressure ------------------------------------
            while len(rob) >= config.rob_entries:
                fetch_cycle = max(fetch_cycle, rob.popleft())
                fetched_this_cycle = 0

            # --- fetch --------------------------------------------------
            iline = pc // iline_size
            if iline != current_iline:
                current_iline = iline
                l1i_miss, miss_lines = hierarchy.il1.access_run([iline])
                result.l1i_accesses += 1
                if l1i_miss:
                    result.l1i_misses += 1
                    result.l2_accesses += 1
                    l2_miss, _ = hierarchy.ul2.access_run(miss_lines)
                    result.l2_misses += l2_miss
                    fetch_cycle += config.l2cache.latency + (
                        l2_pen if l2_miss else 0
                    )
                    fetched_this_cycle = 0
            if fetched_this_cycle >= width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            fetched_this_cycle += 1

            # --- dispatch / issue ----------------------------------------
            ready = fetch_cycle + 1
            for src in inst.srcs:
                ready = max(ready, reg_ready.get(src, 0))
            fu = FU_CLASS[inst.opcode].value
            start_cycle = ready
            while (
                fu_busy[(start_cycle, fu)] >= fu_counts[fu]
                or issued_at[start_cycle] >= width
            ):
                start_cycle += 1
            fu_busy[(start_cycle, fu)] += 1
            issued_at[start_cycle] += 1

            # --- execute ---------------------------------------------------
            latency = LATENCY[inst.opcode]
            if inst.opcode in (Opcode.LOAD, Opcode.STORE):
                region = program.region(inst.mem_region)
                address = region.base + (
                    iteration * inst.mem_stride + inst.mem_offset
                ) % region.size
                dline = address // dline_size
                result.l1d_accesses += 1
                miss, miss_lines = hierarchy.dl1.access_run([dline])
                latency = config.dcache.latency
                if miss:
                    result.l1d_misses += 1
                    result.l2_accesses += 1
                    l2_miss, _ = hierarchy.ul2.access_run(miss_lines)
                    latency += l1d_pen
                    if l2_miss:
                        result.l2_misses += 1
                        latency += l2_pen
                if inst.opcode is Opcode.STORE:
                    latency = 1  # retired through the store buffer
            done = start_cycle + latency
            if inst.dest is not None:
                reg_ready[inst.dest] = done

            # --- branches ---------------------------------------------------
            if inst.is_control and inst.opcode is Opcode.BRANCH:
                if loop_branch:
                    taken = not loop_exit
                else:
                    taken = bool(rng.random() < block.branch_bias)
                predicted = predictor.predict(pc)
                predictor.update(pc, taken)
                result.branches += 1
                if predicted != taken:
                    result.mispredicts += 1
                    fetch_cycle = max(fetch_cycle, done + bpen)
                    fetched_this_cycle = 0
                    current_iline = -1

            # --- commit ------------------------------------------------------
            commit = max(done, last_commit)
            while committed_at[commit] >= width:
                commit += 1
            committed_at[commit] += 1
            last_commit = commit
            rob.append(commit)
            result.instructions += 1
            horizon = max(horizon, commit)

            # --- prune cycle maps occasionally ---------------------------
            if result.instructions % 16384 == 0:
                floor = rob[0] if rob else fetch_cycle
                for mapping in (fu_busy, issued_at, committed_at):
                    stale = [c for c in mapping if (
                        c[0] if isinstance(c, tuple) else c) < floor - 2]
                    for key in stale:
                        del mapping[key]

        if result.instructions == 0:
            raise SimulationError("OoO simulation produced no instructions")
        result.cycles = float(horizon)
        return result

    # ------------------------------------------------------------------
    def simulate_prefix(
        self, instructions: int, max_instructions: Optional[int] = None
    ) -> SimulationResult:
        """Simulate the first *instructions* of the trace."""
        cap = max_instructions or instructions
        end = min(instructions, self.trace.total_instructions)
        return self.simulate_range(0, end, max_instructions=cap)
