"""Simulation result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass
class SimulationResult:
    """Raw counters accumulated by a detailed simulation.

    ``mispredicts`` and the data-cache miss counters are fractional: the
    timing simulator accumulates exact *expected* counts from its analytic
    occupancy and branch models on top of integral event counts.
    """

    instructions: int = 0
    cycles: float = 0.0
    l1d_accesses: int = 0
    l1d_misses: float = 0.0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l2_accesses: float = 0.0
    l2_misses: float = 0.0
    branches: int = 0
    mispredicts: float = 0.0

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Accumulate *other* into self (returns self for chaining)."""
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.l1d_accesses += other.l1d_accesses
        self.l1d_misses += other.l1d_misses
        self.l1i_accesses += other.l1i_accesses
        self.l1i_misses += other.l1i_misses
        self.l2_accesses += other.l2_accesses
        self.l2_misses += other.l2_misses
        self.branches += other.branches
        self.mispredicts += other.mispredicts
        return self

    # ------------------------------------------------------------------
    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        if self.instructions <= 0:
            raise SimulationError("CPI undefined: no instructions simulated")
        return self.cycles / self.instructions

    @property
    def l1_hit_rate(self) -> float:
        """L1 data-cache hit rate (loads + stores)."""
        if self.l1d_accesses <= 0:
            return 1.0
        return 1.0 - self.l1d_misses / self.l1d_accesses

    @property
    def l2_hit_rate(self) -> float:
        """Unified L2 hit rate."""
        if self.l2_accesses <= 0:
            return 1.0
        return 1.0 - self.l2_misses / self.l2_accesses

    @property
    def mispredict_rate(self) -> float:
        """Branch mispredict rate."""
        if self.branches <= 0:
            return 0.0
        return self.mispredicts / self.branches

    def metrics(self) -> "Metrics":
        """Snapshot of the three metrics the paper evaluates (Table II)."""
        return Metrics(
            cpi=self.cpi,
            l1_hit_rate=self.l1_hit_rate,
            l2_hit_rate=self.l2_hit_rate,
        )


@dataclass(frozen=True)
class Metrics:
    """CPI, L1 hit rate and L2 hit rate — the paper's accuracy metrics."""

    cpi: float
    l1_hit_rate: float
    l2_hit_rate: float

    def __post_init__(self) -> None:
        if self.cpi <= 0:
            raise SimulationError("CPI must be positive")
        for name in ("l1_hit_rate", "l2_hit_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise SimulationError(f"{name} out of [0, 1]: {value}")


@dataclass(frozen=True)
class Deviation:
    """Deviation of an estimate from the full-run baseline.

    CPI deviation is relative (``|est - true| / true``); hit-rate deviations
    are absolute differences in rate (percentage points / 100), matching how
    small cache deviations are reported in the paper's Table II.
    """

    cpi: float
    l1_hit_rate: float
    l2_hit_rate: float

    @staticmethod
    def between(estimate: Metrics, baseline: Metrics) -> "Deviation":
        """Compute the deviation of *estimate* against *baseline*."""
        return Deviation(
            cpi=abs(estimate.cpi - baseline.cpi) / baseline.cpi,
            l1_hit_rate=abs(estimate.l1_hit_rate - baseline.l1_hit_rate),
            l2_hit_rate=abs(estimate.l2_hit_rate - baseline.l2_hit_rate),
        )


@dataclass
class WeightedMetrics:
    """Accumulate instruction-weighted metrics from per-point results."""

    weight_total: float = 0.0
    cpi_sum: float = 0.0
    l1_sum: float = 0.0
    l2_sum: float = 0.0
    _count: int = field(default=0, repr=False)

    def add(self, metrics: Metrics, weight: float) -> None:
        """Add one simulation point's metrics with its phase weight."""
        if weight < 0:
            raise SimulationError("negative weight")
        self.weight_total += weight
        self.cpi_sum += metrics.cpi * weight
        self.l1_sum += metrics.l1_hit_rate * weight
        self.l2_sum += metrics.l2_hit_rate * weight
        self._count += 1

    def finish(self) -> Metrics:
        """Normalise into the whole-program estimate."""
        if self.weight_total <= 0 or self._count == 0:
            raise SimulationError("no weighted samples accumulated")
        return Metrics(
            cpi=self.cpi_sum / self.weight_total,
            l1_hit_rate=min(1.0, self.l1_sum / self.weight_total),
            l2_hit_rate=min(1.0, self.l2_sum / self.weight_total),
        )
