"""Detailed (cycle-accurate) simulators."""

from .ooo import DEFAULT_MAX_INSTRUCTIONS, OoOSimulator
from .results import Deviation, Metrics, SimulationResult, WeightedMetrics
from .timing import MachineState, TimingSimulator

__all__ = [
    "DEFAULT_MAX_INSTRUCTIONS",
    "Deviation",
    "MachineState",
    "Metrics",
    "OoOSimulator",
    "SimulationResult",
    "TimingSimulator",
    "WeightedMetrics",
]
