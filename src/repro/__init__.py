"""repro — Multi-level phase analysis for sampling simulation.

A from-scratch reproduction of *"Multi-level Phase Analysis for Sampling
Simulation"* (Li, Zhang, Chen & Zang, DATE 2013): the COASTS coarse-grained
sampler, the multi-level sampling framework, the SimPoint / EarlySP
baselines, and every substrate they need — a synthetic SPEC2000-like
workload suite, a functional simulator with BBV profiling, and detailed
timing simulators with real caches and branch predictors.

Quickstart::

    from repro import (
        load_workload, build_trace, FunctionalSimulator, TimingSimulator,
        SimPoint, Coasts, MultiLevelSampler, CONFIG_A, DEFAULT_SAMPLING,
        estimate_plan, speedup,
    )

    trace = build_trace(load_workload("gzip"))
    profile = FunctionalSimulator(trace).profile_fixed_intervals(
        DEFAULT_SAMPLING.fine_interval_size)
    simpoint_plan = SimPoint().sample(profile, benchmark="gzip")
    multilevel_plan = MultiLevelSampler().sample(trace)
    print(speedup(multilevel_plan, simpoint_plan))

See DESIGN.md for the system inventory and EXPERIMENTS.md for paper-vs-
measured results of every table and figure.
"""

from .config import (
    CONFIG_A,
    CONFIG_B,
    DEFAULT_COST_MODEL,
    DEFAULT_SAMPLING,
    FINE_INTERVAL_SIZE,
    RESAMPLE_THRESHOLD,
    SCALE,
    BranchPredictorConfig,
    CacheConfig,
    CostModel,
    FunctionalUnits,
    MachineConfig,
    SamplingConfig,
    make_config_a,
    make_config_b,
)
from .detailed import (
    Deviation,
    Metrics,
    OoOSimulator,
    SimulationResult,
    TimingSimulator,
)
from .engine import (
    FunctionalSimulator,
    Trace,
    build_trace,
)
from .errors import (
    ClusteringError,
    ConfigError,
    HarnessError,
    ProgramError,
    ReproError,
    SamplingError,
    SimulationError,
    TraceError,
)
from .harness import BenchmarkRun, ExperimentRunner
from .sampling import (
    Coasts,
    EarlySimPoint,
    MultiLevelSampler,
    SamplingPlan,
    SimPoint,
    SimulationPoint,
    estimate_plan,
    evaluate_plan,
    plan_cost,
    speedup,
    speedup_over_full,
)
from .workloads import (
    BenchmarkSpec,
    benchmark_names,
    get_spec,
    load_workload,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkRun",
    "BenchmarkSpec",
    "BranchPredictorConfig",
    "CONFIG_A",
    "CONFIG_B",
    "CacheConfig",
    "ClusteringError",
    "Coasts",
    "ConfigError",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_SAMPLING",
    "Deviation",
    "EarlySimPoint",
    "ExperimentRunner",
    "FINE_INTERVAL_SIZE",
    "FunctionalSimulator",
    "FunctionalUnits",
    "HarnessError",
    "MachineConfig",
    "Metrics",
    "MultiLevelSampler",
    "OoOSimulator",
    "ProgramError",
    "RESAMPLE_THRESHOLD",
    "ReproError",
    "SCALE",
    "SamplingConfig",
    "SamplingError",
    "SamplingPlan",
    "SimPoint",
    "SimulationError",
    "SimulationPoint",
    "SimulationResult",
    "TimingSimulator",
    "Trace",
    "TraceError",
    "benchmark_names",
    "build_trace",
    "estimate_plan",
    "evaluate_plan",
    "get_spec",
    "load_workload",
    "make_config_a",
    "make_config_b",
    "plan_cost",
    "speedup",
    "speedup_over_full",
]
