"""Phase-analysis primitives: BBVs, projection, PCA, k-means, BIC.

The hot kernels come in bit-identical ``vectorized`` / ``scalar``
implementations selected through :mod:`repro.analysis.backend`; see
that module for the selection API and the rounding argument, and
``repro bench`` for the measured speedups.
"""

from .backend import (
    BACKEND_ENV,
    BACKENDS,
    get_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from .bbv import concat_signatures, normalize_rows, project_bbvs
from .bic import bic_score, cluster_with_bic, select_k
from .distance import (
    assign_points,
    earliest_member,
    nearest_to_centroid,
    squared_distances,
)
from .kmeans import KMeansResult, kmeans
from .metrics import (
    METRIC_KINDS,
    loop_frequency_matrix,
    metric_matrix,
    working_set_matrix,
)
from .pca import PCA, first_component
from .projection import RandomProjection

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "KMeansResult",
    "METRIC_KINDS",
    "PCA",
    "RandomProjection",
    "assign_points",
    "bic_score",
    "cluster_with_bic",
    "concat_signatures",
    "earliest_member",
    "first_component",
    "get_backend",
    "kmeans",
    "loop_frequency_matrix",
    "metric_matrix",
    "nearest_to_centroid",
    "normalize_rows",
    "project_bbvs",
    "resolve_backend",
    "select_k",
    "set_backend",
    "squared_distances",
    "use_backend",
    "working_set_matrix",
]
