"""Phase-analysis primitives: BBVs, projection, PCA, k-means, BIC."""

from .bbv import concat_signatures, normalize_rows, project_bbvs
from .bic import bic_score, cluster_with_bic, select_k
from .distance import earliest_member, nearest_to_centroid, squared_distances
from .kmeans import KMeansResult, kmeans
from .metrics import (
    METRIC_KINDS,
    loop_frequency_matrix,
    metric_matrix,
    working_set_matrix,
)
from .pca import PCA, first_component
from .projection import RandomProjection

__all__ = [
    "KMeansResult",
    "METRIC_KINDS",
    "PCA",
    "RandomProjection",
    "bic_score",
    "cluster_with_bic",
    "concat_signatures",
    "earliest_member",
    "first_component",
    "kmeans",
    "loop_frequency_matrix",
    "metric_matrix",
    "nearest_to_centroid",
    "normalize_rows",
    "project_bbvs",
    "select_k",
    "squared_distances",
    "working_set_matrix",
]
