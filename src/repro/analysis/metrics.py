"""Alternative phase-classification metrics (the paper's Section II).

The paper justifies BBVs by citing two comparisons:

* Dhodapkar & Smith (MICRO 2003): BBVs beat *working-set* signatures;
* Lau et al. (ISPASS 2004): *loop frequency vectors* perform almost as well
  as BBVs and can yield fewer distinct phases (fewer simulation points).

Both alternatives are linear views of the interval-by-block instruction
matrix, so they drop straight into the SimPoint pipeline in place of the
raw BBV: loop frequency vectors keep only the loop-header columns (how
often each loop iterated), and working-set vectors fold blocks into the
data regions they touch (what memory the interval worked on).
``bench_ablation_metrics.py`` reproduces the cited ordering.
"""

from __future__ import annotations

import numpy as np

from ..engine.profiles import FixedIntervalProfile
from ..errors import ClusteringError
from ..isa.program import Program

#: Metric names accepted by :func:`metric_matrix`.
METRIC_KINDS = ("bbv", "loop_frequency", "working_set")


def loop_frequency_matrix(
    profile: FixedIntervalProfile, program: Program
) -> np.ndarray:
    """Per-interval loop-iteration counts (Lau et al.'s LFV metric).

    Loop bodies execute once per iteration, so the instruction mass of each
    loop's *first body block* column, divided by that block's size, counts
    the loop's iterations in the interval.  One column per loop.
    """
    headers = []
    for loop in program.loops:
        body_blocks = sorted(loop.blocks - {loop.header})
        anchor = body_blocks[0] if body_blocks else loop.header
        headers.append((anchor, program.block(anchor).size))
    if not headers:
        raise ClusteringError("program has no loops; LFV metric undefined")
    columns = np.array([h[0] for h in headers])
    sizes = np.array([h[1] for h in headers], dtype=np.float64)
    return profile.bbv[:, columns] / sizes[None, :]


def working_set_matrix(
    profile: FixedIntervalProfile, program: Program
) -> np.ndarray:
    """Per-interval data-region access mass (a working-set signature).

    Blocks are folded into the memory region their loads/stores touch; the
    resulting vector says *what data* the interval worked on, discarding
    the code-structure information BBVs carry.  Blocks with no memory
    instructions contribute to a shared "compute" column.
    """
    n_regions = len(program.regions)
    fold = np.zeros((program.n_blocks, n_regions + 1), dtype=np.float64)
    for block in program.blocks:
        mem = block.memory_instructions
        if mem:
            fold[block.block_id, mem[0].mem_region] = 1.0
        else:
            fold[block.block_id, n_regions] = 1.0
    return profile.bbv @ fold


def metric_matrix(
    kind: str, profile: FixedIntervalProfile, program: Program
) -> np.ndarray:
    """The per-interval feature matrix for the chosen metric *kind*."""
    if kind == "bbv":
        return profile.bbv
    if kind == "loop_frequency":
        return loop_frequency_matrix(profile, program)
    if kind == "working_set":
        return working_set_matrix(profile, program)
    raise ClusteringError(
        f"unknown metric {kind!r}; choose from {METRIC_KINDS}"
    )
