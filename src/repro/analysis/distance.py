"""Distance helpers shared by clustering and representative selection."""

from __future__ import annotations

import numpy as np

from ..errors import ClusteringError


def squared_distances(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances: (n, d) x (k, d) -> (n, k)."""
    data = np.asarray(data, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    if data.ndim != 2 or centers.ndim != 2 or data.shape[1] != centers.shape[1]:
        raise ClusteringError("dimension mismatch in squared_distances")
    d_norm = np.einsum("ij,ij->i", data, data)
    c_norm = np.einsum("ij,ij->i", centers, centers)
    cross = data @ centers.T
    out = d_norm[:, None] - 2.0 * cross + c_norm[None, :]
    np.maximum(out, 0.0, out=out)
    return out


def nearest_to_centroid(
    data: np.ndarray, labels: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Index of the member closest to each centroid (SimPoint's pick).

    Returns an array of length k; entries for empty clusters are -1.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    k = len(centroids)
    picks = np.full(k, -1, dtype=np.int64)
    distances = squared_distances(data, centroids)
    for j in range(k):
        members = np.flatnonzero(labels == j)
        if len(members):
            picks[j] = members[np.argmin(distances[members, j])]
    return picks


def earliest_member(labels: np.ndarray, k: int) -> np.ndarray:
    """Index of the earliest member of each cluster (COASTS's pick)."""
    labels = np.asarray(labels)
    picks = np.full(k, -1, dtype=np.int64)
    for j in range(k):
        members = np.flatnonzero(labels == j)
        if len(members):
            picks[j] = members[0]
    return picks
