"""Distance kernels shared by clustering and representative selection.

Each kernel has a batched (``vectorized``) and a loop (``scalar``)
implementation selected via :mod:`repro.analysis.backend`; the pairs are
bit-identical (see that module's docstring for why), which is what the
differential tests in ``tests/test_vectorized.py`` pin.

The batched kernels avoid BLAS on purpose: squared distances come from
``((x - c) ** 2).sum(axis=-1)`` — an innermost-axis pairwise reduction
that rounds exactly like the scalar per-pair ``np.sum`` — instead of the
classic ``||x||^2 - 2 x.c + ||c||^2`` expansion, whose ``x @ c.T`` term
is not reproducible element-for-element outside the BLAS call.  Large
batches are processed in row blocks to bound the broadcast temporary;
blocking never changes a per-row reduction, so results are independent
of the block size.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ClusteringError
from .backend import resolve_backend

#: Upper bound on the (rows x centers x dims) broadcast temporary, in
#: float64 elements (~32 MiB).  Purely a memory knob: results are
#: identical for any positive value.
_BLOCK_ELEMENTS = 4 * 1024 * 1024


def _check_pair(data: np.ndarray, centers: np.ndarray) -> None:
    if data.ndim != 2 or centers.ndim != 2 or data.shape[1] != centers.shape[1]:
        raise ClusteringError("dimension mismatch in distance kernel")


def _row_block(n_centers: int, n_dims: int) -> int:
    return max(1, _BLOCK_ELEMENTS // max(1, n_centers * n_dims))


def squared_distances(
    data: np.ndarray, centers: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Pairwise squared Euclidean distances: (n, d) x (k, d) -> (n, k)."""
    data = np.asarray(data, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    _check_pair(data, centers)
    n, k = len(data), len(centers)
    out = np.empty((n, k), dtype=np.float64)
    if resolve_backend(backend) == "scalar":
        for i in range(n):
            for j in range(k):
                out[i, j] = np.sum((data[i] - centers[j]) ** 2)
        return out
    block = _row_block(k, data.shape[1])
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        delta = data[lo:hi, None, :] - centers[None, :, :]
        out[lo:hi] = (delta ** 2).sum(axis=2)
    return out


def assign_points(
    data: np.ndarray, centers: np.ndarray, backend: Optional[str] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused distance/assignment: nearest center per point.

    Returns ``(labels, distances)`` where ``labels[i]`` is the index of
    the closest center (first on ties, like ``np.argmin``) and
    ``distances[i]`` the squared distance to it.  This is the inner
    kernel of every Lloyd iteration; fusing the argmin with the distance
    computation avoids materialising the full (n, k) matrix per caller.
    """
    data = np.asarray(data, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    _check_pair(data, centers)
    n, k = len(data), len(centers)
    labels = np.empty(n, dtype=np.int64)
    best = np.empty(n, dtype=np.float64)
    if resolve_backend(backend) == "scalar":
        row = np.empty(k, dtype=np.float64)
        for i in range(n):
            for j in range(k):
                row[j] = np.sum((data[i] - centers[j]) ** 2)
            label = int(np.argmin(row))
            labels[i] = label
            best[i] = row[label]
        return labels, best
    block = _row_block(k, data.shape[1])
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        delta = data[lo:hi, None, :] - centers[None, :, :]
        distances = (delta ** 2).sum(axis=2)
        chunk_labels = np.argmin(distances, axis=1)
        labels[lo:hi] = chunk_labels
        best[lo:hi] = distances[np.arange(hi - lo), chunk_labels]
    return labels, best


def nearest_to_centroid(
    data: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Index of the member closest to each centroid (SimPoint's pick).

    Returns an array of length k; entries for empty clusters are -1.
    """
    data = np.asarray(data, dtype=np.float64)
    labels = np.asarray(labels)
    k = len(centroids)
    picks = np.full(k, -1, dtype=np.int64)
    distances = squared_distances(data, centroids, backend=backend)
    if resolve_backend(backend) == "scalar":
        for j in range(k):
            members = np.flatnonzero(labels == j)
            if len(members):
                picks[j] = members[np.argmin(distances[members, j])]
        return picks
    # Mask out non-members, then one argmin per column.  np.argmin takes
    # the first minimum, i.e. the lowest member index — the same
    # tie-break as the scalar per-member scan.
    member = labels[:, None] == np.arange(k)[None, :]
    masked = np.where(member, distances, np.inf)
    candidates = np.argmin(masked, axis=0)
    occupied = member.any(axis=0)
    picks[occupied] = candidates[occupied]
    return picks


def earliest_member(
    labels: np.ndarray, k: int, backend: Optional[str] = None
) -> np.ndarray:
    """Index of the earliest member of each cluster (COASTS's pick)."""
    labels = np.asarray(labels)
    picks = np.full(k, -1, dtype=np.int64)
    if resolve_backend(backend) == "scalar":
        for j in range(k):
            members = np.flatnonzero(labels == j)
            if len(members):
                picks[j] = members[0]
        return picks
    if len(labels):
        valid = (labels >= 0) & (labels < k)
        first = np.full(k, len(labels), dtype=np.int64)
        np.minimum.at(first, labels[valid], np.flatnonzero(valid))
        found = first < len(labels)
        picks[found] = first[found]
    return picks
