"""Principal component analysis (for Figure 1's first-component curves)."""

from __future__ import annotations

import numpy as np

from ..errors import ClusteringError


class PCA:
    """Exact PCA via SVD of the centred data matrix."""

    def __init__(self, n_components: int = 1) -> None:
        if n_components <= 0:
            raise ClusteringError("n_components must be positive")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit on rows of *data*."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or len(data) < 2:
            raise ClusteringError("PCA needs at least two samples")
        n_components = min(self.n_components, *data.shape)
        self.mean_ = data.mean(axis=0)
        centred = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centred, full_matrices=False)
        self.components_ = vt[:n_components]
        self.explained_variance_ = (singular_values[:n_components] ** 2) / (
            len(data) - 1
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project rows of *data* onto the fitted components."""
        if self.components_ is None or self.mean_ is None:
            raise ClusteringError("PCA.transform called before fit")
        data = np.asarray(data, dtype=np.float64)
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(data).transform(data)


def first_component(data: np.ndarray) -> np.ndarray:
    """The first principal component score of each row (Figure 1's y-axis)."""
    return PCA(n_components=1).fit_transform(data)[:, 0]
