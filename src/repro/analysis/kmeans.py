"""k-means clustering (k-means++ initialisation, Lloyd iterations).

A from-scratch implementation so the library has no dependency beyond numpy;
SimPoint's phase classification is plain Euclidean k-means over projected
BBVs, run for several random seeds per k with the best inertia kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ClusteringError


@dataclass(frozen=True)
class KMeansResult:
    """One clustering: centroids, per-point labels, and total inertia."""

    centroids: np.ndarray  # (k, d)
    labels: np.ndarray     # (n,)
    inertia: float

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centroids)

    def cluster_sizes(self) -> np.ndarray:
        """Points per cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _kmeanspp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding."""
    n = len(data)
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest = np.sum((data - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            centroids[i:] = data[int(rng.integers(n))]
            break
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centroids[i] = data[choice]
        distance = np.sum((data - centroids[i]) ** 2, axis=1)
        np.minimum(closest, distance, out=closest)
    return centroids


def _lloyd(
    data: np.ndarray,
    centroids: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> KMeansResult:
    """Lloyd iterations from the given initial centroids."""
    k = len(centroids)
    labels = np.zeros(len(data), dtype=np.int64)
    for _ in range(max_iterations):
        # squared distances via ||x||^2 - 2 x.c + ||c||^2
        cross = data @ centroids.T
        c_norm = np.einsum("ij,ij->i", centroids, centroids)
        distances = c_norm[None, :] - 2.0 * cross
        new_labels = np.argmin(distances, axis=1)
        moved = not np.array_equal(new_labels, labels)
        labels = new_labels
        new_centroids = centroids.copy()
        shift = 0.0
        for j in range(k):
            members = data[labels == j]
            if len(members):
                candidate = members.mean(axis=0)
                shift = max(shift, float(np.sum((candidate - centroids[j]) ** 2)))
                new_centroids[j] = candidate
        centroids = new_centroids
        if not moved and shift <= tolerance:
            break
    deltas = data - centroids[labels]
    inertia = float(np.einsum("ij,ij->", deltas, deltas))
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia)


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    n_seeds: int = 5,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> KMeansResult:
    """Cluster *data* into *k* clusters, keeping the best of *n_seeds* runs.

    ``k`` is clamped to the number of distinct points available.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or len(data) == 0:
        raise ClusteringError("kmeans expects a non-empty 2-D array")
    if k <= 0:
        raise ClusteringError("k must be positive")
    if n_seeds <= 0:
        raise ClusteringError("n_seeds must be positive")
    k = min(k, len(data))

    best: KMeansResult | None = None
    for attempt in range(n_seeds):
        rng = np.random.default_rng(seed + attempt * 7919)
        centroids = _kmeanspp_init(data, k, rng)
        result = _lloyd(data, centroids, max_iterations, tolerance)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
