"""k-means clustering (k-means++ initialisation, Lloyd iterations).

A from-scratch implementation so the library has no dependency beyond numpy;
SimPoint's phase classification is plain Euclidean k-means over projected
BBVs, run for several random seeds per k with the best inertia kept.

Both hot kernels — the k-means++ seeding sweep and the batched Lloyd
iteration — exist in a ``vectorized`` and a ``scalar`` implementation
(:mod:`repro.analysis.backend`).  The pairs consume the identical random
stream and are bit-identical on labels, centroids and inertia: the
batched path only uses reductions whose rounding matches the scalar loop
(innermost-axis pairwise sums, index-order ``np.add.at`` accumulation),
never BLAS products.  ``tests/test_vectorized.py`` pins this across a
seed x shape matrix; ``repro bench`` measures the resulting speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import ClusteringError
from .backend import resolve_backend
from .distance import assign_points


@dataclass(frozen=True)
class KMeansResult:
    """One clustering: centroids, per-point labels, and total inertia."""

    centroids: np.ndarray  # (k, d)
    labels: np.ndarray     # (n,)
    inertia: float
    #: Assignment-step inertia per Lloyd iteration (final refresh last).
    #: Exactly non-increasing step-to-step up to centroid-update rounding;
    #: the property tests pin this.
    inertia_history: Tuple[float, ...] = field(default=(), compare=False)

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.centroids)

    @property
    def n_iterations(self) -> int:
        """Lloyd iterations executed (0 for an empty history)."""
        return max(0, len(self.inertia_history) - 1)

    def cluster_sizes(self) -> np.ndarray:
        """Points per cluster."""
        return np.bincount(self.labels, minlength=self.k)


@dataclass(frozen=True)
class ClusterQuality:
    """Per-cluster quality statistics of one clustering.

    The SimPoint-style predictors of sampling error: how tight each
    cluster is (intra-cluster variance), how well separated it is from
    the others (simplified, centroid-based silhouette — distances to
    centroids instead of all-pairs member distances, so it stays O(n·k)),
    and how far each member sits from its own centroid (used to flag
    representatives that are poor stand-ins for their phase).
    """

    sizes: np.ndarray              # (k,) members per cluster
    variances: np.ndarray          # (k,) mean squared member->centroid dist
    silhouettes: np.ndarray        # (k,) mean member silhouette (0 if k == 1)
    member_distances: np.ndarray   # (n,) Euclidean dist to own centroid
    member_silhouettes: np.ndarray  # (n,) simplified silhouette per member

    @property
    def k(self) -> int:
        """Number of clusters."""
        return len(self.sizes)

    @property
    def mean_silhouette(self) -> float:
        """Whole-clustering mean silhouette."""
        return float(self.member_silhouettes.mean())


def cluster_quality(
    data: np.ndarray, result: KMeansResult, backend: Optional[str] = None
) -> ClusterQuality:
    """Quality statistics of *result* on *data*.

    *data* must be the points the labels refer to (``result.labels``
    indexes its rows).  The simplified silhouette of point ``i`` is
    ``(b_i - a_i) / max(a_i, b_i)`` with ``a_i`` the distance to its own
    centroid and ``b_i`` the distance to the nearest other centroid;
    with a single cluster every silhouette is 0 by convention.
    """
    from .distance import squared_distances

    data = np.asarray(data, dtype=np.float64)
    labels = result.labels
    if len(data) != len(labels):
        raise ClusteringError(
            f"data rows ({len(data)}) do not match labels ({len(labels)})"
        )
    k = result.k
    squared = squared_distances(data, result.centroids, backend=backend)
    own_sq = squared[np.arange(len(data)), labels]
    member_distances = np.sqrt(own_sq)

    sizes = np.bincount(labels, minlength=k)
    variances = np.zeros(k, dtype=np.float64)
    np.add.at(variances, labels, own_sq)
    occupied = sizes > 0
    variances[occupied] /= sizes[occupied]

    if k == 1:
        member_silhouettes = np.zeros(len(data), dtype=np.float64)
    else:
        others = np.sqrt(squared)
        others[np.arange(len(data)), labels] = np.inf
        nearest_other = others.min(axis=1)
        denominator = np.maximum(member_distances, nearest_other)
        member_silhouettes = np.where(
            denominator > 0,
            (nearest_other - member_distances)
            / np.where(denominator > 0, denominator, 1.0),
            0.0,
        )
    silhouettes = np.zeros(k, dtype=np.float64)
    np.add.at(silhouettes, labels, member_silhouettes)
    silhouettes[occupied] /= sizes[occupied]
    return ClusterQuality(
        sizes=sizes,
        variances=variances,
        silhouettes=silhouettes,
        member_distances=member_distances,
        member_silhouettes=member_silhouettes,
    )


def _point_distances(
    data: np.ndarray, center: np.ndarray, backend: str
) -> np.ndarray:
    """Squared distance of every row of *data* to one *center*."""
    if backend == "scalar":
        return np.array(
            [np.sum((data[i] - center) ** 2) for i in range(len(data))],
            dtype=np.float64,
        )
    return ((data - center) ** 2).sum(axis=1)


def _kmeanspp_init(
    data: np.ndarray, k: int, rng: np.random.Generator, backend: str
) -> np.ndarray:
    """k-means++ seeding.

    Both backends draw from *rng* identically (the seeding probabilities
    they compute are bit-identical), so the chosen seeds match too.
    """
    n = len(data)
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest = _point_distances(data, centroids[0], backend)
    for i in range(1, k):
        total = float(np.sum(closest))
        if total <= 0:
            centroids[i:] = data[int(rng.integers(n))]
            break
        probabilities = closest / total
        choice = int(rng.choice(n, p=probabilities))
        centroids[i] = data[choice]
        distance = _point_distances(data, centroids[i], backend)
        if backend == "scalar":
            for point in range(n):
                if distance[point] < closest[point]:
                    closest[point] = distance[point]
        else:
            np.minimum(closest, distance, out=closest)
    return centroids


def _update_centroids(
    data: np.ndarray, labels: np.ndarray, centroids: np.ndarray, backend: str
) -> Tuple[np.ndarray, float]:
    """One Lloyd update: member means (empty clusters keep their centroid).

    Returns ``(new_centroids, shift)`` with *shift* the largest squared
    centroid movement.  Member sums accumulate in point order on both
    backends (``np.add.at`` adds sequentially in index order), so the
    means — and everything downstream — are bit-identical.
    """
    k, d = centroids.shape
    new_centroids = centroids.copy()
    if backend == "scalar":
        sums = np.zeros((k, d), dtype=np.float64)
        counts = np.zeros(k, dtype=np.int64)
        for i in range(len(data)):
            sums[labels[i]] += data[i]
            counts[labels[i]] += 1
        shift = 0.0
        for j in range(k):
            if counts[j]:
                candidate = sums[j] / counts[j]
                shift = max(shift, float(np.sum((candidate - centroids[j]) ** 2)))
                new_centroids[j] = candidate
        return new_centroids, shift
    sums = np.zeros((k, d), dtype=np.float64)
    np.add.at(sums, labels, data)
    counts = np.bincount(labels, minlength=k)
    occupied = counts > 0
    new_centroids[occupied] = sums[occupied] / counts[occupied, None]
    moves = ((new_centroids - centroids) ** 2).sum(axis=1)
    return new_centroids, float(moves.max(initial=0.0))


def _lloyd(
    data: np.ndarray,
    centroids: np.ndarray,
    max_iterations: int,
    tolerance: float,
    backend: str,
) -> KMeansResult:
    """Lloyd iterations from the given initial centroids."""
    labels = np.zeros(len(data), dtype=np.int64)
    history = []
    for _ in range(max_iterations):
        new_labels, distances = assign_points(data, centroids, backend=backend)
        history.append(float(np.sum(distances)))
        moved = not np.array_equal(new_labels, labels)
        labels = new_labels
        centroids, shift = _update_centroids(data, labels, centroids, backend)
        if not moved and shift <= tolerance:
            break
    # Final refresh against the converged centroids, so the reported
    # labels/inertia are consistent with the reported centroids even
    # when the loop stopped at max_iterations.
    labels, distances = assign_points(data, centroids, backend=backend)
    inertia = float(np.sum(distances))
    history.append(inertia)
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=inertia,
        inertia_history=tuple(history),
    )


def kmeans(
    data: np.ndarray,
    k: int,
    seed: int = 0,
    n_seeds: int = 5,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    backend: Optional[str] = None,
) -> KMeansResult:
    """Cluster *data* into *k* clusters, keeping the best of *n_seeds* runs.

    ``k`` is clamped to the number of points available.  ``backend``
    overrides the process-global kernel selection (see
    :mod:`repro.analysis.backend`).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or len(data) == 0:
        raise ClusteringError("kmeans expects a non-empty 2-D array")
    if k <= 0:
        raise ClusteringError("k must be positive")
    if n_seeds <= 0:
        raise ClusteringError("n_seeds must be positive")
    k = min(k, len(data))
    chosen = resolve_backend(backend)

    best: KMeansResult | None = None
    for attempt in range(n_seeds):
        rng = np.random.default_rng(seed + attempt * 7919)
        centroids = _kmeanspp_init(data, k, rng, chosen)
        result = _lloyd(data, centroids, max_iterations, tolerance, chosen)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
