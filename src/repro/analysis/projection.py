"""Random projection of basic-block vectors.

SimPoint reduces raw BBVs (one dimension per static basic block) to 15
dimensions with a random linear projection before clustering; the projection
preserves relative distances well (Johnson-Lindenstrauss) while making
k-means cheap.  We draw the projection matrix uniformly from [0, 1) with a
fixed seed, as the SimPoint release does.

The batched kernel computes each output dimension as a row-batched
multiply + innermost-axis sum rather than one BLAS ``data @ matrix``:
the pairwise row reduction rounds exactly like the scalar per-element
``np.sum(data[i] * column)``, so the ``vectorized`` and ``scalar``
backends (:mod:`repro.analysis.backend`) are bit-identical — a property
a BLAS product cannot provide (its blocked dot products round
differently) and which the end-to-end differential tests rely on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ClusteringError
from .backend import resolve_backend


class RandomProjection:
    """A fixed random linear map from ``n_features`` to ``dim`` dimensions."""

    def __init__(self, n_features: int, dim: int, seed: int = 0) -> None:
        if n_features <= 0 or dim <= 0:
            raise ClusteringError("projection dimensions must be positive")
        self.n_features = n_features
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.matrix = rng.random((n_features, dim))

    def project(
        self, data: np.ndarray, backend: Optional[str] = None
    ) -> np.ndarray:
        """Project rows of *data* (n, n_features) to (n, dim)."""
        data = np.asarray(data, dtype=np.float64)
        squeeze = data.ndim == 1
        if squeeze:
            data = data[None, :]
        if data.shape[1] != self.n_features:
            raise ClusteringError(
                f"projection expects {self.n_features} features, got "
                f"{data.shape[1]}"
            )
        out = np.empty((len(data), self.dim), dtype=np.float64)
        if resolve_backend(backend) == "scalar":
            for i in range(len(data)):
                for j in range(self.dim):
                    out[i, j] = np.sum(data[i] * self.matrix[:, j])
        else:
            # One row-batched pass per output dimension; each row's
            # product-sum reduces over the contiguous feature axis.
            for j in range(self.dim):
                out[:, j] = (data * self.matrix[:, j]).sum(axis=1)
        return out[0] if squeeze else out
