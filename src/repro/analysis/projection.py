"""Random projection of basic-block vectors.

SimPoint reduces raw BBVs (one dimension per static basic block) to 15
dimensions with a random linear projection before clustering; the projection
preserves relative distances well (Johnson-Lindenstrauss) while making
k-means cheap.  We draw the projection matrix uniformly from [0, 1) with a
fixed seed, as the SimPoint release does.
"""

from __future__ import annotations

import numpy as np

from ..errors import ClusteringError


class RandomProjection:
    """A fixed random linear map from ``n_features`` to ``dim`` dimensions."""

    def __init__(self, n_features: int, dim: int, seed: int = 0) -> None:
        if n_features <= 0 or dim <= 0:
            raise ClusteringError("projection dimensions must be positive")
        self.n_features = n_features
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.matrix = rng.random((n_features, dim))

    def project(self, data: np.ndarray) -> np.ndarray:
        """Project rows of *data* (n, n_features) to (n, dim)."""
        data = np.asarray(data, dtype=np.float64)
        squeeze = data.ndim == 1
        if squeeze:
            data = data[None, :]
        if data.shape[1] != self.n_features:
            raise ClusteringError(
                f"projection expects {self.n_features} features, got "
                f"{data.shape[1]}"
            )
        out = data @ self.matrix
        return out[0] if squeeze else out
