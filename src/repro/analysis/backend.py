"""Kernel backend selection for the analysis layer.

Every hot analysis kernel — k-means++ seeding, Lloyd iteration, fused
distance/assignment, representative picking, BBV normalisation, random
projection and the BIC log-likelihood — exists in two implementations:

* ``vectorized`` (the default): batched numpy kernels, the production
  path;
* ``scalar``: straightforward per-point / per-cluster Python loops, the
  reference the vectorized kernels are differentially tested against.

The two are **bit-identical** by construction, not by luck: the
vectorized kernels only use numpy operations whose per-element rounding
provably matches the scalar loop —

* elementwise arithmetic (identical by definition);
* reductions over the innermost contiguous axis (``(...).sum(axis=-1)``),
  which apply numpy's pairwise summation per output element exactly as
  ``np.sum`` does on the equivalent 1-D slice;
* sequential indexed accumulation (``np.add.at`` / ``np.bincount``),
  which add entries in index order exactly as a Python loop does.

BLAS-backed matrix products are deliberately **not** used in these
kernels: ``A @ B`` blocks and fuses its dot products, so its elements do
not bit-match per-row ``np.dot`` (verified empirically on this numpy
build).  The pairwise-compatible formulations are still orders of
magnitude faster than the scalar loops (see ``repro bench``).

The active backend is process-global.  Select it with
:func:`set_backend`, temporarily with :func:`use_backend`, or for a
whole process via ``$REPRO_ANALYSIS_BACKEND``.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..backend import BACKENDS, BackendControl
from ..errors import ClusteringError

#: Environment variable overriding the default backend at import time.
BACKEND_ENV = "REPRO_ANALYSIS_BACKEND"

#: The analysis layer's process-global switch (module functions below
#: are the public API; the control object is shared with tests).
CONTROL = BackendControl(BACKEND_ENV, ClusteringError)


def get_backend() -> str:
    """The active kernel backend name."""
    return CONTROL.get()


def set_backend(name: str) -> str:
    """Select the kernel backend; returns the previously active one."""
    return CONTROL.set(name)


def resolve_backend(name: Optional[str]) -> str:
    """*name* itself if given (validated), else the active backend.

    The kernels call this on their ``backend=`` keyword so an explicit
    argument always wins over the process-global selection.
    """
    return CONTROL.resolve(name)


def use_backend(name: str) -> Iterator[str]:
    """Context manager: run a block under *name*, then restore."""
    return CONTROL.use(name)
