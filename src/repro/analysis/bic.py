"""Bayesian Information Criterion model selection for k-means.

SimPoint scores each candidate k with the BIC of a spherical-Gaussian
mixture fitted by the clustering (the X-means formulation of Pelleg &
Moore), then picks the *smallest* k whose score reaches a threshold of the
observed score range — 90% by default, as in the SimPoint release.

The per-cluster log-likelihood terms are evaluated batched on the
``vectorized`` backend and looped on the ``scalar`` one; the expressions
are written identically in both, and both sum the term array with
``np.sum``, so the scores are bit-identical
(:mod:`repro.analysis.backend`).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ClusteringError
from .backend import resolve_backend
from .kmeans import KMeansResult, kmeans

#: Floor on the fitted variance, guarding against degenerate clusterings.
_VARIANCE_FLOOR = 1e-12


def bic_score(
    data: np.ndarray, result: KMeansResult, backend: Optional[str] = None
) -> float:
    """BIC of *result* as a spherical-Gaussian mixture over *data*."""
    data = np.asarray(data, dtype=np.float64)
    n, d = data.shape
    k = result.k
    if n == 0:
        raise ClusteringError("BIC of an empty data set")
    if n <= k:
        # A cluster per point: perfect fit, maximally penalised.
        return -math.inf

    variance = max(result.inertia / (d * (n - k)), _VARIANCE_FLOOR)
    log_norm = np.log(2.0 * np.pi * variance)
    sizes = result.cluster_sizes()
    if resolve_backend(backend) == "scalar":
        terms = []
        for size in sizes:
            if size <= 0:
                continue
            n_j = np.float64(size)
            terms.append(
                n_j * np.log(n_j / n) - n_j * d / 2.0 * log_norm
                - (n_j - 1.0) * d / 2.0
            )
        log_likelihood = float(np.sum(np.array(terms, dtype=np.float64)))
    else:
        n_j = sizes[sizes > 0].astype(np.float64)
        terms = (
            n_j * np.log(n_j / n) - n_j * d / 2.0 * log_norm
            - (n_j - 1.0) * d / 2.0
        )
        log_likelihood = float(np.sum(terms))
    n_parameters = k * (d + 1)
    return log_likelihood - n_parameters / 2.0 * math.log(n)


def select_k(scores: Dict[int, float], threshold: float = 0.9) -> int:
    """Smallest k whose BIC reaches *threshold* of the score range."""
    if not scores:
        raise ClusteringError("no BIC scores to select from")
    if not 0.0 < threshold <= 1.0:
        raise ClusteringError("threshold must be in (0, 1]")
    finite = {k: s for k, s in scores.items() if math.isfinite(s)}
    if not finite:
        return min(scores)
    low = min(finite.values())
    high = max(finite.values())
    # Clamp: low + threshold*(high-low) can round above high when the
    # range is large, leaving no eligible k even at threshold == 1.0.
    cutoff = min(low + threshold * (high - low), high)
    eligible = [k for k, s in finite.items() if s >= cutoff]
    return min(eligible)


def cluster_with_bic(
    data: np.ndarray,
    kmax: int,
    seed: int = 0,
    n_seeds: int = 5,
    threshold: float = 0.9,
    ks: Sequence[int] | None = None,
    backend: Optional[str] = None,
) -> Tuple[KMeansResult, Dict[int, float]]:
    """Cluster for k = 1..kmax and return the BIC-selected clustering.

    Returns ``(best_result, scores)`` where *scores* maps each tried k to
    its BIC.  ``ks`` overrides the candidate list (ablations).
    """
    data = np.asarray(data, dtype=np.float64)
    if kmax <= 0:
        raise ClusteringError("kmax must be positive")
    candidates = list(ks) if ks is not None else list(range(1, kmax + 1))
    candidates = sorted({min(k, len(data)) for k in candidates if k >= 1})
    if not candidates:
        raise ClusteringError("no candidate k values")

    results: Dict[int, KMeansResult] = {}
    scores: Dict[int, float] = {}
    for k in candidates:
        result = kmeans(data, k, seed=seed, n_seeds=n_seeds, backend=backend)
        results[k] = result
        scores[k] = bic_score(data, result, backend=backend)
    chosen = select_k(scores, threshold=threshold)
    return results[chosen], scores
