"""Basic-block-vector utilities.

A BBV is the per-interval histogram of instructions executed in each static
basic block.  Before clustering, BBVs are normalised so each row sums to one
(the paper: "normalized by having each element divided by the sum of all
elements in the vector").  COASTS builds each coarse interval's *signature*
by projecting the BBVs of its temporal sub-chunks and concatenating them.

Every function takes the usual ``backend`` override
(:mod:`repro.analysis.backend`); the batched and scalar paths are
bit-identical, so a whole signature build can be differentially tested
end-to-end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ClusteringError
from .backend import resolve_backend
from .projection import RandomProjection


def normalize_rows(
    data: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Scale each row of *data* to sum to 1 (rows of zeros stay zero)."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ClusteringError("expected a 2-D array of BBVs")
    if resolve_backend(backend) == "scalar":
        out = np.empty_like(data)
        for i in range(len(data)):
            total = np.sum(data[i])
            out[i] = data[i] / (total if total != 0.0 else 1.0)
        return out
    sums = data.sum(axis=1, keepdims=True)
    safe = np.where(sums == 0.0, 1.0, sums)
    return data / safe


def project_bbvs(
    bbvs: np.ndarray, dim: int, seed: int = 0, backend: Optional[str] = None
) -> np.ndarray:
    """Normalise then randomly project raw BBVs to *dim* dimensions."""
    bbvs = normalize_rows(bbvs, backend=backend)
    projection = RandomProjection(bbvs.shape[1], dim, seed=seed)
    return projection.project(bbvs, backend=backend)


def concat_signatures(
    segment_bbvs: np.ndarray,
    dim: int,
    seed: int = 0,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Build COASTS signature vectors from per-sub-chunk BBVs.

    *segment_bbvs* has shape ``(n_instances, n_segments, n_blocks)``.  Each
    sub-chunk BBV is projected to *dim* dimensions; an instance's signature
    is the concatenation of its sub-chunk projections, normalised to sum 1.
    Result shape: ``(n_instances, n_segments * dim)``.
    """
    segment_bbvs = np.asarray(segment_bbvs, dtype=np.float64)
    if segment_bbvs.ndim != 3:
        raise ClusteringError("segment_bbvs must be (instances, segments, blocks)")
    n_instances, n_segments, n_blocks = segment_bbvs.shape
    projection = RandomProjection(n_blocks, dim, seed=seed)
    flat = segment_bbvs.reshape(n_instances * n_segments, n_blocks)
    flat = normalize_rows(flat, backend=backend)
    projected = projection.project(flat, backend=backend)
    signatures = projected.reshape(n_instances, n_segments * dim)
    return normalize_rows(signatures, backend=backend)
