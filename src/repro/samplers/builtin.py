"""Built-in sampler registrations.

Registration order is reporting order: the paper's four methods first
(Table II / Table III order), then the related-work samplers.  Importing
this module (which :mod:`repro.samplers` does) is what populates the
registry, so any process that can run the harness — driver, pool worker,
dispatched worker — sees the same method set.
"""

from __future__ import annotations

from ..sampling.coasts import Coasts
from ..sampling.early import EarlySimPoint
from ..sampling.multilevel import MultiLevelSampler
from ..sampling.ranked_set import RankedSetSampler
from ..sampling.simpoint import SimPoint
from ..sampling.stratified import StratifiedSampler
from .registry import PlanContext, register_sampler


@register_sampler(
    "simpoint",
    "fixed-length SimPoint: BBV k-means, centroid-nearest points",
    requires=("fine",),
    config_knobs=("fine_interval_size", "fine_kmax", "projection_dim",
                  "kmeans_seeds", "bic_threshold", "random_seed"),
)
def _build_simpoint(ctx: PlanContext):
    sampler = SimPoint(ctx.sampling, obs=ctx.obs)
    plan = sampler.sample(ctx.fine_profile(), benchmark=ctx.benchmark)
    return plan, sampler.last_diagnostics


@register_sampler(
    "early_sp",
    "SimPoint with early-point selection (EarlySP, PACT 2003)",
    requires=("fine",),
    config_knobs=("fine_interval_size", "fine_kmax", "projection_dim",
                  "kmeans_seeds", "bic_threshold", "random_seed"),
)
def _build_early_sp(ctx: PlanContext):
    sampler = EarlySimPoint(ctx.sampling, obs=ctx.obs)
    plan = sampler.sample(ctx.fine_profile(), benchmark=ctx.benchmark)
    return plan, sampler.last_diagnostics


@register_sampler(
    "coasts",
    "COASTS: coarse structure-bounded intervals, earliest-instance points",
    requires=("trace", "coarse"),
    config_knobs=("coarse_kmax", "min_structure_coverage",
                  "signature_segments", "projection_dim", "kmeans_seeds",
                  "bic_threshold", "random_seed"),
)
def _build_coasts(ctx: PlanContext):
    return ctx.coasts()


@register_sampler(
    "multilevel",
    "COASTS + in-point fine-grained SimPoint re-sampling (the paper)",
    requires=("trace", "coarse"),
    config_knobs=("coarse_kmax", "resample_threshold", "fine_interval_size",
                  "fine_kmax", "projection_dim", "kmeans_seeds",
                  "bic_threshold", "random_seed"),
)
def _build_multilevel(ctx: PlanContext):
    coarse_plan, coarse_diag = ctx.coasts()
    sampler = MultiLevelSampler(ctx.sampling, obs=ctx.obs)
    plan = sampler.sample(
        ctx.trace, benchmark=ctx.benchmark,
        coarse_plan=coarse_plan, coarse_diag=coarse_diag,
    )
    return plan, sampler.last_diagnostics


@register_sampler(
    "stratified",
    "two-phase stratified sampling: BBV strata, Neyman budget allocation",
    requires=("fine",),
    config_knobs=("fine_interval_size", "fine_kmax", "stratified_budget",
                  "projection_dim", "kmeans_seeds", "bic_threshold",
                  "random_seed"),
)
def _build_stratified(ctx: PlanContext):
    sampler = StratifiedSampler(ctx.sampling, obs=ctx.obs)
    plan = sampler.sample(ctx.fine_profile(), benchmark=ctx.benchmark)
    return plan, sampler.last_diagnostics


@register_sampler(
    "ranked_set",
    "ranked-set sampling with repeated subsampling over a BBV-PC proxy",
    requires=("fine",),
    config_knobs=("fine_interval_size", "ranked_set_size",
                  "ranked_set_cycles", "random_seed"),
)
def _build_ranked_set(ctx: PlanContext):
    sampler = RankedSetSampler(ctx.sampling, obs=ctx.obs)
    plan = sampler.sample(ctx.fine_profile(), benchmark=ctx.benchmark)
    return plan, sampler.last_diagnostics
