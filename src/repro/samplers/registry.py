"""The sampler registry: one uniform ``plan → estimate → diag`` contract.

Every sampling method the harness can evaluate is described by a
:class:`SamplerSpec` — its name, the profiles it needs, the
:class:`~repro.config.SamplingConfig` knobs it reads, and a
``build_plan(ctx)`` entry point that turns a :class:`PlanContext` into a
:class:`~repro.sampling.points.SamplingPlan` plus (optionally) the
clustering-side :class:`~repro.obs.diag.MethodDiag`.  The harness, the
CLI's ``--methods`` choices, the cache's method keys and the diag tables
all derive from this registry, so registering a sampler here is the
*only* step needed to enter every report, the conformance tests and the
leaderboard.

Third-party registration::

    from repro.samplers import PlanContext, register_sampler

    @register_sampler("my_method", "what it does", requires=("fine",))
    def _build_my_method(ctx: PlanContext):
        profile = ctx.fine_profile()
        ...
        return plan, diag          # diag may be None

The paper's four methods and the two related-work samplers are
registered by :mod:`repro.samplers.builtin` at package import, so the
registry is never empty once ``repro.samplers`` is imported (the harness
imports it; dispatcher workers therefore self-register too).

:class:`PlanContext` memoises the expensive shared inputs — the fine
fixed-interval BBV profile and the COASTS coarse plan — so co-scheduled
methods share them exactly as the pre-registry harness did (bit-for-bit:
the same profile object, the same coarse clustering).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Optional, Tuple

from ..config import SamplingConfig
from ..errors import SamplingError
from ..obs.diag import MethodDiag
from ..sampling.points import SamplingPlan

#: Shared inputs a sampler may declare in ``SamplerSpec.requires``.
KNOWN_REQUIREMENTS: Tuple[str, ...] = ("trace", "fine", "coarse")

#: Names of the real SamplingConfig knobs (for config_knobs validation).
_CONFIG_FIELDS = frozenset(f.name for f in fields(SamplingConfig))


class PlanContext:
    """Everything a sampler needs to build a plan for one benchmark.

    Shared profiles are memoised so that co-scheduled samplers reuse
    them: all fine-grained methods see the *same*
    :class:`~repro.engine.profiles.FixedIntervalProfile` object, and
    COASTS/multilevel share one coarse clustering, exactly as the
    hand-wired harness pipeline did.
    """

    def __init__(self, trace, sampling: SamplingConfig, benchmark: str,
                 obs=None) -> None:
        self.trace = trace
        self.sampling = sampling
        self.benchmark = benchmark
        #: Optional :class:`~repro.obs.ObsContext`; samplers built from
        #: this context trace into it.
        self.obs = obs
        self._functional = None
        self._fine_profile = None
        self._coasts: Optional[Tuple[SamplingPlan, Optional[MethodDiag]]] = None

    # ------------------------------------------------------------------
    @property
    def functional(self):
        """A (memoised) functional simulator over the trace."""
        if self._functional is None:
            from ..engine.functional import FunctionalSimulator

            metrics = self.obs.metrics if self.obs is not None else None
            self._functional = FunctionalSimulator(self.trace, metrics=metrics)
        return self._functional

    @property
    def has_fine_profile(self) -> bool:
        """Has the fine profile already been collected?"""
        return self._fine_profile is not None

    def fine_profile(self):
        """The (memoised) fine fixed-interval BBV profile."""
        if self._fine_profile is None:
            self._fine_profile = self.functional.profile_fixed_intervals(
                self.sampling.fine_interval_size
            )
        return self._fine_profile

    def coasts(self) -> Tuple[SamplingPlan, Optional[MethodDiag]]:
        """The (memoised) COASTS coarse plan and its diagnostics."""
        if self._coasts is None:
            from ..sampling.coasts import Coasts

            sampler = Coasts(self.sampling, obs=self.obs)
            plan = sampler.sample(self.trace, benchmark=self.benchmark)
            self._coasts = (plan, sampler.last_diagnostics)
        return self._coasts


#: ``build_plan`` signature: context in, (plan, clustering diag) out.
BuildPlan = Callable[
    [PlanContext], Tuple[SamplingPlan, Optional[MethodDiag]]
]


@dataclass(frozen=True)
class SamplerSpec:
    """Registry entry of one sampling method."""

    name: str
    description: str
    build_plan: BuildPlan
    #: Shared inputs the method consumes (subset of
    #: :data:`KNOWN_REQUIREMENTS`); the harness uses ``"fine"`` to
    #: attribute the fine-profiling pass to the ``profiling`` stage.
    requires: Tuple[str, ...] = ()
    #: SamplingConfig knobs the method reads (documentation + validation:
    #: every name must be a real config field).
    config_knobs: Tuple[str, ...] = field(default=())


_REGISTRY: Dict[str, SamplerSpec] = {}


def add_spec(spec: SamplerSpec) -> SamplerSpec:
    """Register *spec*, validating its declarations."""
    if spec.name in _REGISTRY:
        raise SamplingError(f"sampler {spec.name!r} is already registered")
    unknown = set(spec.requires) - set(KNOWN_REQUIREMENTS)
    if unknown:
        raise SamplingError(
            f"sampler {spec.name!r}: unknown requirements {sorted(unknown)} "
            f"(known: {', '.join(KNOWN_REQUIREMENTS)})"
        )
    bogus = set(spec.config_knobs) - _CONFIG_FIELDS
    if bogus:
        raise SamplingError(
            f"sampler {spec.name!r}: config_knobs {sorted(bogus)} are not "
            f"SamplingConfig fields"
        )
    _REGISTRY[spec.name] = spec
    return spec


def register_sampler(
    name: str,
    description: str,
    requires: Tuple[str, ...] = (),
    config_knobs: Tuple[str, ...] = (),
) -> Callable[[BuildPlan], BuildPlan]:
    """Decorator form of :func:`add_spec` for ``build_plan`` functions."""

    def decorate(build_plan: BuildPlan) -> BuildPlan:
        add_spec(SamplerSpec(
            name=name,
            description=description,
            build_plan=build_plan,
            requires=tuple(requires),
            config_knobs=tuple(config_knobs),
        ))
        return build_plan

    return decorate


def unregister_sampler(name: str) -> None:
    """Remove a registered sampler (tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def registered_methods() -> Tuple[str, ...]:
    """All registered method names, in registration order.

    Registration order is reporting order: the built-in methods register
    in the paper's order (simpoint, early_sp, coasts, multilevel)
    followed by the related-work samplers.
    """
    return tuple(_REGISTRY)


def get_sampler(name: str) -> SamplerSpec:
    """The spec registered under *name*."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SamplingError(
            f"unknown sampler {name!r} (registered: "
            f"{', '.join(registered_methods()) or 'none'})"
        ) from None
