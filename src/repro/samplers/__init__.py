"""Pluggable sampler registry (see README § Samplers).

Importing this package registers the built-in methods; everything the
harness knows about "which sampling methods exist" flows from here.
"""

from . import builtin  # noqa: F401  (self-registration side effect)
from .registry import (
    KNOWN_REQUIREMENTS,
    PlanContext,
    SamplerSpec,
    add_spec,
    get_sampler,
    register_sampler,
    registered_methods,
    unregister_sampler,
)

__all__ = [
    "KNOWN_REQUIREMENTS",
    "PlanContext",
    "SamplerSpec",
    "add_spec",
    "get_sampler",
    "register_sampler",
    "registered_methods",
    "unregister_sampler",
]
