"""Disk cache for expensive experiment artefacts.

Whole-program detailed baselines take seconds-to-minutes per benchmark and
config; the cache stores their JSON-serialised results keyed by a content
key that includes a schema version, so stale entries are ignored after
incompatible changes.

The cache is safe under concurrent writers (the parallel suite runner fans
worker processes out over one shared cache directory): writes go to a
uniquely named temporary file in the cache directory and are published with
an atomic :func:`os.replace`, and readers tolerate corrupt or partially
written entries by treating them as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

#: Bump when cached payload layouts change.
CACHE_SCHEMA_VERSION = 4

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache/``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


class ResultCache:
    """A trivially simple key -> JSON file cache.

    ``hits`` / ``misses`` count :meth:`get` outcomes on this instance (the
    timing report surfaces them); they are per-process statistics, not
    shared state.
    """

    def __init__(self, directory: Optional[Path] = None, enabled: bool = True) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"v{CACHE_SCHEMA_VERSION}:{key}".encode()
        ).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[Any]:
        """Fetch a cached payload, or None."""
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            with open(path) as handle:
                wrapper = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Missing, unreadable, or partially written by a crashed
            # writer: all count as misses.
            self.misses += 1
            return None
        if not isinstance(wrapper, dict) or wrapper.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return wrapper.get("payload")

    def put(self, key: str, payload: Any) -> None:
        """Store *payload* (must be JSON-serialisable) under *key*.

        Concurrent writers never clobber each other mid-write: each write
        goes to its own ``mkstemp`` file (unique per process and call)
        before the atomic rename.  Losing a same-key race is harmless —
        both writers publish identical payloads.
        """
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"key": key, "payload": payload}, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete all cache files (including stranded ``*.tmp`` files left
        by crashed writers); returns how many entries were removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.directory.glob("*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
