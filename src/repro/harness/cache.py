"""Disk cache for expensive experiment artefacts.

Whole-program detailed baselines take seconds-to-minutes per benchmark and
config; the cache stores their JSON-serialised results keyed by a content
key that includes a schema version, so stale entries are ignored after
incompatible changes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional

#: Bump when cached payload layouts change.
CACHE_SCHEMA_VERSION = 4

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache/``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


class ResultCache:
    """A trivially simple key -> JSON file cache."""

    def __init__(self, directory: Optional[Path] = None, enabled: bool = True) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.enabled = enabled

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(
            f"v{CACHE_SCHEMA_VERSION}:{key}".encode()
        ).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[Any]:
        """Fetch a cached payload, or None."""
        if not self.enabled:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path) as handle:
                wrapper = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if wrapper.get("key") != key:
            return None
        return wrapper.get("payload")

    def put(self, key: str, payload: Any) -> None:
        """Store *payload* (must be JSON-serialisable) under *key*."""
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump({"key": key, "payload": payload}, handle)
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete all cache files; returns how many were removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
