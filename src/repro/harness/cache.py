"""Disk cache for expensive experiment artefacts.

Whole-program detailed baselines take seconds-to-minutes per benchmark and
config; the cache stores their JSON-serialised results keyed by a content
key that includes a schema version, so stale entries are ignored after
incompatible changes.

The cache is safe under concurrent writers (the parallel suite runner fans
worker processes out over one shared cache directory): writes go to a
uniquely named temporary file in the cache directory and are published with
an atomic :func:`os.replace`, and readers tolerate corrupt or partially
written entries by treating them as misses.  A corrupt entry is also
*quarantined* — renamed to ``<entry>.corrupt`` so it cannot be re-read as
corrupt forever (or hide a disk problem), and counted on the instance's
``corrupt`` counter; ``clear()`` sweeps quarantined files along with
stranded temp files.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from ..obs import CACHE_CORRUPT, CACHE_HITS, CACHE_MISSES, MetricsRegistry

#: Bump when cached payload layouts change.  The version is part of the
#: content key *and* stored inside every entry, so an entry written under
#: another schema is detectable (and quarantined) even if it lands on the
#: same path.
CACHE_SCHEMA_VERSION = 7

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache/``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_cache"


class ResultCache:
    """A trivially simple key -> JSON file cache.

    ``hits`` / ``misses`` / ``corrupt`` count :meth:`get` outcomes —
    backed by counters on a :class:`MetricsRegistry` (a private one by
    default; :meth:`bind_metrics` rebinds to a shared registry, which is
    how the experiment runner folds cache traffic into its observability
    context and ``--metrics-out``).  They are per-process statistics,
    not shared state.  Every corrupt read is also a miss.
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Re-home this cache's counters onto *registry*.

        Counts already booked on the old registry carry over, so binding
        after use loses nothing.
        """
        if registry is self.metrics:
            return
        registry.merge(self.metrics)
        self.metrics = registry

    @property
    def hits(self) -> int:
        """Reads served from a whole, current-schema entry."""
        return int(self.metrics.value(CACHE_HITS))

    @property
    def misses(self) -> int:
        """Reads that found nothing usable (corrupt reads included)."""
        return int(self.metrics.value(CACHE_MISSES))

    @property
    def corrupt(self) -> int:
        """Reads that quarantined a torn, stale or colliding entry."""
        return int(self.metrics.value(CACHE_CORRUPT))

    def path_for(self, key: str) -> Path:
        """The on-disk path an entry for *key* occupies."""
        digest = hashlib.sha256(
            f"v{CACHE_SCHEMA_VERSION}:{key}".encode()
        ).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    # Backwards-compatible internal alias.
    _path = path_for

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``*.json.corrupt``) so it is not
        re-read forever, and count it."""
        self.metrics.counter(CACHE_CORRUPT).inc()
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            # A concurrent reader quarantined it first, or the directory
            # is read-only; either way the entry already reads as a miss.
            pass

    def get(self, key: str) -> Optional[Any]:
        """Fetch a cached payload, or None."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path) as handle:
                wrapper = json.load(handle)
        except FileNotFoundError:
            self.metrics.counter(CACHE_MISSES).inc()
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Unreadable or partially written by a crashed writer: a
            # miss, and the torn file is quarantined so the recompute's
            # fresh entry replaces it.
            self.metrics.counter(CACHE_MISSES).inc()
            self._quarantine(path)
            return None
        if (
            not isinstance(wrapper, dict)
            or wrapper.get("version") != CACHE_SCHEMA_VERSION
            or wrapper.get("key") != key
        ):
            # Wrong schema generation or a key collision: structurally
            # whole but unusable — quarantine it too.
            self.metrics.counter(CACHE_MISSES).inc()
            self._quarantine(path)
            return None
        self.metrics.counter(CACHE_HITS).inc()
        return wrapper.get("payload")

    def put(self, key: str, payload: Any) -> None:
        """Store *payload* (must be JSON-serialisable) under *key*.

        Concurrent writers never clobber each other mid-write: each write
        goes to its own ``mkstemp`` file (unique per process and call)
        before the atomic rename.  Losing a same-key race is harmless —
        both writers publish identical payloads.
        """
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(
                    {
                        "version": CACHE_SCHEMA_VERSION,
                        "key": key,
                        "payload": payload,
                    },
                    handle,
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete all cache files — including stranded ``*.tmp`` files
        left by crashed writers and quarantined ``*.corrupt`` entries;
        returns how many live entries were removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for pattern in ("*.tmp", "*.corrupt"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed
