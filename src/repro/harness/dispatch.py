"""Distributed campaign dispatcher: lease-based work over stdio workers.

Two pool backends behind one interface drive a suite's (benchmark,
config) tasks:

* :class:`LocalPool` — the existing in-process
  ``ProcessPoolExecutor`` path (:mod:`repro.harness.parallel`),
  unchanged semantics;
* :class:`DispatchPool` — subprocess workers launched via a
  configurable launcher command (default ``python -m
  repro.harness.worker``, so an SSH or cluster launcher is just a
  command prefix) speaking the versioned JSONL protocol of
  :mod:`repro.harness.worker` over stdin/stdout.

Task ownership in the dispatch backend is **lease-based**: the
dispatcher hands each worker a (run spec, lease, deadline) tuple,
workers heartbeat while executing, and the monitor loop reclaims and
re-queues any task whose lease expires — missed heartbeats, a dead
process, an injected partition.  Idle workers steal reclaimed work.
Results commit **at-most-once**: a lease that was reclaimed can no
longer commit (the stale result is counted and discarded), so a
partitioned or slow worker finishing late cannot double-commit a run
into the :class:`~repro.harness.recovery.SuiteJournal`; re-execution of
a reclaimed task is idempotent because every run is a pure function of
its spec and lands in the shared :class:`~repro.harness.cache
.ResultCache`.  The invariant the tests pin: serial == pooled ==
dispatched output, byte-identical, including under every injected
dispatch fault (``worker_exit``, ``heartbeat_drop``, ``partition``,
``stale_commit`` — see :mod:`repro.harness.faults`).

The lease bookkeeping itself lives in :class:`LeaseTable`, a pure
state machine (grant / renew / sweep / reclaim / settle) so property
tests can drive arbitrary interleavings of expiry, steal and late
commit without processes or clocks.
"""

from __future__ import annotations

import json
import logging
import os
import shlex
import subprocess
import sys
import time
from pathlib import Path
from queue import Empty, Queue
from threading import Thread
from typing import (
    TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple,
)

from ..errors import DispatchError, HarnessError
from ..obs import (
    DISPATCH_HEARTBEATS,
    DISPATCH_LEASE_SECONDS,
    DISPATCH_LEASES,
    DISPATCH_MISSED,
    DISPATCH_RECLAIMS,
    DISPATCH_STALE_COMMITS,
    DISPATCH_STEALS,
    RETRY_BACKOFF_SECONDS,
    RUN_FAILURES,
    RUN_RETRIES,
    RUN_TIMEOUTS,
    RUNS_COMPLETED,
    WORKER_CRASHES,
    MetricsRegistry,
)
from .recovery import (
    DEFAULT_POLICY,
    FaultPolicy,
    RunFailure,
    SuiteOutcome,
    assemble_outcome,
)
from .timing import SuiteTiming
from .worker import PROTOCOL_VERSION, encode_task_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import BenchmarkRun, ExperimentRunner

logger = logging.getLogger(__name__)

#: One suite task: a benchmark name under a machine configuration.
Task = Tuple[str, object]

#: Default lease timeout: a lease with no heartbeat for this long is
#: reclaimed and its task re-queued.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Dispatcher monitor tick (seconds): inbox poll + deadline sweep cadence.
_DISPATCH_TICK = 0.05

#: Grace period for workers to exit after a shutdown message.
_SHUTDOWN_GRACE = 5.0

#: Consecutive worker deaths before first contact that abort the
#: campaign (the launcher command itself is broken).
_MAX_SPAWN_FAILURES = 3


# ----------------------------------------------------------------------
# lease bookkeeping (pure, property-testable)
# ----------------------------------------------------------------------
class Lease:
    """One granted lease: a task owned by a worker until a deadline."""

    __slots__ = (
        "lease_id", "index", "worker", "granted_at", "last_contact",
        "partitioned", "missed_marked",
    )

    def __init__(
        self,
        lease_id: str,
        index: int,
        worker: int,
        now: float,
        partitioned: bool = False,
    ) -> None:
        self.lease_id = lease_id
        self.index = index
        self.worker = worker
        self.granted_at = now
        self.last_contact = now
        #: Injected network partition: while the lease is active, every
        #: message concerning it is dropped at the dispatcher.
        self.partitioned = partitioned
        #: Heartbeat slots already counted as missed (monitor sweep).
        self.missed_marked = 0


class LeaseTable:
    """Lease state machine with at-most-once commit gating.

    Pure bookkeeping — no processes, no wall clock of its own; callers
    pass ``now``.  The invariants the dispatcher (and the hypothesis
    property tests) rely on:

    * a task has at most one *active* lease;
    * a committed task can never be granted again;
    * :meth:`settle` accepts a result only for an active,
      non-partitioned lease — anything else is dropped (and, unless the
      drop *is* the partition, counted as a stale commit).
    """

    def __init__(
        self,
        lease_timeout: float,
        heartbeat_interval: float,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[object] = None,
    ) -> None:
        if lease_timeout <= 0:
            raise HarnessError(
                f"lease timeout must be > 0, got {lease_timeout}"
            )
        if heartbeat_interval <= 0:
            raise HarnessError(
                f"heartbeat interval must be > 0, got {heartbeat_interval}"
            )
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.metrics = metrics
        #: Optional flight recorder (:class:`repro.obs.events.EventLog`)
        #: — like ``metrics``, a passive sink that keeps the state
        #: machine pure.
        self.events = events
        self._active: Dict[str, Lease] = {}
        self._by_index: Dict[int, str] = {}
        self._committed: Set[int] = set()
        #: Worker that lost each reclaimed task (steal detection).
        self._lost: Dict[int, int] = {}
        self._serial = 0

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _event(self, kind: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    def active_count(self) -> int:
        """Number of currently active leases."""
        return len(self._active)

    def active_ids(self) -> List[str]:
        """The active lease ids (sorted, for deterministic tests)."""
        return sorted(self._active)

    def get(self, lease_id: str) -> Optional[Lease]:
        """The active lease *lease_id*, or None."""
        return self._active.get(lease_id)

    def is_partitioned(self, lease_id: str) -> bool:
        """Is *lease_id* active and under an injected partition?"""
        lease = self._active.get(lease_id)
        return lease is not None and lease.partitioned

    # ------------------------------------------------------------------
    def grant(
        self, index: int, worker: int, now: float, partitioned: bool = False
    ) -> Lease:
        """Lease task *index* to *worker*; counts steals of reclaimed work."""
        if index in self._committed:
            raise DispatchError(
                f"task {index} already committed; cannot re-lease"
            )
        if index in self._by_index:
            raise DispatchError(
                f"task {index} already leased as {self._by_index[index]}"
            )
        self._serial += 1
        lease = Lease(f"L{self._serial}", index, worker, now, partitioned)
        self._active[lease.lease_id] = lease
        self._by_index[index] = lease.lease_id
        self._count(DISPATCH_LEASES)
        self._event(
            "lease_grant", lease=lease.lease_id, index=index, worker=worker,
        )
        lost_to = self._lost.pop(index, None)
        if lost_to is not None and lost_to != worker:
            self._count(DISPATCH_STEALS)
            self._event(
                "lease_steal", lease=lease.lease_id, index=index,
                worker=worker, lost_by=lost_to,
            )
        return lease

    def ungrant(self, lease_id: str) -> Optional[Lease]:
        """Roll back a grant whose task message never reached the worker.

        No counters move: the lease never existed from the worker's
        point of view (the caller re-queues the task itself).
        """
        lease = self._active.pop(lease_id, None)
        if lease is not None:
            self._by_index.pop(lease.index, None)
        return lease

    def renew(self, lease_id: str, now: float) -> bool:
        """Heartbeat: refresh the lease deadline.  False when stale.

        Heartbeats for a partitioned lease are dropped (that *is* the
        partition); heartbeats for unknown leases — already reclaimed —
        are ignored, so a stale worker cannot resurrect its lease.
        """
        lease = self._active.get(lease_id)
        if lease is None or lease.partitioned:
            return False
        lease.last_contact = now
        self._count(DISPATCH_HEARTBEATS)
        return True

    def sweep(self, now: float) -> List[Lease]:
        """Monitor pass: count missed heartbeats, reclaim expired leases.

        Returns the reclaimed leases (their tasks must be re-queued by
        the caller).
        """
        expired: List[Lease] = []
        for lease in list(self._active.values()):
            age = now - lease.last_contact
            slots = int(age // self.heartbeat_interval)
            if slots > lease.missed_marked:
                self._count(DISPATCH_MISSED, slots - lease.missed_marked)
                lease.missed_marked = slots
            if age > self.lease_timeout:
                expired.append(lease)
        for lease in expired:
            self._reclaim(lease)
        return expired

    def reclaim(self, lease_id: str) -> Optional[Lease]:
        """Reclaim one lease explicitly (dead worker, run timeout)."""
        lease = self._active.get(lease_id)
        if lease is None:
            return None
        self._reclaim(lease)
        return lease

    def _reclaim(self, lease: Lease) -> None:
        del self._active[lease.lease_id]
        self._by_index.pop(lease.index, None)
        self._lost[lease.index] = lease.worker
        self._count(DISPATCH_RECLAIMS)
        self._event(
            "lease_reclaim", lease=lease.lease_id, index=lease.index,
            worker=lease.worker,
        )

    def settle(self, lease_id: str, ok: bool, now: float) -> Optional[Lease]:
        """Gate one incoming result.  Returns the lease iff it may land.

        An active, non-partitioned lease settles: the lease ends, and a
        successful result marks the task committed — for ever, which is
        the at-most-once guarantee.  A partitioned lease drops the
        message silently (the network ate it).  Anything else — the
        lease was reclaimed, possibly re-granted and even re-committed
        by now — is a stale commit attempt: counted, discarded.
        """
        lease = self._active.get(lease_id)
        if lease is None:
            self._count(DISPATCH_STALE_COMMITS)
            self._event("stale_commit", lease=lease_id)
            return None
        if lease.partitioned:
            return None
        del self._active[lease_id]
        self._by_index.pop(lease.index, None)
        if ok:
            self._committed.add(lease.index)
            self._lost.pop(lease.index, None)
            if self.metrics is not None:
                self.metrics.histogram(DISPATCH_LEASE_SECONDS).observe(
                    max(now - lease.granted_at, 0.0)
                )
            self._event(
                "lease_commit", lease=lease_id, index=lease.index,
                worker=lease.worker,
            )
        return lease


# ----------------------------------------------------------------------
# pool interface
# ----------------------------------------------------------------------
class Pool:
    """One interface over both campaign execution backends.

    A pool turns a task list into a :class:`SuiteOutcome` under a fault
    policy, journaling through the ``on_run``/``on_failure`` hooks
    exactly like the serial and process-pool drivers.
    """

    def run_tasks(
        self,
        runner: "ExperimentRunner",
        tasks: Sequence[Task],
        policy: FaultPolicy = DEFAULT_POLICY,
        progress: bool = False,
        on_run: Optional[Callable[[int, "BenchmarkRun"], None]] = None,
        on_failure: Optional[Callable[[int, RunFailure], None]] = None,
    ) -> SuiteOutcome:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (logs, manifests)."""
        raise NotImplementedError


class LocalPool(Pool):
    """The in-process backend: ``ProcessPoolExecutor`` fan-out.

    A thin adapter over :func:`repro.harness.parallel.run_tasks_parallel`
    (which itself degrades to the serial driver for one worker or one
    task), so both backends are driven through the same interface.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs

    def run_tasks(self, runner, tasks, policy=DEFAULT_POLICY, progress=False,
                  on_run=None, on_failure=None):
        from .parallel import run_tasks_parallel

        return run_tasks_parallel(
            runner, tasks, jobs=self.jobs, progress=progress, policy=policy,
            on_run=on_run, on_failure=on_failure,
        )

    def describe(self) -> str:
        return f"local process pool ({self.jobs or 'auto'} jobs)"


def _worker_env() -> Dict[str, str]:
    """Environment for spawned workers: this package stays importable.

    ``$REPRO_FAULTS``, ``$REPRO_CACHE_DIR`` and the backend switches
    cross untouched; the package's ``src`` root is prepended to
    ``PYTHONPATH`` so ``python -m repro.harness.worker`` resolves even
    when the dispatcher itself was started via ``sys.path`` tweaks.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    return env


class _WorkerProc:
    """One launched worker: process, pipes, reader thread, lease state."""

    STARTING = "starting"  # launched, no hello yet
    IDLE = "idle"          # ready for a task
    BUSY = "busy"          # holds an active lease
    SUSPECT = "suspect"    # lease reclaimed while the process lives
    DEAD = "dead"          # EOF observed

    def __init__(
        self,
        wid: int,
        command: List[str],
        inbox: "Queue[Tuple[int, Optional[str]]]",
    ) -> None:
        self.wid = wid
        self.state = self.STARTING
        self.lease_id: Optional[str] = None
        try:
            self.proc = subprocess.Popen(
                command,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=_worker_env(),
            )
        except OSError as error:
            raise DispatchError(
                f"cannot launch worker via {' '.join(command)!r}: {error}"
            ) from error
        self._inbox = inbox
        self.reader = Thread(target=self._read, daemon=True)
        self.reader.start()

    def _read(self) -> None:
        try:
            for line in self.proc.stdout:
                self._inbox.put((self.wid, line))
        finally:
            self._inbox.put((self.wid, None))

    def send(self, message: dict) -> bool:
        """Write one JSONL message; False when the pipe is broken."""
        try:
            self.proc.stdin.write(json.dumps(message) + "\n")
            self.proc.stdin.flush()
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False

    def shutdown(self) -> None:
        """Ask the worker to exit (message + closed stdin)."""
        self.send({"v": PROTOCOL_VERSION, "type": "shutdown"})
        try:
            self.proc.stdin.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass

    def kill(self) -> None:
        """Forcibly stop the worker process."""
        try:
            self.proc.kill()
        except OSError:  # pragma: no cover - already dead
            pass


class DispatchPool(Pool):
    """Subprocess-worker backend with lease-based work stealing.

    ``launcher`` is the full worker command as one shell-style string
    (default: this interpreter running ``-m repro.harness.worker``); a
    cluster backend is just a prefix, e.g. ``"ssh node7 python -m
    repro.harness.worker"``.  ``lease_timeout`` bounds how long a task
    may go without contact before it is reclaimed and re-queued;
    workers heartbeat every ``heartbeat_interval`` (default: a fifth of
    the lease timeout) while executing.
    """

    def __init__(
        self,
        workers: int = 2,
        launcher: Optional[str] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise HarnessError(f"workers must be >= 1, got {workers}")
        if lease_timeout <= 0:
            raise HarnessError(
                f"lease timeout must be > 0, got {lease_timeout}"
            )
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise HarnessError(
                f"heartbeat interval must be > 0, got {heartbeat_interval}"
            )
        self.workers = workers
        self.launcher = launcher
        self.lease_timeout = float(lease_timeout)
        self.heartbeat_interval = (
            float(heartbeat_interval) if heartbeat_interval is not None
            else max(self.lease_timeout / 5.0, 0.05)
        )
        #: Every worker pid this pool ever spawned (tests assert none
        #: outlive a campaign).
        self.spawned_pids: List[int] = []

    def command(self) -> List[str]:
        """The worker launch command (argv form)."""
        if self.launcher:
            parts = shlex.split(self.launcher)
            if not parts:
                raise HarnessError("launcher command is empty")
            return parts
        # The runpy filter silences the (harmless) "found in sys.modules"
        # warning: the harness package itself imports .worker.
        return [
            sys.executable, "-u", "-W", "ignore::RuntimeWarning:runpy",
            "-m", "repro.harness.worker",
        ]

    def describe(self) -> str:
        return (
            f"dispatch pool ({self.workers} workers via "
            f"{' '.join(self.command())!r}, lease {self.lease_timeout}s)"
        )

    # ------------------------------------------------------------------
    def run_tasks(self, runner, tasks, policy=DEFAULT_POLICY, progress=False,
                  on_run=None, on_failure=None):
        from . import faults
        from .runner import BenchmarkRun

        if not tasks:
            return SuiteOutcome(())
        metrics = runner.obs.metrics
        runner.timing.jobs = max(runner.timing.jobs, self.workers)
        logger.info(
            "dispatching %d runs over %s", len(tasks), self.describe()
        )

        results: Dict[int, "BenchmarkRun"] = {}
        failures: Dict[int, RunFailure] = {}
        attempts: Dict[int, int] = {i: 0 for i in range(len(tasks))}
        eligible: Dict[int, float] = {i: 0.0 for i in range(len(tasks))}
        queue: Set[int] = set(range(len(tasks)))
        # Live telemetry plane (None unless --serve/--events-out): lease
        # ids double as metrics stream ids — unique per grant, so a
        # reclaimed-and-stolen task's partial deltas can never collide
        # with its re-run's stream.
        plane = getattr(runner, "telemetry", None)
        table = LeaseTable(
            self.lease_timeout, self.heartbeat_interval, metrics=metrics,
            events=plane.events if plane is not None else None,
        )

        def _note_worker(wid: int, state: str, benchmark=None, lease=None):
            if plane is not None:
                plane.progress.note_worker(
                    wid, state, benchmark=benchmark, lease=lease
                )

        def _drop_stream(lease_id: Optional[str]) -> None:
            if plane is not None and lease_id is not None:
                plane.live.discard(lease_id)

        def _settle_obs(lease_id: str, payload: Optional[dict]) -> None:
            """Fold a committed obs payload, atomically retiring the
            lease's streamed deltas so live scrapes never double count."""
            if plane is not None:
                plane.live.resolve(lease_id, merge=lambda: _merge_obs(payload))
            else:
                _merge_obs(payload)

        inbox: "Queue[Tuple[int, Optional[str]]]" = Queue()
        fleet: Dict[int, _WorkerProc] = {}
        spawn_state = {"serial": 0, "failures": 0}
        # Crash-looping tasks are bounded by the retry budget; this cap
        # only backstops a launcher that keeps dying *between* tasks.
        max_spawns = self.workers + len(tasks) * policy.max_attempts + 8

        payload_base = {
            "sampling": runner.sampling,
            "cost_model": runner.cost_model,
            "workload_scale": runner.workload_scale,
            "methods": runner.methods,
            "cache_dir": Path(runner.cache.directory),
            "cache_enabled": runner.cache.enabled,
            "diagnostics": runner.diagnostics,
        }

        def _spawn() -> None:
            if len(self.spawned_pids) >= max_spawns:
                raise DispatchError(
                    f"spawned {len(self.spawned_pids)} workers for "
                    f"{len(tasks)} tasks; launcher or workers are "
                    f"crash-looping"
                )
            wid = spawn_state["serial"]
            spawn_state["serial"] += 1
            worker = _WorkerProc(wid, self.command(), inbox)
            fleet[wid] = worker
            self.spawned_pids.append(worker.proc.pid)
            _note_worker(wid, "starting")
            if plane is not None:
                plane.events.emit(
                    "worker_spawn", worker=wid, pid=worker.proc.pid
                )

        def _usable() -> int:
            return sum(
                1 for w in fleet.values()
                if w.state in (w.STARTING, w.IDLE, w.BUSY)
            )

        def _ensure_fleet() -> None:
            outstanding = len(queue) + table.active_count()
            target = min(self.workers, outstanding) if outstanding else 0
            while _usable() < target:
                _spawn()

        def _merge_obs(payload: Optional[dict]) -> None:
            if not payload:
                return
            runner.timing.merge(SuiteTiming.from_dict(payload["timing"]))
            runner.obs.merge_dict(payload)

        def _finalize_failure(index: int, failure: RunFailure) -> None:
            logger.warning("run failed: %s", failure.describe())
            metrics.counter(RUN_FAILURES).inc()
            if policy.fail_fast:
                raise HarnessError(f"fail_fast: {failure.describe()}")
            failures[index] = failure
            if on_failure is not None:
                on_failure(index, failure)

        def _attempt_failed(
            index: int,
            error_type: str,
            message: str,
            tb: str = "",
            stage: Optional[str] = None,
        ) -> None:
            attempts[index] += 1
            benchmark, config = tasks[index]
            if attempts[index] < policy.max_attempts:
                delay = policy.backoff_seconds(attempts[index])
                logger.info(
                    "[%s] %s attempt %d failed (%s); retrying in %.2fs",
                    config.name, benchmark, attempts[index], error_type,
                    delay,
                )
                metrics.counter(RUN_RETRIES).inc()
                metrics.histogram(RETRY_BACKOFF_SECONDS).observe(delay)
                if plane is not None:
                    plane.events.emit(
                        "retry", benchmark=benchmark, config=config.name,
                        attempt=attempts[index], error=error_type,
                    )
                eligible[index] = time.monotonic() + delay
                queue.add(index)
            else:
                _finalize_failure(index, RunFailure(
                    benchmark=benchmark,
                    config_name=config.name,
                    attempts=attempts[index],
                    max_attempts=policy.max_attempts,
                    error_type=error_type,
                    error_message=message,
                    traceback=tb,
                    stage=stage,
                ))

        def _suspend_holder(lease: Lease) -> None:
            """Detach a reclaimed lease from its (still live) worker."""
            holder = fleet.get(lease.worker)
            if holder is not None and holder.lease_id == lease.lease_id:
                holder.lease_id = None
                if holder.state == holder.BUSY:
                    holder.state = holder.SUSPECT

        def _assign(now: float) -> None:
            idle = sorted(
                (w.wid, w) for w in fleet.values() if w.state == w.IDLE
            )
            ready = sorted(i for i in queue if eligible[i] <= now)
            for (_, worker), index in zip(idle, ready):
                benchmark, config = tasks[index]
                partitioned = faults.dispatch_fault(
                    "partition", benchmark, attempts[index]
                )
                if partitioned:
                    logger.warning(
                        "injected partition on %s lease (attempt %d)",
                        benchmark, attempts[index],
                    )
                lease = table.grant(
                    index, worker.wid, now, partitioned=partitioned
                )
                if progress:
                    suffix = (
                        f" (attempt {attempts[index] + 1})"
                        if attempts[index] else ""
                    )
                    logger.info("[%s] %s ...%s", config.name, benchmark,
                                suffix)
                message = {
                    "v": PROTOCOL_VERSION,
                    "type": "task",
                    "lease": lease.lease_id,
                    "benchmark": benchmark,
                    "attempt": attempts[index],
                    "lease_timeout": self.lease_timeout,
                    "heartbeat_interval": self.heartbeat_interval,
                    "payload": encode_task_payload(dict(
                        payload_base, benchmark=benchmark, config=config,
                        worker=f"w{worker.wid}",
                        trace_ctx=runner.obs.tracer.export_context(
                            f"{benchmark}:{config.name}:a{attempts[index]}"
                        ),
                    )),
                }
                if worker.send(message):
                    worker.state = worker.BUSY
                    worker.lease_id = lease.lease_id
                    queue.discard(index)
                    _note_worker(
                        worker.wid, "busy", benchmark=benchmark,
                        lease=lease.lease_id,
                    )
                else:
                    # Broken pipe: the task never left; re-queue it
                    # without charging an attempt.  The reader's EOF
                    # event does the death bookkeeping.
                    table.ungrant(lease.lease_id)

        def _handle_death(wid: int) -> None:
            worker = fleet[wid]
            worker.proc.wait()
            was_starting = worker.state == worker.STARTING
            worker.state = worker.DEAD
            _note_worker(wid, "dead")
            if plane is not None:
                plane.events.emit(
                    "worker_dead", worker=wid,
                    exit_code=worker.proc.returncode,
                )
            lease_id, worker.lease_id = worker.lease_id, None
            if lease_id is not None:
                lease = table.reclaim(lease_id)
                _drop_stream(lease_id)
                if lease is not None:
                    metrics.counter(WORKER_CRASHES).inc()
                    _attempt_failed(
                        lease.index, "WorkerCrash",
                        f"dispatch worker died mid-lease "
                        f"(exit {worker.proc.returncode})",
                    )
            if was_starting:
                spawn_state["failures"] += 1
                if spawn_state["failures"] >= _MAX_SPAWN_FAILURES:
                    raise DispatchError(
                        f"{spawn_state['failures']} workers died before "
                        f"first contact; launcher "
                        f"{' '.join(self.command())!r} is broken "
                        f"(exit {worker.proc.returncode})"
                    )

        def _handle_result(worker: _WorkerProc, message: dict) -> None:
            status = message.get("status")
            if status == "fatal":
                raise DispatchError(
                    f"worker {worker.wid} hit a non-library error:\n"
                    f"{message.get('traceback', '')}"
                )
            lease_id = message.get("lease", "")
            now = time.monotonic()
            lease = table.settle(lease_id, ok=(status == "ok"), now=now)
            if lease is None:
                if table.is_partitioned(lease_id):
                    # The partition ate the result; the lease stays
                    # active until the monitor reclaims it.
                    return
                # Stale commit (already counted): the task was reclaimed
                # — and possibly re-run — while this worker was out of
                # contact.  Its result is discarded, but the worker
                # itself is back: return it to the rotation.
                logger.warning(
                    "worker %d: stale result for %s discarded",
                    worker.wid, lease_id,
                )
                if worker.state in (worker.BUSY, worker.SUSPECT):
                    worker.state = worker.IDLE
                    worker.lease_id = None
                    _note_worker(worker.wid, "idle")
                return
            worker.state = worker.IDLE
            worker.lease_id = None
            _note_worker(worker.wid, "idle")
            index = lease.index
            benchmark, config = tasks[index]
            if status == "ok":
                _settle_obs(lease_id, message.get("obs"))
                metrics.counter(RUNS_COMPLETED).inc()
                results[index] = BenchmarkRun.from_dict(message["run"])
                if on_run is not None:
                    on_run(index, results[index])
                if progress:
                    logger.info("[%s] %s done", config.name, benchmark)
            else:
                info = message.get("info", {})
                _settle_obs(lease_id, info.get("obs"))
                _attempt_failed(
                    index,
                    info.get("error_type", "ReproError"),
                    info.get("error_message", ""),
                    info.get("traceback", ""),
                    info.get("stage"),
                )

        def _handle_line(wid: int, line: Optional[str]) -> None:
            worker = fleet[wid]
            if line is None:
                _handle_death(wid)
                return
            if worker.state == worker.DEAD:  # pragma: no cover - race
                return
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                logger.warning(
                    "worker %d: unparseable message %r; killing it",
                    wid, line[:120],
                )
                worker.kill()
                return
            if message.get("v") != PROTOCOL_VERSION:
                raise DispatchError(
                    f"worker {wid} speaks protocol {message.get('v')!r}; "
                    f"dispatcher speaks {PROTOCOL_VERSION}"
                )
            kind = message.get("type")
            if kind == "hello":
                spawn_state["failures"] = 0
                if worker.state == worker.STARTING:
                    worker.state = worker.IDLE
                    _note_worker(wid, "idle")
            elif kind == "heartbeat":
                lease_id = message.get("lease", "")
                renewed = table.renew(lease_id, time.monotonic())
                # Piggybacked metrics delta: fold exactly once, and only
                # for a live, non-partitioned lease — deltas of a
                # reclaimed lease are stale by definition (their run will
                # recommit elsewhere), and a partition eats its messages.
                if renewed and plane is not None and "seq" in message:
                    plane.live.fold(lease_id, message)
            elif kind == "result":
                _handle_result(worker, message)
            else:
                logger.warning(
                    "worker %d: unexpected message type %r", wid, kind
                )

        def _sweep(now: float) -> None:
            for lease in table.sweep(now):
                _suspend_holder(lease)
                _drop_stream(lease.lease_id)
                logger.warning(
                    "lease %s on %s expired (no contact for > %.1fs); "
                    "reclaiming", lease.lease_id, tasks[lease.index][0],
                    self.lease_timeout,
                )
                _attempt_failed(
                    lease.index, "LeaseExpired",
                    f"lease expired after {self.lease_timeout}s without "
                    f"heartbeat",
                )
            if policy.timeout is None:
                return
            overdue = [
                lease for lease in map(table.get, table.active_ids())
                if lease is not None
                and now - lease.granted_at > policy.timeout
            ]
            for lease in overdue:
                # A run past the policy timeout is wedged even though it
                # may still heartbeat; kill the worker (runs cannot be
                # cancelled in place) and charge the task.
                table.reclaim(lease.lease_id)
                _suspend_holder(lease)
                _drop_stream(lease.lease_id)
                holder = fleet.get(lease.worker)
                if holder is not None and holder.state != holder.DEAD:
                    holder.kill()
                metrics.counter(RUN_TIMEOUTS).inc()
                _attempt_failed(
                    lease.index, "RunTimeout",
                    f"run exceeded per-run timeout of {policy.timeout}s",
                )

        def _shutdown_fleet() -> None:
            for worker in fleet.values():
                if worker.state != worker.DEAD:
                    worker.shutdown()
            deadline = time.monotonic() + _SHUTDOWN_GRACE
            # Drain the inbox while the fleet winds down: a worker whose
            # lease was reclaimed may flush a withheld result on shutdown
            # (the node "came back"), and that late commit must still be
            # counted and rejected as stale, not vanish unread.  Only
            # dead leases are settled here — an aborting campaign (fault
            # fast-path) may still hold active ones, and those must not
            # land after the loop has stopped recording results.
            def _drain_late(line: Optional[str]) -> None:
                if line is None:
                    return
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    return
                lease_id = message.get("lease", "")
                if (message.get("type") == "result"
                        and table.get(lease_id) is None):
                    table.settle(lease_id, ok=False, now=time.monotonic())

            while time.monotonic() < deadline:
                if all(w.proc.poll() is not None for w in fleet.values()):
                    break
                try:
                    _, line = inbox.get(timeout=_DISPATCH_TICK)
                except Empty:
                    continue
                _drain_late(line)
            for worker in fleet.values():
                if worker.proc.returncode is not None:
                    continue
                remaining = max(deadline - time.monotonic(), 0.1)
                try:
                    worker.proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    worker.kill()
                    worker.proc.wait()
            # Final sweep: the reader threads may enqueue a worker's last
            # lines (EOF flush) just after its process exits.
            while True:
                try:
                    _, line = inbox.get(timeout=_DISPATCH_TICK)
                except Empty:
                    break
                _drain_late(line)

        try:
            while queue or table.active_count():
                _ensure_fleet()
                now = time.monotonic()
                _assign(now)
                try:
                    wid, line = inbox.get(timeout=_DISPATCH_TICK)
                except Empty:
                    pass
                else:
                    _handle_line(wid, line)
                    while True:
                        try:
                            wid, line = inbox.get_nowait()
                        except Empty:
                            break
                        _handle_line(wid, line)
                _sweep(time.monotonic())
        finally:
            _shutdown_fleet()
        return assemble_outcome(tasks, results, failures)


def make_pool(
    dispatch: bool = False,
    jobs: Optional[int] = None,
    workers: int = 2,
    launcher: Optional[str] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
) -> Pool:
    """Build the campaign pool the CLI flags describe."""
    if dispatch:
        return DispatchPool(
            workers=workers, launcher=launcher, lease_timeout=lease_timeout
        )
    return LocalPool(jobs=jobs)
