"""Per-benchmark experiment pipeline.

For one benchmark and one machine configuration the runner:

1. generates the workload and unrolls its trace;
2. collects the profiles and builds each method's sampling plan
   (SimPoint, EarlySP, COASTS, multi-level);
3. runs the full-trace detailed baseline (the paper's "original
   sim-outorder" run);
4. detail-simulates every plan's simulation points (shared across plans
   that pick identical points) and reconstructs the weighted estimates;
5. packages metrics, deviations and cost accounting into a serialisable
   :class:`BenchmarkRun`, cached on disk.

Plans depend only on the benchmark (profiling is architecture-independent),
so they are memoised in-process and reused across configurations.
"""

from __future__ import annotations

import copy
import logging
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import (
    CONFIG_A,
    CONFIG_B,
    DEFAULT_COST_MODEL,
    DEFAULT_SAMPLING,
    CostModel,
    MachineConfig,
    SamplingConfig,
)
from ..detailed.results import Deviation, Metrics, SimulationResult
from ..detailed.timing import TimingSimulator
from ..engine.trace import Trace, build_trace
from ..errors import HarnessError
from ..obs import ObsContext
from ..obs.diag import DIAG_METRICS, MethodDiag, record_diag_metrics
from ..samplers import PlanContext, get_sampler, registered_methods
from ..sampling.estimate import (
    evaluate_plan,
    plan_ranges,
    simulate_point_set,
    simulate_tagged_ranges,
)
from ..sampling.points import SamplingPlan
from ..workloads.registry import benchmark_names, load_trace
from .cache import ResultCache
from .faults import corrupt_cache_entry
from .recovery import (
    DEFAULT_POLICY,
    FaultPolicy,
    RunFailure,
    SuiteJournal,
    SuiteOutcome,
    run_tasks_serial,
)
from .timing import RunTiming, SuiteTiming

logger = logging.getLogger(__name__)

#: Methods registered at import time, in reporting order — a convenience
#: snapshot of :func:`repro.samplers.registered_methods` (the registry is
#: the source of truth; samplers registered later appear there, not here).
ALL_METHODS: Tuple[str, ...] = registered_methods()


@dataclass(frozen=True)
class PlanStats:
    """Cost-relevant facts of one sampling plan (Table III's columns)."""

    method: str
    n_points: int
    n_leaves: int
    n_clusters: int
    detail_instructions: int
    functional_instructions: int
    mean_interval_size: float
    last_point_position: float

    @staticmethod
    def from_plan(plan: SamplingPlan) -> "PlanStats":
        """Extract the stats of *plan*."""
        return PlanStats(
            method=plan.method,
            n_points=plan.n_points,
            n_leaves=plan.n_leaves,
            n_clusters=plan.n_clusters,
            detail_instructions=plan.detail_instructions,
            functional_instructions=plan.functional_instructions,
            mean_interval_size=plan.mean_interval_size,
            last_point_position=plan.last_point_position,
        )


@dataclass(frozen=True)
class MethodResult:
    """One sampling method's outcome on one benchmark and config."""

    stats: PlanStats
    estimate: Metrics
    deviation: Deviation


@dataclass(frozen=True)
class BenchmarkRun:
    """Everything measured for one (benchmark, machine config) pair."""

    benchmark: str
    config_name: str
    total_instructions: int
    baseline: Metrics
    methods: Dict[str, MethodResult]
    #: Per-method accuracy diagnostics (per-phase error attribution and
    #: clustering-quality telemetry); empty when the runner was built
    #: with ``diagnostics=False``.
    diagnostics: Dict[str, MethodDiag] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def simulation_time(
        self,
        method: str,
        model: CostModel = DEFAULT_COST_MODEL,
        include_profiling: bool = False,
    ) -> float:
        """Modelled simulation time of *method* on this benchmark."""
        stats = self._stats(method)
        time = (
            stats.detail_instructions * model.detail_cost
            + stats.functional_instructions * model.functional_cost
        )
        if include_profiling:
            time += self.total_instructions * model.profile_cost
        return time

    def speedup(
        self,
        method: str,
        over: str = "simpoint",
        model: CostModel = DEFAULT_COST_MODEL,
        include_profiling: bool = False,
    ) -> float:
        """Speedup of *method* over the *over* method (paper's Figs 3/4)."""
        return self.simulation_time(over, model, include_profiling) / \
            self.simulation_time(method, model, include_profiling)

    def speedup_over_full(
        self,
        method: str,
        model: CostModel = DEFAULT_COST_MODEL,
        include_profiling: bool = False,
    ) -> float:
        """Speedup of *method* over full-trace detailed simulation.

        The leaderboard's speedup axis: every method is compared against
        the same denominator (``total_instructions * detail_cost``), so
        rankings do not depend on which other methods ran.
        """
        self._stats(method)  # raise early on an absent method
        full = self.total_instructions * model.detail_cost
        return full / self.simulation_time(method, model, include_profiling)

    def _stats(self, method: str) -> PlanStats:
        if method not in self.methods:
            raise HarnessError(
                f"method {method!r} absent from run (have "
                f"{', '.join(self.methods)})"
            )
        return self.methods[method].stats

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "total_instructions": self.total_instructions,
            "baseline": asdict(self.baseline),
            "methods": {
                name: {
                    "stats": asdict(result.stats),
                    "estimate": asdict(result.estimate),
                    "deviation": asdict(result.deviation),
                }
                for name, result in self.methods.items()
            },
            "diagnostics": {
                name: diag.to_dict()
                for name, diag in self.diagnostics.items()
            },
        }

    @staticmethod
    def from_dict(payload: dict) -> "BenchmarkRun":
        """Rebuild from :meth:`to_dict` output."""
        return BenchmarkRun(
            benchmark=payload["benchmark"],
            config_name=payload["config_name"],
            total_instructions=payload["total_instructions"],
            baseline=Metrics(**payload["baseline"]),
            methods={
                name: MethodResult(
                    stats=PlanStats(**data["stats"]),
                    estimate=Metrics(**data["estimate"]),
                    deviation=Deviation(**data["deviation"]),
                )
                for name, data in payload["methods"].items()
            },
            diagnostics={
                name: MethodDiag.from_dict(data)
                for name, data in payload.get("diagnostics", {}).items()
            },
        )


class ExperimentRunner:
    """Drive the full pipeline with caching and in-process memoisation."""

    def __init__(
        self,
        sampling: SamplingConfig = DEFAULT_SAMPLING,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        cache: Optional[ResultCache] = None,
        workload_scale: float = 1.0,
        methods: Optional[Iterable[str]] = None,
        jobs: int = 1,
        policy: Optional[FaultPolicy] = None,
        diagnostics: bool = True,
    ) -> None:
        self.sampling = sampling
        self.cost_model = cost_model
        self.cache = cache if cache is not None else ResultCache()
        self.workload_scale = workload_scale
        #: Methods this runner evaluates; defaults to every sampler
        #: registered (at construction time) with repro.samplers.
        registered = registered_methods()
        self.methods = tuple(methods) if methods is not None else registered
        #: Whether to run the accuracy-diagnostics stage (per-phase error
        #: attribution; costs roughly one extra detailed pass per run).
        self.diagnostics = diagnostics
        unknown = set(self.methods) - set(registered)
        if unknown:
            raise HarnessError(
                f"unknown methods: {sorted(unknown)} "
                f"(registered: {', '.join(registered)})"
            )
        if jobs < 0:
            raise HarnessError(f"jobs must be >= 0, got {jobs}")
        #: Default worker count for :meth:`run_suite` (overridable per
        #: call; 0 means one worker per CPU).
        self.jobs = jobs
        #: Default execution backend for :meth:`run_suite`: ``None``
        #: keeps the jobs-based serial/process-pool selection; a
        #: :class:`~repro.harness.dispatch.Pool` (e.g. the CLI's
        #: ``--dispatch`` backend) takes over task execution wholesale.
        self.pool = None
        #: Default fault policy for :meth:`run_suite` (retries, per-run
        #: timeout, fail_fast; overridable per call).
        self.policy = policy if policy is not None else DEFAULT_POLICY
        #: Default resume behaviour for :meth:`run_suite`.
        self.resume = False
        #: Final (post-retry) failures accumulated across every
        #: :meth:`run_suite` call on this runner — the CLI and experiment
        #: drivers read this for exit codes and failure reports.
        self.failures: List["RunFailure"] = []
        #: This runner's observability context: every span (suite, run,
        #: stage) and metric (cache traffic, retries, simulator work)
        #: lands here; workers ship theirs back for merging.
        self.obs = ObsContext()
        self.cache.bind_metrics(self.obs.metrics)
        #: Live telemetry plane (:class:`~repro.obs.stream.TelemetryPlane`)
        #: attached by the CLI's ``--serve``/``--events-out``; ``None``
        #: keeps every telemetry hook a no-op.  Strictly out-of-band:
        #: results are identical with or without a plane.
        self.telemetry = None
        #: Per-stage wall-clock records of every pipeline run (a
        #: compatibility view over the obs span trees).
        self.timing = SuiteTiming(obs=self.obs)
        self._traces: Dict[str, Trace] = {}
        self._plans: Dict[str, Dict[str, SamplingPlan]] = {}
        #: Per-benchmark clustering diagnostics captured while the plans
        #: were built (memoised alongside ``_plans``; the per-config copy
        #: each run completes lives on its :class:`BenchmarkRun`).
        self._plan_diags: Dict[str, Dict[str, MethodDiag]] = {}
        #: Per-benchmark :class:`~repro.samplers.PlanContext` memos, so
        #: incrementally requested methods share the profiles already
        #: collected for earlier ones.
        self._contexts: Dict[str, PlanContext] = {}

    # ------------------------------------------------------------------
    def trace(self, benchmark: str) -> Trace:
        """The (memoised) trace of *benchmark*.

        Suite and family benchmarks unroll at the runner's workload
        scale; ``import:`` benchmarks return their validated external
        arrays at the scale they were exported at (see
        :mod:`repro.workloads.trace_import`).
        """
        if benchmark not in self._traces:
            self._traces[benchmark] = load_trace(
                benchmark, scale=self.workload_scale,
                metrics=self.obs.metrics,
            )
        return self._traces[benchmark]

    def adopt_trace(self, benchmark: str, trace: Trace) -> None:
        """Install an externally built trace (e.g. a shared-memory view)
        into the memo, so :meth:`trace` never rebuilds it."""
        self._traces[benchmark] = trace

    def plans(
        self,
        benchmark: str,
        _record: Optional[RunTiming] = None,
        methods: Optional[Iterable[str]] = None,
    ) -> Dict[str, SamplingPlan]:
        """The requested sampling plans for *benchmark* (memoised).

        *methods* defaults to the runner's; only plans not already
        memoised are built (through each method's registered
        :class:`~repro.samplers.SamplerSpec`), so incremental requests
        never re-cluster.  The returned dict is the per-benchmark memo —
        it accumulates every method ever requested for *benchmark*.

        ``_record`` lets :meth:`run_benchmark` attribute the profiling and
        plan-construction stages; external callers omit it.
        """
        requested = tuple(methods) if methods is not None else self.methods
        plans = self._plans.setdefault(benchmark, {})
        diags = self._plan_diags.setdefault(benchmark, {})
        missing = [name for name in requested if name not in plans]
        if not missing:
            return plans
        trace = self.trace(benchmark)
        context = self._contexts.get(benchmark)
        if context is None:
            context = PlanContext(
                trace, self.sampling, benchmark, obs=self.obs
            )
            self._contexts[benchmark] = context
        specs = [get_sampler(name) for name in missing]
        if (
            any("fine" in spec.requires for spec in specs)
            and not context.has_fine_profile
        ):
            with self.timing.stage(_record, "profiling"):
                context.fine_profile()
        # The coarse samplers profile internally; their time lands in
        # plan_construction (the fine BBV pass dominates profiling cost).
        with self.timing.stage(_record, "plan_construction"):
            for spec in specs:
                plan, diag = spec.build_plan(context)
                plans[spec.name] = plan
                if diag is not None:
                    diags[spec.name] = diag
        return plans

    # ------------------------------------------------------------------
    def _cache_key(self, benchmark: str, config: MachineConfig) -> str:
        from ..workloads.registry import get_spec

        # The spec repr fingerprints the workload definition, so cached
        # results are invalidated whenever the suite is re-tuned.  The
        # method set is deliberately NOT part of the key: one entry per
        # (benchmark, config) accumulates methods, so growing the
        # requested set is a partial hit (compute only the missing
        # methods), not a full recompute.
        return (
            f"run:{benchmark}:{get_spec(benchmark)!r}:{config!r}:"
            f"{self.sampling!r}:scale={self.workload_scale}"
        )

    def run_benchmark(
        self, benchmark: str, config: MachineConfig = CONFIG_A
    ) -> BenchmarkRun:
        """Full pipeline for one benchmark and config (disk-cached).

        The cache entry is keyed per (benchmark, config) and accumulates
        methods: a request whose method set is covered by the entry is a
        pure hit; a request that grows the set computes *only* the
        missing methods (reusing the cached baseline — point simulation
        starts from fresh machine state, so skipping the baseline pass
        cannot perturb it) and re-publishes the merged entry.  A method's
        numbers are always those of the set it was first computed with.
        """
        with self.timing.run(benchmark, config.name) as record:
            key = self._cache_key(benchmark, config)
            payload = self.cache.get(key)
            cached = BenchmarkRun.from_dict(payload) if payload else None
            if cached is not None:
                compute = [
                    name for name in self.methods
                    if name not in cached.methods
                ]
                if not compute:
                    record.cache_hit = True
                    logger.debug(
                        "[%s] %s: cache hit", config.name, benchmark
                    )
                    if self.telemetry is not None:
                        self.telemetry.events.emit(
                            "cache_hit", benchmark=benchmark,
                            config=config.name,
                        )
                    run = self._select_methods(cached)
                    # Gauges, not counters, so re-recording on every hit
                    # is idempotent and a cached run still surfaces its
                    # diagnostics in --metrics-out / `obs diag`.
                    record_diag_metrics(self.obs.metrics, run.diagnostics)
                    return run
                logger.debug(
                    "[%s] %s: partial cache hit (computing %s)",
                    config.name, benchmark, ", ".join(compute),
                )
            else:
                compute = list(self.methods)
            if self.telemetry is not None:
                self.telemetry.events.emit(
                    "cache_miss", benchmark=benchmark, config=config.name,
                    methods=len(compute),
                )

            with self.timing.stage(record, "trace_build"):
                trace = self.trace(benchmark)
            plans = self.plans(benchmark, record, methods=compute)
            if cached is None:
                with self.timing.stage(record, "baseline"):
                    simulator = TimingSimulator(
                        trace, config, metrics=self.obs.metrics
                    )
                    baseline = simulator.simulate_full().metrics()
            else:
                simulator = TimingSimulator(
                    trace, config, metrics=self.obs.metrics
                )
                baseline = cached.baseline

            with self.timing.stage(record, "point_simulation"):
                if self.sampling.full_warming:
                    union = sorted(
                        {r for name in compute
                         for r in plan_ranges(plans[name])}
                    )
                    leaf_cache: Dict[Tuple[int, int], SimulationResult] = \
                        simulate_point_set(simulator, union)
                else:
                    leaf_cache = {}
                methods: Dict[str, MethodResult] = {}
                for name in compute:
                    plan = plans[name]
                    evaluation = evaluate_plan(
                        plan, simulator, baseline, config=self.sampling,
                        cache=leaf_cache,
                    )
                    methods[name] = MethodResult(
                        stats=PlanStats.from_plan(plan),
                        estimate=evaluation.estimate,
                        deviation=evaluation.deviation,
                    )

            diags: Dict[str, MethodDiag] = {}
            if self.diagnostics:
                with self.timing.stage(record, "diagnostics"):
                    diags = self._diagnose(
                        benchmark, plans, leaf_cache, baseline, methods,
                        simulator,
                    )

            merged_methods = dict(cached.methods) if cached else {}
            merged_methods.update(methods)
            merged_diags = dict(cached.diagnostics) if cached else {}
            merged_diags.update(diags)
            merged = BenchmarkRun(
                benchmark=benchmark,
                config_name=config.name,
                total_instructions=trace.total_instructions,
                baseline=baseline,
                methods=merged_methods,
                diagnostics=merged_diags,
            )
            self.cache.put(key, merged.to_dict())
            run = self._select_methods(merged)
            record_diag_metrics(self.obs.metrics, run.diagnostics)
            # Fault-injection hook: tests corrupt the just-published entry
            # to prove torn cache files are quarantined, not trusted
            # (no-op unless $REPRO_FAULTS configures a `corrupt` fault).
            corrupt_cache_entry(self.cache, key, benchmark)
            return run

    def _select_methods(self, run: BenchmarkRun) -> BenchmarkRun:
        """*run* restricted and re-ordered to this runner's method set."""
        if tuple(run.methods) == self.methods:
            return run
        return BenchmarkRun(
            benchmark=run.benchmark,
            config_name=run.config_name,
            total_instructions=run.total_instructions,
            baseline=run.baseline,
            methods={name: run.methods[name] for name in self.methods},
            diagnostics={
                name: run.diagnostics[name]
                for name in self.methods if name in run.diagnostics
            },
        )

    def _diagnose(
        self,
        benchmark: str,
        plans: Dict[str, SamplingPlan],
        leaf_cache: Dict[Tuple[int, int], SimulationResult],
        baseline: Metrics,
        methods: Dict[str, MethodResult],
        simulator: TimingSimulator,
    ) -> Dict[str, MethodDiag]:
        """Per-phase error attribution for every method of one run.

        True per-phase metric means come from one shared
        :func:`simulate_tagged_ranges` pass (a tag per (method, phase));
        the representative terms reuse the point results already in
        ``leaf_cache``.  The attribution decomposes each method's signed
        deviation into per-phase contributions plus an exact residual.
        """
        base = self._plan_diags.get(benchmark, {})
        diags: Dict[str, MethodDiag] = {}
        tagged: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
        for name in methods:
            source = base.get(name)
            if source is None:
                continue
            # The memoised diag is per-benchmark; each (benchmark, config)
            # run attributes its own copy, so deep-copy before mutating.
            diag = copy.deepcopy(source)
            diags[name] = diag
            for phase, bounds in diag.members.items():
                tagged[(name, phase)] = bounds
        if not diags:
            return diags

        truths = simulate_tagged_ranges(simulator, tagged)
        for name, diag in diags.items():
            plan = plans[name]
            weight_total = sum(
                leaf.weight for leaf in plan.leaves() if leaf.weight > 0
            )
            rep_terms: Dict[int, Dict[str, float]] = {}
            for point in plan.points:
                term = rep_terms.setdefault(
                    point.phase, {m: 0.0 for m in DIAG_METRICS}
                )
                for leaf in point.leaves():
                    if leaf.weight <= 0:
                        continue
                    m = leaf_cache[(leaf.start, leaf.end)].metrics()
                    term["cpi"] += leaf.weight * m.cpi
                    term["l1"] += leaf.weight * m.l1_hit_rate
                    term["l2"] += leaf.weight * m.l2_hit_rate
            phase_values: Dict[int, Dict[str, float]] = {}
            for phase in diag.members:
                result = truths.get((name, phase))
                if result is None or result.instructions <= 0:
                    continue
                phase_values[phase] = {
                    "cpi": result.cpi,
                    "l1": result.l1_hit_rate,
                    "l2": result.l2_hit_rate,
                }
            est = methods[name].estimate
            diag.attribute(
                baseline={
                    "cpi": baseline.cpi,
                    "l1": baseline.l1_hit_rate,
                    "l2": baseline.l2_hit_rate,
                },
                estimate={
                    "cpi": est.cpi,
                    "l1": est.l1_hit_rate,
                    "l2": est.l2_hit_rate,
                },
                rep_terms=rep_terms,
                phase_values=phase_values,
                weight_total=weight_total,
            )
            # Member bounds are trace-sized working state, not a result;
            # drop them so the run (and its cache entry) stays small.
            diag.members.clear()
        return diags

    def run_suite(
        self,
        config: MachineConfig = CONFIG_A,
        names: Optional[Iterable[str]] = None,
        quick: bool = False,
        progress: bool = False,
        jobs: Optional[int] = None,
        policy: Optional[FaultPolicy] = None,
        resume: Optional[bool] = None,
        journal: object = None,
        pool: object = None,
    ) -> SuiteOutcome:
        """Run every benchmark (or *names*) under *config*.

        *names* is a list of benchmark names, or a single string treated
        as a set expression (``'phase-heavy + fam:irregular[0:4]'``)
        resolved through :func:`repro.workloads.sets.resolve`.

        With ``jobs > 1`` the per-benchmark pipelines fan out over worker
        processes (see :mod:`repro.harness.parallel`); results are
        identical to the serial path and arrive in suite order.  ``jobs``
        defaults to the runner's construction-time value; ``jobs=0`` means
        one worker per CPU.  *progress* logs per-benchmark lines at INFO
        level (see the CLI's ``-v``).

        *pool* (default: the runner's :attr:`pool`) swaps the execution
        backend wholesale: any :class:`~repro.harness.dispatch.Pool`,
        e.g. the lease-based subprocess dispatcher behind the CLI's
        ``--dispatch``.  Results remain byte-identical across serial,
        pooled and dispatched execution.

        Execution is fault-tolerant: a failing run is retried per
        *policy* (default: the runner's) and, if it keeps failing,
        recorded as a :class:`RunFailure` on the returned
        :class:`SuiteOutcome` instead of aborting the suite (iterate the
        outcome for the completed runs; ``policy.fail_fast`` restores
        abort semantics).  Progress is checkpointed to a JSONL *journal*
        next to the result cache (pass ``journal=False`` to disable, or
        a path to relocate it); with ``resume=True`` runs already
        journaled by an identical earlier invocation are skipped and
        only failed or missing ones execute.
        """
        if names is None:
            chosen = benchmark_names(quick=quick)
        elif isinstance(names, str):
            # A set expression ('phase-heavy + fam:irregular[0:4]'), see
            # repro.workloads.sets for the grammar.
            from ..workloads.sets import resolve

            chosen = list(resolve(names))
        else:
            chosen = list(names)
        jobs = self.jobs if jobs is None else jobs
        pool = self.pool if pool is None else pool
        policy = policy if policy is not None else self.policy
        resume = self.resume if resume is None else resume
        tasks = [(name, config) for name in chosen]

        suite_journal = self._resolve_journal(journal, config, chosen)
        preloaded: Dict[int, BenchmarkRun] = {}
        if suite_journal is not None:
            if resume:
                suite_journal.load()
                completed = suite_journal.completed()
                suite_journal.drop_failures()
                for index, (name, _) in enumerate(tasks):
                    payload = completed.get((name, config.name))
                    if payload is not None:
                        preloaded[index] = BenchmarkRun.from_dict(payload)
                if preloaded:
                    logger.info(
                        "resume: %d of %d runs restored from %s",
                        len(preloaded), len(tasks), suite_journal.path,
                    )
            else:
                suite_journal.reset()

        remaining = [
            task for index, task in enumerate(tasks) if index not in preloaded
        ]

        plane = self.telemetry

        def _journal_run(_: int, run: BenchmarkRun) -> None:
            if suite_journal is not None:
                suite_journal.record_run(
                    run.benchmark, run.config_name, run.to_dict()
                )
            if plane is not None:
                plane.progress.run_done(run.benchmark)
                plane.events.emit(
                    "run_done", benchmark=run.benchmark,
                    config=run.config_name,
                )

        def _journal_failure(_: int, failure) -> None:
            if suite_journal is not None:
                suite_journal.record_failure(failure)
            if plane is not None:
                plane.progress.run_failed(failure.benchmark)
                plane.events.emit(
                    "run_failed", benchmark=failure.benchmark,
                    config=failure.config_name, error=failure.error_type,
                )

        if plane is not None:
            plane.progress.begin_suite(
                len(tasks), resumed=len(preloaded)
            )
            plane.events.emit(
                "suite_begin", config=config.name, runs=len(tasks),
                resumed=len(preloaded), jobs=jobs,
                backend=(pool.describe() if pool is not None else
                         ("serial" if jobs == 1 else "pool")),
            )
        began = time.perf_counter()
        try:
            # The suite span is the parent of every run span below it —
            # serial runs nest directly; worker span trees are grafted
            # under it as their payloads merge.
            with self.obs.tracer.span(
                "suite",
                config=config.name,
                jobs=jobs,
                benchmarks=len(remaining),
                resumed=len(preloaded),
            ):
                if remaining and pool is not None:
                    executed = pool.run_tasks(
                        self, remaining, policy=policy, progress=progress,
                        on_run=_journal_run, on_failure=_journal_failure,
                    )
                elif remaining and jobs != 1 and len(remaining) > 1:
                    from .parallel import resolve_jobs, run_tasks_parallel

                    executed = run_tasks_parallel(
                        self, remaining, jobs=resolve_jobs(jobs),
                        progress=progress, policy=policy,
                        on_run=_journal_run, on_failure=_journal_failure,
                    )
                elif remaining:
                    executed = run_tasks_serial(
                        self, remaining, policy=policy, progress=progress,
                        on_run=_journal_run, on_failure=_journal_failure,
                    )
                else:
                    executed = SuiteOutcome(())
        finally:
            self.timing.wall_seconds += time.perf_counter() - began
            if plane is not None:
                plane.progress.end_suite()
                plane.events.emit("suite_end", config=config.name)

        # Reassemble in suite order: journal-restored runs plus whatever
        # just executed (tasks are unique (benchmark, config) pairs).
        runs_by_name = {run.benchmark: run for run in executed.runs}
        failures_by_name = {f.benchmark: f for f in executed.failures}
        runs: List[BenchmarkRun] = []
        failures = []
        for index, (name, _) in enumerate(tasks):
            if index in preloaded:
                runs.append(preloaded[index])
            elif name in runs_by_name:
                runs.append(runs_by_name[name])
            elif name in failures_by_name:
                failures.append(failures_by_name[name])
        self.failures.extend(failures)
        return SuiteOutcome(runs, failures)

    def _resolve_journal(
        self, journal: object, config: MachineConfig, names: List[str]
    ) -> Optional[SuiteJournal]:
        """Interpret ``run_suite``'s *journal* argument.

        ``None`` means the default: a journal next to the cache whenever
        caching is enabled (there is no sensible location otherwise).
        ``False`` disables journaling; a path relocates the file.
        """
        if journal is False:
            return None
        if journal is None:
            if not self.cache.enabled:
                return None
            return SuiteJournal.for_suite(
                self.cache.directory, self, config, names
            )
        if isinstance(journal, SuiteJournal):
            return journal
        from .recovery import suite_fingerprint

        return SuiteJournal(
            Path(journal), suite_fingerprint(self, config, names),
            metrics=self.obs.metrics,
        )


#: The two Table I configurations, in reporting order.
BOTH_CONFIGS: Tuple[MachineConfig, ...] = (CONFIG_A, CONFIG_B)
