"""Subprocess worker for the distributed campaign dispatcher.

``python -m repro.harness.worker`` turns a process — local, or remote
behind any launcher that can pipe stdio (SSH, ``prun``, a cluster
spawner) — into a campaign worker.  The worker speaks a versioned
JSONL protocol over stdin/stdout (one JSON object per line):

* worker → dispatcher: ``hello`` (once, at startup), ``heartbeat``
  (periodically while a task executes), ``result`` (one per task,
  carrying the serialised run or error plus the worker's observability
  shipment).
* dispatcher → worker: ``task`` (a run spec under a lease), ``shutdown``.

Every message carries the protocol version (:data:`PROTOCOL_VERSION`);
a mismatch is fatal on both sides, because silently reinterpreting a
task spec across versions could corrupt a campaign.  Task execution
reuses the process-pool worker body (:func:`repro.harness.parallel
._worker_run`), so a dispatched run is the same pure function of its
spec as a pooled or serial one — byte-identical results by
construction, and re-execution after a lost lease is idempotent through
the shared :class:`~repro.harness.cache.ResultCache`.

Dispatch-level fault injection (``$REPRO_FAULTS``, which crosses the
process boundary for free) hooks in here: ``worker_exit`` kills the
worker at task receipt, ``heartbeat_drop`` suppresses heartbeats, and
``stale_commit`` withholds the finished result (and all heartbeats)
until shutdown — by which point the lease has certainly been reclaimed,
so the late commit must be rejected.  See :mod:`repro.harness.faults`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, TextIO

from ..config import (
    BranchPredictorConfig,
    CacheConfig,
    CostModel,
    FunctionalUnits,
    MachineConfig,
    SamplingConfig,
)
from ..errors import DispatchError

#: Version of the dispatcher <-> worker JSONL protocol.  Bump on any
#: incompatible change to message shapes or task payload encoding.
PROTOCOL_VERSION = 1

#: Exit code for protocol violations (unparseable/incompatible input).
PROTOCOL_EXIT_CODE = 65  # EX_DATAERR


# ----------------------------------------------------------------------
# task payload encoding (JSON-safe config round-trips)
# ----------------------------------------------------------------------
def encode_task_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-encode a :func:`_worker_run` payload for the wire.

    The frozen config dataclasses and the cache path become plain JSON
    structures; everything else in the payload is JSON-native already.
    """
    encoded = dict(payload)
    encoded["sampling"] = asdict(payload["sampling"])
    encoded["cost_model"] = asdict(payload["cost_model"])
    encoded["config"] = asdict(payload["config"])
    encoded["cache_dir"] = str(payload["cache_dir"])
    encoded["methods"] = list(payload["methods"])
    return encoded


def decode_task_payload(encoded: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a :func:`_worker_run` payload from its wire form."""
    payload = dict(encoded)
    payload["sampling"] = SamplingConfig(**encoded["sampling"])
    payload["cost_model"] = CostModel(**encoded["cost_model"])
    payload["config"] = decode_machine_config(encoded["config"])
    payload["cache_dir"] = Path(encoded["cache_dir"])
    payload["methods"] = tuple(encoded["methods"])
    return payload


def decode_machine_config(data: Dict[str, Any]) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from ``dataclasses.asdict``."""
    fields = dict(data)
    fields["functional_units"] = FunctionalUnits(**data["functional_units"])
    for cache in ("icache", "dcache", "l2cache"):
        fields[cache] = CacheConfig(**data[cache])
    fields["branch"] = BranchPredictorConfig(**data["branch"])
    return MachineConfig(**fields)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Outbox:
    """Serialised, locked JSONL writes (heartbeat thread + main thread)."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> None:
        message.setdefault("v", PROTOCOL_VERSION)
        with self._lock:
            self._stream.write(json.dumps(message) + "\n")
            self._stream.flush()


def _execute_task(
    message: Dict[str, Any], outbox: _Outbox
) -> Optional[Dict[str, Any]]:
    """Run one leased task, heartbeating while it executes.

    Returns ``None`` after sending the result, or — under an injected
    ``stale_commit`` fault — the withheld result message for the caller
    to flush at shutdown.
    """
    from . import faults
    from .parallel import _worker_run

    lease = message["lease"]
    benchmark = message["benchmark"]
    attempt = int(message.get("attempt", 0))
    heartbeat_interval = float(message["heartbeat_interval"])

    if faults.dispatch_fault("worker_exit", benchmark, attempt):
        # Simulated node loss: die without a word, mid-lease, exactly as
        # an OOM-killed or powered-off machine would.
        os._exit(faults.KILL_EXIT_CODE)
    drop_heartbeats = faults.dispatch_fault(
        "heartbeat_drop", benchmark, attempt
    )
    stale_commit = faults.dispatch_fault("stale_commit", benchmark, attempt)

    payload = decode_task_payload(message["payload"])
    payload["attempt"] = attempt

    stop = threading.Event()

    # The heartbeat thread piggybacks incremental metrics snapshots:
    # once _worker_run hands us its runner (via the sink), every beat
    # carries the delta since the previous one under a monotonic
    # sequence number, so the dispatcher's LiveRegistry can fold each
    # exactly once.  A dropped/withheld heartbeat loses nothing — the
    # final result payload carries the authoritative registry.
    tap: Dict[str, Any] = {}

    def _runner_sink(runner: Any) -> None:
        from ..obs.stream import MetricsDeltaEncoder

        tap["encoder"] = MetricsDeltaEncoder(runner.obs.metrics)

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            if drop_heartbeats:
                continue
            beat: Dict[str, Any] = {"type": "heartbeat", "lease": lease}
            encoder = tap.get("encoder")
            if encoder is not None:
                delta = encoder.next_delta()
                if delta is not None:
                    beat["seq"] = delta["seq"]
                    beat["metrics"] = delta["metrics"]
            outbox.send(beat)

    beater = threading.Thread(target=_heartbeat, daemon=True)
    beater.start()
    try:
        try:
            outcome = _worker_run(payload, runner_sink=_runner_sink)
        except BaseException:
            # Non-library failure (a genuine bug): report it so the
            # dispatcher can abort the campaign with the traceback
            # instead of inferring a silent node loss.
            import traceback as traceback_module

            outbox.send({
                "type": "result",
                "lease": lease,
                "status": "fatal",
                "traceback": traceback_module.format_exc(),
            })
            raise
    finally:
        stop.set()
        beater.join()

    if outcome[0] == "ok":
        result = {
            "type": "result", "lease": lease, "status": "ok",
            "run": outcome[1], "obs": outcome[2],
        }
    else:
        result = {
            "type": "result", "lease": lease, "status": "error",
            "info": outcome[1],
        }

    if stale_commit:
        # Withhold the finished result (heartbeats already stopped): the
        # lease will expire and the task will be reclaimed and re-run
        # elsewhere.  The result is flushed at shutdown — by then the
        # lease is certainly gone — and must be rejected as stale.
        return result
    outbox.send(result)
    return None


def serve(stdin: TextIO, stdout: TextIO) -> int:
    """Worker main loop: read task messages, execute, answer.

    Returns the process exit code.  EOF on stdin — the dispatcher went
    away — is a clean shutdown, so an orphaned worker never outlives its
    dispatcher's pipes.
    """
    outbox = _Outbox(stdout)
    outbox.send({"type": "hello", "pid": os.getpid()})
    withheld: List[Dict[str, Any]] = []

    def _flush_withheld() -> None:
        for message in withheld:
            try:
                outbox.send(message)
            except OSError:  # pragma: no cover - dispatcher pipe gone
                break
        del withheld[:]

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError:
            print(f"repro-worker: unparseable message: {line[:120]!r}",
                  file=sys.stderr)
            return PROTOCOL_EXIT_CODE
        if message.get("v") != PROTOCOL_VERSION:
            print(
                f"repro-worker: protocol version mismatch "
                f"(mine {PROTOCOL_VERSION}, got {message.get('v')!r})",
                file=sys.stderr,
            )
            return PROTOCOL_EXIT_CODE
        kind = message.get("type")
        if kind == "shutdown":
            _flush_withheld()
            return 0
        if kind != "task":
            print(f"repro-worker: unexpected message type {kind!r}",
                  file=sys.stderr)
            return PROTOCOL_EXIT_CODE
        try:
            deferred = _execute_task(message, outbox)
        except DispatchError as error:
            print(f"repro-worker: {error}", file=sys.stderr)
            return PROTOCOL_EXIT_CODE
        if deferred is not None:
            withheld.append(deferred)
    _flush_withheld()
    return 0


def main() -> int:
    """``python -m repro.harness.worker`` entry point."""
    return serve(sys.stdin, sys.stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
