"""The cross-method leaderboard (``repro leaderboard``).

Runs (or reuses) one suite with *every* registered sampler and ranks the
methods by a single accuracy-times-speedup score, per benchmark and in
aggregate.  The score is::

    score = speedup_over_full / (1 + ACCURACY_PENALTY * mean_abs_dev)

with ``mean_abs_dev`` the arithmetic mean of the absolute CPI, L1 and L2
deviations and ``speedup_over_full`` the modelled speedup over full
detailed simulation (a method-independent denominator, so rankings do
not shift with the method set).  ``ACCURACY_PENALTY = 100`` prices one
percentage point of mean deviation at a factor-2 score cut — accuracy
dominates unless two methods are equally accurate, which matches how
the paper compares methods (accuracy tables first, speedup figures
second).

The aggregate row averages the per-benchmark absolute deviations
arithmetically and the speedups geometrically (the paper's own
convention for Figures 3/4), then re-scores.  Aggregate ranks feed the
cross-run history (``HistoryRecord.ranks``), so ``repro obs diff``
flags a sampler whose rank regressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import DEFAULT_COST_MODEL, CostModel
from ..errors import HarnessError
from .runner import BenchmarkRun
from .tables import format_table, geomean

#: Score denominator weight: 1 point of mean absolute deviation (0.01)
#: halves the score.
ACCURACY_PENALTY = 100.0


@dataclass(frozen=True)
class LeaderboardRow:
    """One method's scored entry in one table."""

    method: str
    cpi_dev: float
    l1_dev: float
    l2_dev: float
    mean_abs_dev: float
    speedup: float
    score: float
    rank: int

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "cpi_dev": self.cpi_dev,
            "l1_dev": self.l1_dev,
            "l2_dev": self.l2_dev,
            "mean_abs_dev": self.mean_abs_dev,
            "speedup": self.speedup,
            "score": self.score,
            "rank": self.rank,
        }


def _score(mean_abs_dev: float, speedup: float) -> float:
    return speedup / (1.0 + ACCURACY_PENALTY * mean_abs_dev)


def _ranked(entries: List[dict]) -> List[LeaderboardRow]:
    """Score, sort (best first, ties by method name) and rank *entries*."""
    scored = [
        dict(entry, score=_score(entry["mean_abs_dev"], entry["speedup"]))
        for entry in entries
    ]
    scored.sort(key=lambda e: (-e["score"], e["method"]))
    return [
        LeaderboardRow(rank=position, **entry)
        for position, entry in enumerate(scored, start=1)
    ]


@dataclass
class Leaderboard:
    """Ranked per-benchmark and aggregate method tables."""

    config_name: str
    methods: Tuple[str, ...]
    per_benchmark: Dict[str, List[LeaderboardRow]] = field(
        default_factory=dict
    )
    aggregate: List[LeaderboardRow] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def ranks(self) -> Dict[str, float]:
        """Aggregate rank per method (1 = best) — the history payload."""
        return {row.method: float(row.rank) for row in self.aggregate}

    def format(self) -> str:
        """Render the aggregate table, then one table per benchmark."""
        blocks = [self._format_rows(
            self.aggregate,
            title=f"leaderboard aggregate ({self.config_name}, "
                  f"{len(self.per_benchmark)} benchmark(s))",
        )]
        for benchmark in sorted(self.per_benchmark):
            blocks.append(self._format_rows(
                self.per_benchmark[benchmark],
                title=f"leaderboard: {benchmark}",
            ))
        return "\n\n".join(blocks)

    @staticmethod
    def _format_rows(rows: Sequence[LeaderboardRow], title: str) -> str:
        return format_table(
            ["rank", "method", "CPI dev", "L1 dev", "L2 dev", "mean dev",
             "speedup", "score"],
            [
                [row.rank, row.method,
                 f"{100 * row.cpi_dev:.2f}%",
                 f"{100 * row.l1_dev:.2f}%",
                 f"{100 * row.l2_dev:.2f}%",
                 f"{100 * row.mean_abs_dev:.2f}%",
                 f"{row.speedup:.2f}x",
                 f"{row.score:.3f}"]
                for row in rows
            ],
            title=title,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (the ``--json`` artifact)."""
        return {
            "config_name": self.config_name,
            "methods": list(self.methods),
            "accuracy_penalty": ACCURACY_PENALTY,
            "per_benchmark": {
                benchmark: [row.to_dict() for row in rows]
                for benchmark, rows in self.per_benchmark.items()
            },
            "aggregate": [row.to_dict() for row in self.aggregate],
        }


# ----------------------------------------------------------------------
def build_leaderboard(
    runs: Iterable[BenchmarkRun],
    methods: Optional[Sequence[str]] = None,
    model: CostModel = DEFAULT_COST_MODEL,
) -> Leaderboard:
    """Score and rank *methods* over the completed *runs*.

    *methods* defaults to the first run's method set.  Every run must
    carry all the ranked methods (the harness guarantees this for suite
    outcomes — partial failures drop whole benchmarks, never methods).
    """
    runs = list(runs)
    if not runs:
        raise HarnessError("leaderboard needs at least one completed run")
    chosen = tuple(methods) if methods is not None else tuple(runs[0].methods)
    board = Leaderboard(
        config_name=runs[0].config_name, methods=chosen
    )

    per_method: Dict[str, List[dict]] = {name: [] for name in chosen}
    for run in runs:
        entries = []
        for name in chosen:
            if name not in run.methods:
                raise HarnessError(
                    f"run {run.benchmark} lacks method {name!r} "
                    f"(have {', '.join(run.methods)})"
                )
            deviation = run.methods[name].deviation
            cell = {
                "method": name,
                "cpi_dev": deviation.cpi,
                "l1_dev": deviation.l1_hit_rate,
                "l2_dev": deviation.l2_hit_rate,
                "mean_abs_dev": (
                    abs(deviation.cpi) + abs(deviation.l1_hit_rate)
                    + abs(deviation.l2_hit_rate)
                ) / 3.0,
                "speedup": run.speedup_over_full(name, model),
            }
            entries.append(cell)
            per_method[name].append(cell)
        board.per_benchmark[run.benchmark] = _ranked(entries)

    aggregate_entries = []
    for name in chosen:
        cells = per_method[name]
        count = len(cells)
        aggregate_entries.append({
            "method": name,
            "cpi_dev": sum(c["cpi_dev"] for c in cells) / count,
            "l1_dev": sum(c["l1_dev"] for c in cells) / count,
            "l2_dev": sum(c["l2_dev"] for c in cells) / count,
            "mean_abs_dev": sum(c["mean_abs_dev"] for c in cells) / count,
            "speedup": geomean([c["speedup"] for c in cells]),
        })
    board.aggregate = _ranked(aggregate_entries)
    return board
