"""Process-parallel execution of per-benchmark pipeline runs.

The full evaluation is embarrassingly parallel: every (benchmark, config)
pipeline is deterministic and self-contained (DESIGN.md decision 1 — the
trace is rebuilt bit-identically from the benchmark spec's seed), so runs
fan out over a :class:`~concurrent.futures.ProcessPoolExecutor` with no
shared state beyond the disk cache, which is safe under concurrent writers
(unique temp names + atomic rename, see :mod:`repro.harness.cache`).

Nothing non-picklable crosses the process boundary: workers receive the
frozen config dataclasses plus the cache directory, rebuild traces
locally, and return ``BenchmarkRun.to_dict()`` payloads together with
their serialised timing records.  The parent rebuilds the runs, merges the
timing reports, and returns results in task order — byte-identical to the
serial path.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..config import MachineConfig
from ..errors import HarnessError
from .cache import ResultCache
from .timing import SuiteTiming

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import BenchmarkRun, ExperimentRunner

logger = logging.getLogger(__name__)

#: One suite task: a benchmark name under a machine configuration.
Task = Tuple[str, MachineConfig]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job count: ``None``/``0`` means one worker per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise HarnessError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _worker_run(payload: dict) -> Tuple[dict, dict]:
    """Execute one pipeline run inside a worker process.

    Rebuilds a local :class:`ExperimentRunner` (workers share only the
    on-disk cache), runs the benchmark, and returns serialised results —
    the ``BenchmarkRun`` payload and the worker's timing records.
    """
    from .runner import ExperimentRunner

    runner = ExperimentRunner(
        sampling=payload["sampling"],
        cost_model=payload["cost_model"],
        cache=ResultCache(
            directory=payload["cache_dir"], enabled=payload["cache_enabled"]
        ),
        workload_scale=payload["workload_scale"],
        methods=payload["methods"],
    )
    run = runner.run_benchmark(payload["benchmark"], payload["config"])
    return run.to_dict(), runner.timing.to_dict()


def run_tasks_parallel(
    runner: "ExperimentRunner",
    tasks: Sequence[Task],
    jobs: Optional[int] = None,
    progress: bool = False,
) -> List["BenchmarkRun"]:
    """Run *tasks* with *runner*'s configuration across worker processes.

    Results come back in task order.  Worker timing records are merged
    into ``runner.timing``, so the suite report covers every stage of
    every worker.  With one effective worker (or one task) this falls back
    to the serial path — same results, no process overhead.
    """
    from .runner import BenchmarkRun

    jobs = resolve_jobs(jobs)
    runner.timing.jobs = max(runner.timing.jobs, jobs)
    if jobs <= 1 or len(tasks) <= 1:
        runs = []
        for benchmark, config in tasks:
            if progress:
                logger.info("[%s] %s ...", config.name, benchmark)
            runs.append(runner.run_benchmark(benchmark, config))
        return runs

    payloads = [
        {
            "benchmark": benchmark,
            "config": config,
            "sampling": runner.sampling,
            "cost_model": runner.cost_model,
            "workload_scale": runner.workload_scale,
            "methods": runner.methods,
            "cache_dir": Path(runner.cache.directory),
            "cache_enabled": runner.cache.enabled,
        }
        for benchmark, config in tasks
    ]
    results: List[Optional[BenchmarkRun]] = [None] * len(tasks)
    workers = min(jobs, len(tasks))
    logger.info("fanning %d runs out over %d workers", len(tasks), workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {
            pool.submit(_worker_run, payload): index
            for index, payload in enumerate(payloads)
        }
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = pending.pop(future)
                benchmark, config = tasks[index]
                try:
                    run_payload, timing_payload = future.result()
                except Exception as error:
                    raise HarnessError(
                        f"worker failed on {benchmark} ({config.name}): "
                        f"{error}"
                    ) from error
                results[index] = BenchmarkRun.from_dict(run_payload)
                runner.timing.merge(SuiteTiming.from_dict(timing_payload))
                if progress:
                    logger.info("[%s] %s done", config.name, benchmark)
    return [run for run in results if run is not None]
