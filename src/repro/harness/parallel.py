"""Process-parallel execution of per-benchmark pipeline runs.

The full evaluation is embarrassingly parallel: every (benchmark, config)
pipeline is deterministic and self-contained (DESIGN.md decision 1 — the
trace is rebuilt bit-identically from the benchmark spec's seed), so runs
fan out over a :class:`~concurrent.futures.ProcessPoolExecutor` with no
shared state beyond the disk cache, which is safe under concurrent writers
(unique temp names + atomic rename, see :mod:`repro.harness.cache`).

Nothing non-picklable crosses the process boundary: workers receive the
frozen config dataclasses plus the cache directory, rebuild traces
locally, and return ``BenchmarkRun.to_dict()`` payloads together with
their serialised timing records.  The parent rebuilds the runs, merges the
timing reports, and returns results in task order — byte-identical to the
serial path.

Execution is fault-tolerant (see :mod:`repro.harness.recovery`): a run
that raises inside a worker is reported as a structured error (with its
failing stage and traceback) rather than aborting the suite; the parent
retries it up to the :class:`FaultPolicy`'s budget with deterministic
backoff, and records a :class:`RunFailure` when the budget is exhausted.
A worker that *dies* (OOM kill, segfault — surfacing as
``BrokenProcessPool``) breaks the whole pool; the parent respawns the
pool and requeues only the unfinished tasks, charging the crash against
each requeued task's attempt budget.  A run exceeding the policy's
per-run timeout cannot be cancelled in place (process pools cannot
interrupt a running call), so the parent terminates the workers,
respawns the pool, charges the timed-out run an attempt, and requeues
the innocent in-flight tasks at their current attempt count.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Set, Tuple

from ..config import MachineConfig
from ..engine.shm import share_trace, shm_enabled
from ..errors import HarnessError, ReproError
from ..obs import (
    POOL_RESPAWNS,
    RETRY_BACKOFF_SECONDS,
    RUN_FAILURES,
    RUN_RETRIES,
    RUN_TIMEOUTS,
    RUNS_COMPLETED,
    WORKER_CRASHES,
)
from .cache import ResultCache
from .recovery import (
    DEFAULT_POLICY,
    FaultPolicy,
    RunFailure,
    SuiteOutcome,
    assemble_outcome,
    run_tasks_serial,
)
from .timing import SuiteTiming

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import BenchmarkRun, ExperimentRunner

logger = logging.getLogger(__name__)

#: One suite task: a benchmark name under a machine configuration.
Task = Tuple[str, MachineConfig]

#: How often the parent wakes to check per-run timeouts (seconds).
_TIMEOUT_TICK = 0.05

#: How long to wait for a broken pool's doomed futures to settle.
_DRAIN_SECONDS = 30.0


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job count: ``None``/``0`` means one worker per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise HarnessError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _worker_obs(
    runner: "ExperimentRunner", worker: Optional[str] = None
) -> dict:
    """A worker's observability shipment: timing view + spans + metrics.

    Each shipped root span is stamped with the executing host/pid (and
    the dispatch worker id, when there is one) so the stitched campaign
    trace records *where* every attempt ran.
    """
    attributes = {"host": socket.gethostname(), "pid": os.getpid()}
    if worker is not None:
        attributes["worker"] = worker
    for root in runner.obs.tracer.roots:
        root.set(**attributes)
    return {
        "timing": runner.timing.to_dict(),
        "spans": runner.obs.tracer.to_payload(),
        "metrics": runner.obs.metrics.to_dict(),
    }


def _adopt_shared_trace(runner: "ExperimentRunner", payload: dict) -> None:
    """Attach the task's shared-memory trace into the worker's memo.

    Zero-copy: the runner's trace becomes a read-only view over the
    parent's pages.  Any attach failure degrades (counted) to the
    pre-shm behaviour — the worker rebuilds the trace locally, which is
    bit-identical by construction, so results never depend on whether
    the attach succeeded.
    """
    from ..engine.shm import attach_or_none
    from ..workloads.registry import load_workload

    handle = (payload.get("trace_shm") or {}).get(payload["benchmark"])
    if handle is None:
        return
    workload = load_workload(
        payload["benchmark"], scale=payload["workload_scale"]
    )
    trace = attach_or_none(workload, handle, metrics=runner.obs.metrics)
    if trace is not None:
        runner.adopt_trace(payload["benchmark"], trace)


def _start_streaming(
    runner: "ExperimentRunner", telemetry: dict
) -> Tuple[threading.Event, threading.Thread]:
    """Push sequence-numbered metrics deltas onto the pool's progress
    queue while the run executes (the local-pool face of the dispatch
    heartbeat piggyback)."""
    from ..obs.stream import DEFAULT_STREAM_INTERVAL, MetricsDeltaEncoder

    encoder = MetricsDeltaEncoder(runner.obs.metrics)
    interval = float(telemetry.get("interval", DEFAULT_STREAM_INTERVAL))
    stream_id = telemetry["stream"]
    queue = telemetry["queue"]
    stop = threading.Event()

    def _stream() -> None:
        while not stop.wait(interval):
            delta = encoder.next_delta()
            if delta is None:
                continue
            try:
                queue.put({"stream": stream_id, **delta})
            except Exception:  # manager gone — the run outlives telemetry
                return

    thread = threading.Thread(
        target=_stream, name="repro-stream", daemon=True
    )
    thread.start()
    return stop, thread


def _worker_run(payload: dict, runner_sink=None) -> tuple:
    """Execute one pipeline run inside a worker process.

    Rebuilds a local :class:`ExperimentRunner` (workers share only the
    on-disk cache), runs the benchmark, and returns either
    ``("ok", run_payload, obs_payload)`` or — when the pipeline raises
    a library error — ``("error", info)`` with the exception class,
    message, traceback, failing stage and the worker's observability
    records (timing view, span trees, metrics), so the parent can retry
    or record the failure without the exception tearing down the suite.
    Non-library exceptions (genuine bugs) propagate through the future
    and abort the suite, exactly as on the serial path.

    A ``trace_ctx`` in the payload joins the driver's distributed trace
    (span ids minted under the task's origin, roots pointed at the
    owning suite span).  A ``telemetry`` entry streams metrics deltas
    onto the given queue while the run executes.  *runner_sink*, when
    given, receives the freshly built runner before execution starts —
    the dispatch worker uses it to tap the registry for heartbeat
    piggybacking.
    """
    from . import faults
    from .runner import ExperimentRunner

    faults.set_attempt(payload.get("attempt", 0))
    runner = ExperimentRunner(
        sampling=payload["sampling"],
        cost_model=payload["cost_model"],
        cache=ResultCache(
            directory=payload["cache_dir"], enabled=payload["cache_enabled"]
        ),
        workload_scale=payload["workload_scale"],
        methods=payload["methods"],
        diagnostics=payload.get("diagnostics", True),
    )
    context = payload.get("trace_ctx")
    if context:
        runner.obs.tracer.adopt_context(
            trace_id=context.get("trace_id"),
            parent_id=context.get("parent_id"),
            origin=context.get("origin"),
        )
    if runner_sink is not None:
        runner_sink(runner)
    stream_stop = stream_thread = None
    telemetry = payload.get("telemetry")
    if telemetry is not None:
        stream_stop, stream_thread = _start_streaming(runner, telemetry)
    worker_label = payload.get("worker")
    _adopt_shared_trace(runner, payload)
    try:
        run = runner.run_benchmark(payload["benchmark"], payload["config"])
    except ReproError as error:
        return (
            "error",
            {
                "error_type": type(error).__name__,
                "error_message": str(error),
                "traceback": traceback_module.format_exc(),
                "stage": getattr(error, "_repro_stage", None),
                "obs": _worker_obs(runner, worker=worker_label),
            },
        )
    finally:
        faults.set_attempt(0)
        if stream_stop is not None:
            stream_stop.set()
            stream_thread.join()
    return ("ok", run.to_dict(), _worker_obs(runner, worker=worker_label))


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool whose workers may be hung.

    ``shutdown`` alone would join the workers — forever, if one is hung —
    so the worker processes are terminated first.  (``_processes`` is
    private but stable across supported CPythons; when absent we fall
    back to a plain non-waiting shutdown.)
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already dead
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - broken executor internals
        pass


def run_tasks_parallel(
    runner: "ExperimentRunner",
    tasks: Sequence[Task],
    jobs: Optional[int] = None,
    progress: bool = False,
    policy: FaultPolicy = DEFAULT_POLICY,
    on_run: Optional[Callable[[int, "BenchmarkRun"], None]] = None,
    on_failure: Optional[Callable[[int, RunFailure], None]] = None,
) -> SuiteOutcome:
    """Run *tasks* with *runner*'s configuration across worker processes.

    Completed runs come back in task order inside a
    :class:`SuiteOutcome`, with failures (after *policy*'s retry budget)
    alongside.  Worker observability records — timing, span trees and
    metrics, including those of failed attempts — are merged into
    ``runner.timing`` / ``runner.obs``.  With one effective
    worker (or one task) this falls back to the serial path: same
    results, same recovery semantics, no process overhead.
    ``on_run``/``on_failure`` fire as each task settles (the suite
    journal hooks in here).
    """
    from .runner import BenchmarkRun

    jobs = resolve_jobs(jobs)
    runner.timing.jobs = max(runner.timing.jobs, jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return run_tasks_serial(
            runner, tasks, policy=policy, progress=progress,
            on_run=on_run, on_failure=on_failure,
        )

    payload_base = {
        "sampling": runner.sampling,
        "cost_model": runner.cost_model,
        "workload_scale": runner.workload_scale,
        "methods": runner.methods,
        "cache_dir": Path(runner.cache.directory),
        "cache_enabled": runner.cache.enabled,
        "diagnostics": runner.diagnostics,
    }
    workers = min(jobs, len(tasks))
    logger.info("fanning %d runs out over %d workers", len(tasks), workers)

    results: Dict[int, "BenchmarkRun"] = {}
    failures: Dict[int, RunFailure] = {}
    attempts: Dict[int, int] = {index: 0 for index in range(len(tasks))}
    eligible: Dict[int, float] = {index: 0.0 for index in range(len(tasks))}
    queue: Set[int] = set(range(len(tasks)))
    pending: Dict[Future, int] = {}
    running_since: Dict[Future, float] = {}

    metrics = runner.obs.metrics

    # Live telemetry (out-of-band; None unless --serve/--events-out):
    # workers stream metrics deltas over a manager queue, keyed by a
    # per-submission stream id so a requeued task never collides with
    # the deltas of its abandoned predecessor.
    plane = getattr(runner, "telemetry", None)
    manager = None
    progress_queue = None
    streams: Dict[Future, str] = {}
    stream_serial = [0]
    if plane is not None:
        import multiprocessing

        manager = multiprocessing.Manager()
        progress_queue = manager.Queue()

    def _drain_streams() -> None:
        if progress_queue is None:
            return
        while True:
            try:
                item = progress_queue.get_nowait()
            except Exception:
                return
            plane.live.fold(str(item.get("stream", "")), item)

    def _settle_stream(future: Future, merge) -> None:
        """Drop the future's pending deltas and fold its committed obs
        payload, atomically w.r.t. live scrapes."""
        stream_id = streams.pop(future, None)
        if plane is not None and stream_id is not None:
            _drain_streams()
            plane.live.resolve(stream_id, merge=merge)
        else:
            merge()

    def _drop_stream(future: Future) -> None:
        stream_id = streams.pop(future, None)
        if plane is not None and stream_id is not None:
            plane.live.discard(stream_id)

    # Publish each benchmark's trace once; workers attach zero-copy.
    # The parent owns the segments and unlinks them in the finally —
    # pool respawns re-attach by name, dead workers leak nothing.
    shm_segments = []
    if shm_enabled():
        trace_handles: Dict[str, dict] = {}
        for benchmark in dict.fromkeys(b for b, _ in tasks):
            segment, handle = share_trace(
                runner.trace(benchmark), metrics=metrics
            )
            shm_segments.append(segment)
            trace_handles[benchmark] = handle
        payload_base["trace_shm"] = trace_handles

    def _merge_obs(payload: Optional[dict]) -> None:
        """Fold one worker's shipment into the parent's collectors.

        Span roots attach under the tracer's current span (the suite
        span), so the merged trace reads ``suite -> run -> stages``
        regardless of which process ran what.
        """
        if not payload:
            return
        runner.timing.merge(SuiteTiming.from_dict(payload["timing"]))
        runner.obs.merge_dict(payload)

    def _finalize_failure(index: int, failure: RunFailure) -> None:
        logger.warning("run failed: %s", failure.describe())
        metrics.counter(RUN_FAILURES).inc()
        if policy.fail_fast:
            raise HarnessError(f"fail_fast: {failure.describe()}")
        failures[index] = failure
        if on_failure is not None:
            on_failure(index, failure)

    def _attempt_failed(
        index: int,
        error_type: str,
        message: str,
        tb: str = "",
        stage: Optional[str] = None,
    ) -> None:
        """Charge one failed attempt; requeue with backoff or finalize."""
        attempts[index] += 1
        benchmark, config = tasks[index]
        if attempts[index] < policy.max_attempts:
            delay = policy.backoff_seconds(attempts[index])
            logger.info(
                "[%s] %s attempt %d failed (%s); retrying in %.2fs",
                config.name, benchmark, attempts[index], error_type, delay,
            )
            metrics.counter(RUN_RETRIES).inc()
            metrics.histogram(RETRY_BACKOFF_SECONDS).observe(delay)
            if plane is not None:
                plane.events.emit(
                    "retry", benchmark=benchmark, config=config.name,
                    attempt=attempts[index], error=error_type,
                )
            eligible[index] = time.monotonic() + delay
            queue.add(index)
        else:
            _finalize_failure(index, RunFailure(
                benchmark=benchmark,
                config_name=config.name,
                attempts=attempts[index],
                max_attempts=policy.max_attempts,
                error_type=error_type,
                error_message=message,
                traceback=tb,
                stage=stage,
            ))

    def _handle_done(future: Future) -> bool:
        """Consume one settled future; returns True if the pool broke."""
        index = pending.pop(future)
        running_since.pop(future, None)
        benchmark, config = tasks[index]
        try:
            outcome = future.result()
        except BrokenProcessPool as error:
            _drop_stream(future)
            metrics.counter(WORKER_CRASHES).inc()
            if plane is not None:
                plane.events.emit(
                    "worker_dead", benchmark=benchmark, config=config.name,
                )
            _attempt_failed(
                index, "WorkerCrash",
                f"worker process died mid-run ({error})",
            )
            return True
        except ReproError as error:
            # A library error raised outside the worker's own capture
            # (e.g. payload validation in the worker's runner setup).
            _drop_stream(future)
            _attempt_failed(
                index, type(error).__name__, str(error),
                traceback_module.format_exc(),
                getattr(error, "_repro_stage", None),
            )
            return False
        except Exception as error:
            raise HarnessError(
                f"worker failed on {benchmark} ({config.name}): {error}"
            ) from error
        if outcome[0] == "ok":
            _, run_payload, obs_payload = outcome
            _settle_stream(future, lambda: _merge_obs(obs_payload))
            metrics.counter(RUNS_COMPLETED).inc()
            results[index] = BenchmarkRun.from_dict(run_payload)
            if on_run is not None:
                on_run(index, results[index])
            if progress:
                logger.info("[%s] %s done", config.name, benchmark)
        else:
            info = outcome[1]
            _settle_stream(future, lambda: _merge_obs(info.get("obs")))
            _attempt_failed(
                index, info["error_type"], info["error_message"],
                info["traceback"], info.get("stage"),
            )
        return False

    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        while queue or pending:
            now = time.monotonic()
            # Submit every task whose backoff has elapsed.
            for index in sorted(i for i in queue if eligible[i] <= now):
                queue.discard(index)
                benchmark, config = tasks[index]
                if progress:
                    suffix = (
                        f" (attempt {attempts[index] + 1})"
                        if attempts[index] else ""
                    )
                    logger.info(
                        "[%s] %s ...%s", config.name, benchmark, suffix
                    )
                payload = dict(
                    payload_base, benchmark=benchmark, config=config,
                    attempt=attempts[index],
                    trace_ctx=runner.obs.tracer.export_context(
                        f"{benchmark}:{config.name}:a{attempts[index]}"
                    ),
                )
                stream_id = None
                if plane is not None:
                    stream_serial[0] += 1
                    stream_id = (
                        f"pool:{benchmark}:{config.name}"
                        f":s{stream_serial[0]}"
                    )
                    payload["telemetry"] = {
                        "queue": progress_queue, "stream": stream_id,
                    }
                try:
                    future = pool.submit(_worker_run, payload)
                except BrokenProcessPool:
                    queue.add(index)
                    break
                pending[future] = index
                if stream_id is not None:
                    streams[future] = stream_id

            waits = []
            if queue:
                next_eligible = min(eligible[i] for i in queue)
                waits.append(max(next_eligible - now, 0.01))
            if policy.timeout is not None and pending:
                waits.append(_TIMEOUT_TICK)
            timeout = min(waits) if waits else None

            if not pending:
                if queue:
                    time.sleep(timeout if timeout is not None else 0.01)
                continue

            done, _ = wait(
                set(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )
            _drain_streams()
            broken = any([_handle_done(future) for future in done])
            if broken:
                # Every other in-flight future is doomed too; drain them
                # (each crash charges that task an attempt) and respawn.
                doomed, _ = wait(set(pending), timeout=_DRAIN_SECONDS)
                for future in doomed:
                    _handle_done(future)
                for future in list(pending):
                    # Anything still unsettled is abandoned with the pool;
                    # requeue it at its current attempt count.
                    index = pending.pop(future)
                    running_since.pop(future, None)
                    _drop_stream(future)
                    queue.add(index)
                _kill_pool(pool)
                pool = ProcessPoolExecutor(max_workers=workers)
                metrics.counter(POOL_RESPAWNS).inc()
                if plane is not None:
                    plane.events.emit("pool_respawn", workers=workers)
                logger.warning("worker pool died; respawned %d workers",
                               workers)
                continue

            if policy.timeout is None:
                continue

            # Per-run timeout bookkeeping: clocks start when a future is
            # first observed running (dispatched to a worker), not when
            # it was submitted to the queue.
            now = time.monotonic()
            for future in pending:
                if future not in running_since and future.running():
                    running_since[future] = now
            timed_out = [
                future for future, began in running_since.items()
                if future in pending and now - began > policy.timeout
            ]
            if not timed_out:
                continue
            # A running call cannot be interrupted; tear the pool down,
            # charge the timed-out runs, requeue the innocents as-is.
            for future in timed_out:
                index = pending.pop(future)
                running_since.pop(future, None)
                _drop_stream(future)
                metrics.counter(RUN_TIMEOUTS).inc()
                _attempt_failed(
                    index, "RunTimeout",
                    f"run exceeded per-run timeout of {policy.timeout}s",
                )
            for future in list(pending):
                index = pending.pop(future)
                running_since.pop(future, None)
                _drop_stream(future)
                queue.add(index)
                eligible[index] = 0.0
            _kill_pool(pool)
            pool = ProcessPoolExecutor(max_workers=workers)
            metrics.counter(POOL_RESPAWNS).inc()
            if plane is not None:
                plane.events.emit("pool_respawn", workers=workers)
            logger.warning(
                "per-run timeout (%.1fs) hit; pool respawned with %d "
                "workers", policy.timeout, workers,
            )
    except BaseException:
        _kill_pool(pool)
        raise
    else:
        pool.shutdown()
    finally:
        for segment in shm_segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        if manager is not None:
            manager.shutdown()
    return assemble_outcome(tasks, results, failures)
