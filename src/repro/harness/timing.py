"""Per-stage wall-clock instrumentation — a shim over the obs tracer.

Historically this module owned its own stopwatches.  It is now a thin
compatibility layer over :mod:`repro.obs`: every run and stage is timed
by a :class:`~repro.obs.spans.Span` on the runner's
:class:`~repro.obs.context.ObsContext`, and the :class:`RunTiming` /
:class:`SuiteTiming` records are *views* populated from those spans, so
``--timing`` and ``--timing-json`` keep producing byte-compatible
reports while ``--trace-out`` gets the full hierarchical trace from the
same single measurement.

Stage entry doubles as the fault-injection hook site (see
:mod:`repro.harness.faults`), and an exception escaping a stage is
tagged with the stage name so failure records can report *where* a run
died; a partially executed stage still books its elapsed time, and its
span is marked ``status="error"``.

Records survive the process boundary — parallel workers serialise their
reports and the parent merges them — so ``suite --jobs N`` accounts for
every stage of every worker.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import InjectedFault
from ..obs import ObsContext, STAGE_SECONDS, RUN_SECONDS, FAULTS_INJECTED
from ..obs.spans import Span

#: Stage names in pipeline order (reports render in this order; stages a
#: run never entered are simply absent).
STAGE_ORDER = (
    "trace_build",
    "profiling",
    "plan_construction",
    "baseline",
    "point_simulation",
    "diagnostics",
)


@dataclass
class RunTiming:
    """Stage wall times and cache outcome of one (benchmark, config) run.

    The serialisable compatibility view of one run span: stage seconds
    are booked from the stage spans' durations, ``total_seconds`` from
    the run span's.  Records rebuilt via :meth:`from_dict` (worker
    payloads, old reports) carry no span.
    """

    benchmark: str
    config_name: str
    stages: Dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    total_seconds: float = 0.0
    #: The backing run span (absent on deserialised records).
    span: Optional[Span] = field(
        default=None, repr=False, compare=False,
    )

    def add_stage(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* into stage *name* (stages may re-enter)."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "stages": dict(self.stages),
            "cache_hit": self.cache_hit,
            "total_seconds": self.total_seconds,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunTiming":
        """Rebuild from :meth:`to_dict` output (worker -> parent)."""
        return RunTiming(
            benchmark=payload["benchmark"],
            config_name=payload["config_name"],
            stages=dict(payload["stages"]),
            cache_hit=payload["cache_hit"],
            total_seconds=payload["total_seconds"],
        )


class SuiteTiming:
    """Collector of per-run timings plus suite-level wall clock.

    One instance lives on each :class:`ExperimentRunner`, sharing the
    runner's :class:`ObsContext` (a standalone ``SuiteTiming()`` creates
    a private one); the parallel driver merges the workers' collectors
    into the parent's.
    """

    def __init__(self, obs: Optional[ObsContext] = None) -> None:
        self.obs = obs if obs is not None else ObsContext()
        self.runs: List[RunTiming] = []
        self.wall_seconds: float = 0.0
        self.jobs: int = 1

    # ------------------------------------------------------------------
    def start_run(self, benchmark: str, config_name: str) -> RunTiming:
        """Open (and register) the record of one pipeline run.

        Opens a ``run`` span under the tracer's current span (the suite
        span, during a suite); close it via :meth:`finish_run`.
        """
        from . import faults

        span = self.obs.tracer.start_span(
            "run",
            benchmark=benchmark,
            config=config_name,
            attempt=faults.current_attempt(),
        )
        record = RunTiming(
            benchmark=benchmark, config_name=config_name, span=span
        )
        self.runs.append(record)
        return record

    def finish_run(
        self, record: RunTiming, error: Optional[BaseException] = None
    ) -> None:
        """Close a record's run span and book its total wall clock."""
        span = record.span
        if span is None:
            return
        span.end(error=error)
        span.set(cache_hit=record.cache_hit)
        record.total_seconds = span.duration
        self.obs.metrics.histogram(RUN_SECONDS).observe(span.duration)

    @contextmanager
    def run(self, benchmark: str, config_name: str) -> Iterator[RunTiming]:
        """Context manager pairing :meth:`start_run`/:meth:`finish_run`."""
        record = self.start_run(benchmark, config_name)
        try:
            yield record
        except BaseException as error:
            self.finish_run(record, error=error)
            raise
        else:
            self.finish_run(record)

    @contextmanager
    def stage(self, record: Optional[RunTiming], name: str) -> Iterator[None]:
        """Time one stage of *record* (no-op when *record* is None).

        Opens a stage span under the record's run span, carrying the
        current attempt number — a retried run therefore yields one run
        span (with fresh stage children) per attempt.
        """
        if record is None:
            yield
            return
        from . import faults

        span = self.obs.tracer.start_span(
            name, parent=record.span, attempt=faults.current_attempt()
        )
        try:
            faults.fire_stage(record.benchmark, name)
            yield
        except BaseException as error:
            if not hasattr(error, "_repro_stage"):
                error._repro_stage = name
            if isinstance(error, InjectedFault):
                self.obs.metrics.counter(FAULTS_INJECTED, site="stage").inc()
            span.end(error=error)
            raise
        else:
            span.end()
        finally:
            record.add_stage(name, span.duration)
            self.obs.metrics.histogram(
                STAGE_SECONDS, stage=name
            ).observe(span.duration)

    def merge(self, other: "SuiteTiming") -> None:
        """Fold another collector's records into this one."""
        self.runs.extend(other.runs)

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Runs served entirely from the disk cache."""
        return sum(1 for r in self.runs if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Runs that executed the pipeline."""
        return sum(1 for r in self.runs if not r.cache_hit)

    def stage_totals(self) -> Dict[str, float]:
        """Aggregate seconds per stage across all recorded runs."""
        totals: Dict[str, float] = {}
        for record in self.runs:
            for name, seconds in record.stages.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def to_dict(self) -> dict:
        """JSON-serialisable report (the ``--timing-json`` payload)."""
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "stage_totals": self.stage_totals(),
            "runs": [record.to_dict() for record in self.runs],
        }

    @staticmethod
    def from_dict(payload: dict) -> "SuiteTiming":
        """Rebuild a collector from :meth:`to_dict` output."""
        timing = SuiteTiming()
        timing.jobs = payload.get("jobs", 1)
        timing.wall_seconds = payload.get("wall_seconds", 0.0)
        timing.runs = [RunTiming.from_dict(r) for r in payload.get("runs", [])]
        return timing

    # ------------------------------------------------------------------
    def format_report(self) -> str:
        """Human-readable per-stage breakdown (the ``--timing`` output)."""
        totals = self.stage_totals()
        ordered = [s for s in STAGE_ORDER if s in totals]
        ordered += sorted(set(totals) - set(STAGE_ORDER))
        busy = sum(totals.values())
        lines = [
            f"timing: {len(self.runs)} runs, jobs={self.jobs}, "
            f"wall {self.wall_seconds:.2f}s, "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss"
        ]
        width = max((len(s) for s in ordered), default=5)
        for stage in ordered:
            seconds = totals[stage]
            share = 100.0 * seconds / busy if busy else 0.0
            lines.append(f"  {stage:<{width}}  {seconds:8.3f}s  {share:5.1f}%")
        lines.append(f"  {'(stage total)':<{width}}  {busy:8.3f}s")
        return "\n".join(lines)
