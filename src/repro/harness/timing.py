"""Per-stage wall-clock instrumentation for the experiment harness.

Every :meth:`ExperimentRunner.run_benchmark` call records how long each
pipeline stage took — trace build, BBV profiling, plan construction, the
detailed baseline, and point simulation — plus whether the run was served
from the disk cache.  The suite-level report aggregates those records so
speedups (serial vs ``--jobs N``, scalar vs vectorized hot paths) are
measured rather than asserted.

The report is plain data: ``to_dict()`` is JSON-ready for ``--timing-json``
and ``format_report()`` renders the CLI table.  Records survive the process
boundary — parallel workers serialise their reports and the parent merges
them — so ``suite --jobs N`` accounts for every stage of every worker.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Stage names in pipeline order (reports render in this order; stages a
#: run never entered are simply absent).
STAGE_ORDER = (
    "trace_build",
    "profiling",
    "plan_construction",
    "baseline",
    "point_simulation",
)


@dataclass
class RunTiming:
    """Stage wall times and cache outcome of one (benchmark, config) run."""

    benchmark: str
    config_name: str
    stages: Dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    total_seconds: float = 0.0

    def add_stage(self, name: str, seconds: float) -> None:
        """Accumulate *seconds* into stage *name* (stages may re-enter)."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "stages": dict(self.stages),
            "cache_hit": self.cache_hit,
            "total_seconds": self.total_seconds,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunTiming":
        """Rebuild from :meth:`to_dict` output (worker -> parent)."""
        return RunTiming(
            benchmark=payload["benchmark"],
            config_name=payload["config_name"],
            stages=dict(payload["stages"]),
            cache_hit=payload["cache_hit"],
            total_seconds=payload["total_seconds"],
        )


class SuiteTiming:
    """Collector of per-run timings plus suite-level wall clock.

    One instance lives on each :class:`ExperimentRunner`; the parallel
    driver merges the workers' collectors into the parent's.
    """

    def __init__(self) -> None:
        self.runs: List[RunTiming] = []
        self.wall_seconds: float = 0.0
        self.jobs: int = 1

    # ------------------------------------------------------------------
    def start_run(self, benchmark: str, config_name: str) -> RunTiming:
        """Open (and register) the record of one pipeline run."""
        record = RunTiming(benchmark=benchmark, config_name=config_name)
        self.runs.append(record)
        return record

    @contextmanager
    def stage(self, record: Optional[RunTiming], name: str) -> Iterator[None]:
        """Time one stage of *record* (no-op when *record* is None).

        Stage entry doubles as the fault-injection hook site (see
        :mod:`repro.harness.faults`), and an exception escaping the stage
        is tagged with the stage name so failure records can report
        *where* a run died; a partially executed stage still books its
        elapsed time.
        """
        if record is None:
            yield
            return
        from . import faults

        began = time.perf_counter()
        try:
            faults.fire_stage(record.benchmark, name)
            yield
        except BaseException as error:
            if not hasattr(error, "_repro_stage"):
                error._repro_stage = name
            raise
        finally:
            record.add_stage(name, time.perf_counter() - began)

    def merge(self, other: "SuiteTiming") -> None:
        """Fold another collector's records into this one."""
        self.runs.extend(other.runs)

    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        """Runs served entirely from the disk cache."""
        return sum(1 for r in self.runs if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Runs that executed the pipeline."""
        return sum(1 for r in self.runs if not r.cache_hit)

    def stage_totals(self) -> Dict[str, float]:
        """Aggregate seconds per stage across all recorded runs."""
        totals: Dict[str, float] = {}
        for record in self.runs:
            for name, seconds in record.stages.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def to_dict(self) -> dict:
        """JSON-serialisable report (the ``--timing-json`` payload)."""
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "stage_totals": self.stage_totals(),
            "runs": [record.to_dict() for record in self.runs],
        }

    @staticmethod
    def from_dict(payload: dict) -> "SuiteTiming":
        """Rebuild a collector from :meth:`to_dict` output."""
        timing = SuiteTiming()
        timing.jobs = payload.get("jobs", 1)
        timing.wall_seconds = payload.get("wall_seconds", 0.0)
        timing.runs = [RunTiming.from_dict(r) for r in payload.get("runs", [])]
        return timing

    # ------------------------------------------------------------------
    def format_report(self) -> str:
        """Human-readable per-stage breakdown (the ``--timing`` output)."""
        totals = self.stage_totals()
        ordered = [s for s in STAGE_ORDER if s in totals]
        ordered += sorted(set(totals) - set(STAGE_ORDER))
        busy = sum(totals.values())
        lines = [
            f"timing: {len(self.runs)} runs, jobs={self.jobs}, "
            f"wall {self.wall_seconds:.2f}s, "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss"
        ]
        width = max((len(s) for s in ordered), default=5)
        for stage in ordered:
            seconds = totals[stage]
            share = 100.0 * seconds / busy if busy else 0.0
            lines.append(f"  {stage:<{width}}  {seconds:8.3f}s  {share:5.1f}%")
        lines.append(f"  {'(stage total)':<{width}}  {busy:8.3f}s")
        return "\n".join(lines)
