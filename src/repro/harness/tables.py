"""Result aggregation and text-table rendering."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from ..errors import HarnessError


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's AVG aggregator)."""
    values = list(values)
    if not values:
        raise HarnessError("geomean of no values")
    if any(v <= 0 for v in values):
        raise HarnessError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean (used for deviation aggregates, which can be zero)."""
    values = list(values)
    if not values:
        raise HarnessError("mean of no values")
    return sum(values) / len(values)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospaced table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise HarnessError("row width does not match headers")
        for i, cell in enumerate(row):
            columns[i].append(_fmt(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in range(1, len(columns[0])):
        lines.append(
            "  ".join(columns[i][r].rjust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 100:
            return f"{cell:.0f}"
        if magnitude >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_percent(value: float, digits: int = 2) -> str:
    """Render a fraction as a percentage string."""
    return f"{100 * value:.{digits}f}%"


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Simple CSV rendering of a table (for EXPERIMENTS.md extraction)."""
    out = [",".join(str(h) for h in headers)]
    for row in rows:
        out.append(",".join(_fmt(c) for c in row))
    return "\n".join(out)


def summarize_dict(d: Dict[str, float], digits: int = 3) -> str:
    """One-line ``k=v`` summary of a flat dict."""
    return ", ".join(f"{k}={v:.{digits}f}" for k, v in d.items())


def failure_rows(
    failures: Iterable["RunFailure"], width: int, label_column: int = 0
) -> List[List[str]]:
    """Table rows marking failed benchmarks in a *width*-column table.

    Each failed run renders as its benchmark name, a ``FAILED(n/m)``
    marker (attempts made / attempts allowed) in ``label_column + 1``,
    and ``-`` in the remaining cells, so partial campaigns still print
    complete tables with the gaps explicit rather than silently absent.
    """
    rows: List[List[str]] = []
    for failure in failures:
        row = ["-"] * width
        row[label_column] = failure.benchmark
        if width > label_column + 1:
            row[label_column + 1] = failure.label
        rows.append(row)
    return rows
