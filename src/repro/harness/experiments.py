"""Experiment drivers: one function per paper table / figure plus ablations.

Every driver returns plain dataclasses of numbers (render with
:mod:`repro.harness.tables`); the benchmark scripts under ``benchmarks/``
call these and print the regenerated table or figure series.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.bbv import normalize_rows
from ..analysis.pca import first_component
from ..config import CONFIG_A, DEFAULT_SAMPLING, MachineConfig, SamplingConfig
from ..detailed.timing import TimingSimulator
from ..engine.functional import FunctionalSimulator
from ..errors import HarnessError
from ..sampling.coasts import Coasts
from ..sampling.estimate import evaluate_plan
from ..sampling.multilevel import MultiLevelSampler
from ..sampling.simpoint import SimPoint
from ..workloads.registry import benchmark_names
from .recovery import RunFailure
from .runner import BenchmarkRun, ExperimentRunner
from .tables import arithmetic_mean, geomean

logger = logging.getLogger(__name__)

# ----------------------------------------------------------------------
# Figures 3 and 4: speedup over SimPoint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeedupSeries:
    """Per-benchmark speedups of one method over another (Figs 3/4).

    Benchmarks whose pipeline failed (after retries) appear in
    ``failures`` instead of ``speedups``; the geomean covers completed
    rows only, so a partial campaign still yields its headline number.
    """

    method: str
    over: str
    config_name: str
    speedups: Dict[str, float]
    failures: Tuple[RunFailure, ...] = ()

    @property
    def geomean(self) -> float:
        """Geometric-mean speedup over completed benchmarks."""
        return geomean(self.speedups.values())


def speedup_experiment(
    runner: ExperimentRunner,
    method: str,
    over: str = "simpoint",
    config: MachineConfig = CONFIG_A,
    names: Optional[Iterable[str]] = None,
    progress: bool = False,
    jobs: Optional[int] = None,
) -> SpeedupSeries:
    """Figure 3 (method='coasts') / Figure 4 (method='multilevel').

    Failed runs are carried on the returned series (strict behaviour —
    abort on first final failure — comes from a ``fail_fast`` policy on
    the runner).
    """
    outcome = runner.run_suite(config, names=names, progress=progress,
                               jobs=jobs)
    return SpeedupSeries(
        method=method,
        over=over,
        config_name=config.name,
        speedups={
            run.benchmark: run.speedup(method, over=over, model=runner.cost_model)
            for run in outcome
        },
        failures=outcome.failures,
    )


# ----------------------------------------------------------------------
# Table II: deviation comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeviationCell:
    """Average and worst deviation of one (metric, method, config) cell."""

    average: float
    worst: float
    worst_benchmark: str


@dataclass(frozen=True)
class AccuracyTable:
    """The Table II reproduction.

    ``cells[(metric, method, config_name)]`` with metric in
    {"cpi", "l1_hit_rate", "l2_hit_rate"}.  CPI deviations are relative;
    hit-rate deviations are absolute differences (fractions), both as in
    the paper.  Averages are arithmetic (deviations may legitimately be
    ~0, which a geometric mean cannot aggregate).
    """

    cells: Dict[Tuple[str, str, str], DeviationCell]
    methods: Tuple[str, ...]
    config_names: Tuple[str, ...]
    failures: Tuple[RunFailure, ...] = ()

    METRICS: Tuple[str, ...] = field(
        default=("cpi", "l1_hit_rate", "l2_hit_rate")
    )


def accuracy_experiment(
    runner: ExperimentRunner,
    configs: Sequence[MachineConfig],
    methods: Sequence[str] = ("coasts", "simpoint", "multilevel"),
    names: Optional[Iterable[str]] = None,
    progress: bool = False,
    jobs: Optional[int] = None,
) -> AccuracyTable:
    """Table II: CPI / L1 / L2 deviations per method under both configs.

    Averages and worst cases cover completed runs only; failed runs (per
    config) are collected on the table's ``failures``.
    """
    cells: Dict[Tuple[str, str, str], DeviationCell] = {}
    failures: List[RunFailure] = []
    for config in configs:
        outcome = runner.run_suite(config, names=names, progress=progress,
                                   jobs=jobs)
        failures.extend(outcome.failures)
        runs = outcome.runs
        if not runs:
            raise HarnessError(
                f"no run of config {config.name} completed:\n"
                + outcome.failure_summary()
            )
        for metric in ("cpi", "l1_hit_rate", "l2_hit_rate"):
            for method in methods:
                deviations = {
                    run.benchmark: getattr(run.methods[method].deviation, metric)
                    for run in runs
                }
                worst_benchmark = max(deviations, key=deviations.get)
                cells[(metric, method, config.name)] = DeviationCell(
                    average=arithmetic_mean(deviations.values()),
                    worst=deviations[worst_benchmark],
                    worst_benchmark=worst_benchmark,
                )
    return AccuracyTable(
        cells=cells,
        methods=tuple(methods),
        config_names=tuple(c.name for c in configs),
        failures=tuple(failures),
    )


# ----------------------------------------------------------------------
# Table III: simulation point statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StatisticsRow:
    """One Table III row: aggregate point statistics of one method."""

    method: str
    mean_interval_size: float
    mean_sample_number: float
    mean_detail_fraction: float
    mean_functional_fraction: float


def statistics_experiment(
    runner: ExperimentRunner,
    config: MachineConfig = CONFIG_A,
    methods: Sequence[str] = ("coasts", "simpoint", "multilevel"),
    names: Optional[Iterable[str]] = None,
    progress: bool = False,
    jobs: Optional[int] = None,
) -> List[StatisticsRow]:
    """Table III: geometric means of interval size, sample count and the
    detail / functional instruction fractions.

    Geomeans cover completed runs only (failures are recorded on
    ``runner.failures``); with zero completed runs this raises."""
    outcome = runner.run_suite(config, names=names, progress=progress,
                               jobs=jobs)
    runs = outcome.runs
    if not runs:
        raise HarnessError(
            "no run completed:\n" + outcome.failure_summary()
        )
    rows: List[StatisticsRow] = []
    for method in methods:
        stats = [run.methods[method].stats for run in runs]
        totals = [run.total_instructions for run in runs]
        rows.append(
            StatisticsRow(
                method=method,
                mean_interval_size=geomean(s.mean_interval_size for s in stats),
                mean_sample_number=geomean(s.n_leaves for s in stats),
                mean_detail_fraction=geomean(
                    max(s.detail_instructions / t, 1e-12)
                    for s, t in zip(stats, totals)
                ),
                mean_functional_fraction=geomean(
                    max(s.functional_instructions / t, 1e-12)
                    for s, t in zip(stats, totals)
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Section III-B motivation statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MotivationRow:
    """Coarse-phase facts for one benchmark (Section III-B)."""

    benchmark: str
    phase_count: int
    last_point_position: float
    n_intervals: int
    mean_interval_size: float


def motivation_experiment(
    runner: ExperimentRunner,
    kmax: int = 10,
    names: Optional[Iterable[str]] = None,
    progress: bool = False,
    bic_threshold: float = 0.6,
) -> List[MotivationRow]:
    """Natural coarse-phase counts and last-point positions.

    Uses a raised Kmax (10) so the clustering can discover more than the
    default 3 phases — this is how the paper's motivation numbers (gzip 4,
    equake 6, fma3d 5, average 3) were measured, while the COASTS default
    for sampling remains ``Kmax = 3``.  The BIC threshold is lowered to the
    knee (0.6): phase *counting* wants the number of distinct behaviours,
    not the finest clustering the BIC range admits.
    """
    sampling = replace(runner.sampling, coarse_kmax=kmax,
                       bic_threshold=bic_threshold)
    rows: List[MotivationRow] = []
    for name in list(names) if names is not None else benchmark_names():
        if progress:
            logger.info("[motivation] %s ...", name)
        trace = runner.trace(name)
        plan = Coasts(sampling).sample(trace, benchmark=name)
        rows.append(
            MotivationRow(
                benchmark=name,
                phase_count=plan.n_clusters,
                last_point_position=plan.last_point_position,
                n_intervals=len(trace.outer_bounds()),
                mean_interval_size=plan.mean_interval_size,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Family campaigns: accuracy aggregated per population group
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignGroup:
    """Per-method CPI-deviation aggregates over one population group.

    A group is one seeded family (``fam:<name>``) or the hand-written
    suite benchmarks the expression pulled in (``suite``).  Deviations
    are absolute relative CPI errors, so methods are comparable across
    groups whose baselines differ wildly.
    """

    group: str
    benchmarks: Tuple[str, ...]
    mean_cpi_deviation: Dict[str, float]
    worst_cpi_deviation: Dict[str, float]


@dataclass(frozen=True)
class CampaignResult:
    """A set-expression campaign: every run, grouped for reporting."""

    expression: str
    names: Tuple[str, ...]
    groups: Tuple[CampaignGroup, ...]
    runs: Tuple[BenchmarkRun, ...]
    failures: Tuple[RunFailure, ...] = ()


def campaign_experiment(
    runner: ExperimentRunner,
    expression: str,
    config: MachineConfig = CONFIG_A,
    progress: bool = False,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Run the population a set expression selects; aggregate per group.

    This is the scale companion of :func:`accuracy_experiment`: instead
    of the 16 hand-written benchmarks it takes an arbitrary expression
    (``'phase-heavy + fam:irregular[0:32]'``) and reports how each
    sampling method degrades along each family's stress axis.  Family
    members group under ``fam:<family>``; suite benchmarks under
    ``suite``.  Groups preserve first-appearance order of the resolved
    names, so reports are stable across runs.
    """
    from ..workloads import families
    from ..workloads.sets import resolve

    names = resolve(expression)
    outcome = runner.run_suite(config, names=list(names),
                               progress=progress, jobs=jobs)
    grouped: Dict[str, List[BenchmarkRun]] = {}
    for run in outcome:
        member = families.parse_member_name(run.benchmark)
        key = f"fam:{member[0]}" if member else "suite"
        grouped.setdefault(key, []).append(run)
    groups = []
    for key, runs in grouped.items():
        methods = [m for m in runner.methods if m in runs[0].methods]
        deviations = {
            m: [abs(r.methods[m].deviation.cpi) for r in runs]
            for m in methods
        }
        groups.append(CampaignGroup(
            group=key,
            benchmarks=tuple(r.benchmark for r in runs),
            mean_cpi_deviation={
                m: arithmetic_mean(v) for m, v in deviations.items()
            },
            worst_cpi_deviation={m: max(v) for m, v in deviations.items()},
        ))
    return CampaignResult(
        expression=expression,
        names=tuple(names),
        groups=tuple(groups),
        runs=tuple(outcome),
        failures=outcome.failures,
    )


# ----------------------------------------------------------------------
# Figure 1: granularity study
# ----------------------------------------------------------------------
def _roughness(values: np.ndarray) -> float:
    """Mean |step| of a curve, normalised by its spread.

    ~0 for smooth slowly-varying curves, ~1.4 for white noise; scale-free,
    so fine and coarse curves (different PCA fits) are comparable."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < 2:
        return 0.0
    spread = values.std()
    if spread == 0:
        return 0.0
    return float(np.abs(np.diff(values)).mean() / spread)



@dataclass(frozen=True)
class GranularitySeries:
    """Figure 1's data: first PCA component per interval + chosen points."""

    benchmark: str
    fine_values: np.ndarray
    fine_selected: Tuple[int, ...]
    coarse_values: np.ndarray
    coarse_selected: Tuple[int, ...]

    @property
    def fine_variation(self) -> float:
        """Normalised mean |step| of the fine curve (its 'chaos' measure)."""
        return _roughness(self.fine_values)

    @property
    def coarse_variation(self) -> float:
        """Normalised mean |step| of the coarse curve."""
        return _roughness(self.coarse_values)


def granularity_experiment(
    runner: ExperimentRunner,
    benchmark: str = "lucas",
) -> GranularitySeries:
    """Figure 1: fine vs coarse first-PCA-component curves for *benchmark*."""
    trace = runner.trace(benchmark)
    functional = FunctionalSimulator(trace)

    fine_profile = functional.profile_fixed_intervals(
        runner.sampling.fine_interval_size
    )
    fine_values = first_component(normalize_rows(fine_profile.bbv))
    fine_plan = SimPoint(runner.sampling).sample(fine_profile, benchmark=benchmark)
    fine_selected = tuple(p.interval_index for p in fine_plan.points)

    coasts = Coasts(runner.sampling)
    boundaries = coasts.collect_boundaries(trace)
    coarse_profile = coasts.profile(trace, boundaries)
    coarse_values = first_component(normalize_rows(coarse_profile.bbv))
    coarse_plan = coasts.sample_profile(
        coarse_profile, benchmark=benchmark,
        total_instructions=trace.total_instructions,
    )
    coarse_selected = tuple(p.interval_index for p in coarse_plan.points)

    return GranularitySeries(
        benchmark=benchmark,
        fine_values=fine_values,
        fine_selected=fine_selected,
        coarse_values=coarse_values,
        coarse_selected=coarse_selected,
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationRow:
    """One setting of an ablation sweep."""

    setting: str
    values: Dict[str, float]


def ablation_coarse_kmax(
    runner: ExperimentRunner,
    benchmark: str,
    kmaxes: Sequence[int] = (1, 2, 3, 4, 6, 8),
    config: MachineConfig = CONFIG_A,
) -> List[AblationRow]:
    """Sweep COASTS' Kmax: phase count, last position, detail fraction and
    CPI deviation."""
    trace = runner.trace(benchmark)
    simulator = TimingSimulator(trace, config)
    baseline = simulator.simulate_full().metrics()
    rows: List[AblationRow] = []
    for kmax in kmaxes:
        sampling = replace(runner.sampling, coarse_kmax=kmax)
        plan = Coasts(sampling).sample(trace, benchmark=benchmark)
        evaluation = evaluate_plan(plan, simulator, baseline, config=sampling)
        rows.append(
            AblationRow(
                setting=f"kmax={kmax}",
                values={
                    "phases": float(plan.n_clusters),
                    "last_position": plan.last_point_position,
                    "detail_fraction": plan.detail_fraction,
                    "cpi_deviation": evaluation.deviation.cpi,
                },
            )
        )
    return rows


def ablation_fine_interval(
    runner: ExperimentRunner,
    benchmark: str,
    sizes: Sequence[int],
    config: MachineConfig = CONFIG_A,
) -> List[AblationRow]:
    """Sweep the fixed SimPoint interval size: points, fractions, deviation.

    This is the experiment behind the paper's Section III claim that finer
    granularity exposes more phases and pushes simulation points toward the
    end of the program."""
    trace = runner.trace(benchmark)
    functional = FunctionalSimulator(trace)
    simulator = TimingSimulator(trace, config)
    baseline = simulator.simulate_full().metrics()
    rows: List[AblationRow] = []
    for size in sizes:
        sampling = replace(runner.sampling, fine_interval_size=size,
                           resample_threshold=size * runner.sampling.fine_kmax)
        profile = functional.profile_fixed_intervals(size)
        plan = SimPoint(sampling).sample(profile, benchmark=benchmark)
        evaluation = evaluate_plan(plan, simulator, baseline, config=sampling)
        rows.append(
            AblationRow(
                setting=f"interval={size}",
                values={
                    "points": float(plan.n_points),
                    "last_position": plan.last_point_position,
                    "detail_fraction": plan.detail_fraction,
                    "functional_fraction": plan.functional_fraction,
                    "cpi_deviation": evaluation.deviation.cpi,
                },
            )
        )
    return rows


def ablation_resample_threshold(
    runner: ExperimentRunner,
    benchmark: str,
    thresholds: Sequence[int],
    config: MachineConfig = CONFIG_A,
) -> List[AblationRow]:
    """Sweep the multi-level re-sampling threshold (paper: 10M x Kmax)."""
    trace = runner.trace(benchmark)
    simulator = TimingSimulator(trace, config)
    baseline = simulator.simulate_full().metrics()
    coarse_plan = Coasts(runner.sampling).sample(trace, benchmark=benchmark)
    rows: List[AblationRow] = []
    for threshold in thresholds:
        sampling = replace(runner.sampling, resample_threshold=threshold)
        plan = MultiLevelSampler(sampling).sample(
            trace, benchmark=benchmark, coarse_plan=coarse_plan
        )
        evaluation = evaluate_plan(plan, simulator, baseline, config=sampling)
        rows.append(
            AblationRow(
                setting=f"threshold={threshold}",
                values={
                    "leaves": float(plan.n_leaves),
                    "detail_fraction": plan.detail_fraction,
                    "cpi_deviation": evaluation.deviation.cpi,
                },
            )
        )
    return rows


def ablation_projection_dim(
    runner: ExperimentRunner,
    benchmark: str,
    dims: Sequence[int] = (2, 5, 15, 30, 60),
    config: MachineConfig = CONFIG_A,
) -> List[AblationRow]:
    """Sweep the BBV random-projection dimensionality (paper uses 15)."""
    trace = runner.trace(benchmark)
    functional = FunctionalSimulator(trace)
    simulator = TimingSimulator(trace, config)
    baseline = simulator.simulate_full().metrics()
    profile = functional.profile_fixed_intervals(
        runner.sampling.fine_interval_size
    )
    rows: List[AblationRow] = []
    for dim in dims:
        sampling = replace(runner.sampling, projection_dim=dim)
        plan = SimPoint(sampling).sample(profile, benchmark=benchmark)
        evaluation = evaluate_plan(plan, simulator, baseline, config=sampling)
        rows.append(
            AblationRow(
                setting=f"dim={dim}",
                values={
                    "points": float(plan.n_points),
                    "cpi_deviation": evaluation.deviation.cpi,
                    "l2_deviation": evaluation.deviation.l2_hit_rate,
                },
            )
        )
    return rows


def ablation_metric(
    runner: ExperimentRunner,
    benchmark: str,
    metrics: Sequence[str] = ("bbv", "loop_frequency", "working_set"),
    config: MachineConfig = CONFIG_A,
) -> List[AblationRow]:
    """Compare phase-classification metrics (paper Section II).

    Reproduces the cited findings: BBVs estimate at least as well as
    working-set signatures (Dhodapkar & Smith), and loop frequency vectors
    come close while often selecting fewer phases (Lau et al.)."""
    trace = runner.trace(benchmark)
    functional = FunctionalSimulator(trace)
    simulator = TimingSimulator(trace, config)
    baseline = simulator.simulate_full().metrics()
    profile = functional.profile_fixed_intervals(
        runner.sampling.fine_interval_size
    )
    rows: List[AblationRow] = []
    for metric in metrics:
        plan = SimPoint(runner.sampling, metric=metric).sample(
            profile, benchmark=benchmark, program=trace.program
        )
        evaluation = evaluate_plan(plan, simulator, baseline,
                                   config=runner.sampling)
        rows.append(
            AblationRow(
                setting=metric,
                values={
                    "points": float(plan.n_points),
                    "cpi_deviation": evaluation.deviation.cpi,
                    "l2_deviation": evaluation.deviation.l2_hit_rate,
                    "functional_fraction": plan.functional_fraction,
                },
            )
        )
    return rows


def ablation_representative_policy(
    runner: ExperimentRunner,
    benchmark: str,
    config: MachineConfig = CONFIG_A,
) -> List[AblationRow]:
    """Earliest-instance (COASTS) vs centroid-nearest representatives.

    Quantifies DESIGN.md decision 4: earliest instances slash functional
    time at a small accuracy cost."""
    trace = runner.trace(benchmark)
    simulator = TimingSimulator(trace, config)
    baseline = simulator.simulate_full().metrics()
    coasts = Coasts(runner.sampling)
    boundaries = coasts.collect_boundaries(trace)
    profile = coasts.profile(trace, boundaries)
    signatures = coasts.signatures(profile)

    from ..analysis.bic import cluster_with_bic
    from ..analysis.distance import earliest_member, nearest_to_centroid
    from ..sampling.points import SamplingPlan, SimulationPoint

    result, _ = cluster_with_bic(
        signatures,
        kmax=runner.sampling.coarse_kmax,
        seed=runner.sampling.random_seed,
        n_seeds=runner.sampling.kmeans_seeds,
        threshold=runner.sampling.bic_threshold,
    )
    insts = profile.instructions.astype(np.float64)
    rows: List[AblationRow] = []
    for policy, picks in (
        ("earliest", earliest_member(result.labels, result.k)),
        ("centroid", nearest_to_centroid(signatures, result.labels,
                                         result.centroids)),
    ):
        points = []
        for phase in range(result.k):
            pick = int(picks[phase])
            if pick < 0:
                continue
            weight = float(insts[result.labels == phase].sum() / insts.sum())
            points.append(
                SimulationPoint(
                    start=int(profile.starts[pick]),
                    end=profile.end_of(pick),
                    weight=weight,
                    phase=phase,
                    interval_index=pick,
                )
            )
        plan = SamplingPlan(
            method=f"coasts_{policy}",
            benchmark=benchmark,
            points=tuple(sorted(points, key=lambda p: p.start)),
            total_instructions=trace.total_instructions,
            n_clusters=result.k,
        )
        evaluation = evaluate_plan(plan, simulator, baseline,
                                   config=runner.sampling)
        rows.append(
            AblationRow(
                setting=policy,
                values={
                    "last_position": plan.last_point_position,
                    "functional_fraction": plan.functional_fraction,
                    "cpi_deviation": evaluation.deviation.cpi,
                },
            )
        )
    return rows


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def require_runs(runs: List[BenchmarkRun], method: str) -> None:
    """Validate that every run contains *method* (fail fast in benches)."""
    for run in runs:
        if method not in run.methods:
            raise HarnessError(
                f"run {run.benchmark} lacks method {method!r}"
            )
