"""Fault tolerance for suite execution: policies, failures, journaling.

One failed (benchmark, config) pipeline must not abort a whole campaign.
This module supplies the pieces the serial and parallel suite drivers
share:

* :class:`FaultPolicy` — bounded retries with deterministic exponential
  backoff, an optional per-run timeout, and a ``fail_fast`` toggle that
  restores abort-on-first-failure semantics.
* :class:`RunFailure` — the structured record of a run that exhausted
  its attempts (exception class/message, traceback, failing stage from
  the timing instrumentation, attempt accounting).
* :class:`SuiteOutcome` — what ``run_suite`` returns: the completed runs
  (in suite order; the outcome iterates like a plain run list) plus the
  failures.
* :class:`SuiteJournal` — an append-only JSONL checkpoint next to the
  result cache: one fsync'd line per completed run or final failure, so
  checkpoint cost is O(1) per record and ``--resume`` skips completed
  runs and re-attempts only failed or missing ones.  A crash mid-append
  can tear at most the final line, which the loader drops (counted as
  ``repro_journal_torn_total``) before healing the file.

Retries are safe because every pipeline run is a pure function of its
(benchmark spec, scale, sampling config, machine config) inputs
(DESIGN.md decision 1): a re-attempt cannot produce a different result,
only the same result or another failure.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import tempfile
import threading
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Sequence, Tuple,
)

from ..config import MachineConfig
from ..errors import HarnessError, ReproError, RunTimeout
from ..obs import (
    JOURNAL_TORN,
    RETRY_BACKOFF_SECONDS,
    RUN_FAILURES,
    RUN_RETRIES,
    RUN_TIMEOUTS,
    RUNS_COMPLETED,
    MetricsRegistry,
)
from .cache import CACHE_SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import BenchmarkRun, ExperimentRunner

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPolicy:
    """How the suite drivers respond to a failing run.

    ``max_retries`` counts *re*-attempts: a run executes at most
    ``max_retries + 1`` times.  Backoff before re-attempt *n* (1-based)
    is ``backoff_base * backoff_factor ** (n - 1)`` seconds — purely
    deterministic, no jitter, so failure schedules are reproducible.
    ``timeout`` bounds one attempt's wall clock (``None`` disables).
    ``fail_fast`` raises on the first run that exhausts its attempts
    instead of recording it and carrying on.
    """

    max_retries: int = 1
    timeout: Optional[float] = None
    fail_fast: bool = False
    backoff_base: float = 0.1
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise HarnessError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise HarnessError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise HarnessError(
                f"backoff must have base >= 0 and factor >= 1, got "
                f"base={self.backoff_base}, factor={self.backoff_factor}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a run may consume."""
        return self.max_retries + 1

    def backoff_seconds(self, reattempt: int) -> float:
        """Deterministic delay before re-attempt *reattempt* (1-based)."""
        if reattempt <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (reattempt - 1)


#: Policy used when callers pass none: one retry, no timeout, graceful.
DEFAULT_POLICY = FaultPolicy()


# ----------------------------------------------------------------------
# failures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunFailure:
    """Structured record of one run that exhausted its attempts."""

    benchmark: str
    config_name: str
    attempts: int
    max_attempts: int
    error_type: str
    error_message: str
    traceback: str
    stage: Optional[str]

    @property
    def label(self) -> str:
        """Compact table marker, e.g. ``FAILED(3/3)``."""
        return f"FAILED({self.attempts}/{self.max_attempts})"

    def describe(self) -> str:
        """One-line human summary (CLI failure reports)."""
        where = f" in {self.stage}" if self.stage else ""
        return (
            f"{self.benchmark} ({self.config_name}): {self.error_type}"
            f"{where} after {self.attempts}/{self.max_attempts} attempts"
            f" — {self.error_message}"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (journal entries)."""
        return {
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "traceback": self.traceback,
            "stage": self.stage,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunFailure":
        """Rebuild from :meth:`to_dict` output."""
        return RunFailure(
            benchmark=payload["benchmark"],
            config_name=payload["config_name"],
            attempts=payload["attempts"],
            max_attempts=payload["max_attempts"],
            error_type=payload["error_type"],
            error_message=payload["error_message"],
            traceback=payload["traceback"],
            stage=payload.get("stage"),
        )

    @staticmethod
    def from_exception(
        benchmark: str,
        config_name: str,
        error: BaseException,
        attempts: int,
        max_attempts: int,
        tb: Optional[str] = None,
    ) -> "RunFailure":
        """Build a failure record from a caught exception.

        The failing stage comes from the marker the timing layer attaches
        to exceptions that escape a stage context (see
        :meth:`SuiteTiming.stage`).
        """
        return RunFailure(
            benchmark=benchmark,
            config_name=config_name,
            attempts=attempts,
            max_attempts=max_attempts,
            error_type=type(error).__name__,
            error_message=str(error),
            traceback=tb if tb is not None else traceback_module.format_exc(),
            stage=getattr(error, "_repro_stage", None),
        )


# ----------------------------------------------------------------------
# outcome
# ----------------------------------------------------------------------
class SuiteOutcome(Sequence):
    """Runs plus failures of one suite invocation.

    Iterating (or indexing) an outcome yields the completed
    :class:`BenchmarkRun` objects in suite order, so code written against
    the old ``List[BenchmarkRun]`` return type keeps working; the
    failures ride along in :attr:`failures`.
    """

    def __init__(
        self,
        runs: Sequence["BenchmarkRun"],
        failures: Sequence[RunFailure] = (),
    ) -> None:
        self.runs: Tuple["BenchmarkRun", ...] = tuple(runs)
        self.failures: Tuple[RunFailure, ...] = tuple(failures)

    def __len__(self) -> int:
        return len(self.runs)

    def __getitem__(self, index):
        return self.runs[index]

    def __iter__(self) -> Iterator["BenchmarkRun"]:
        return iter(self.runs)

    def __repr__(self) -> str:
        return (
            f"SuiteOutcome({len(self.runs)} runs, "
            f"{len(self.failures)} failures)"
        )

    @property
    def ok(self) -> bool:
        """True when every run completed."""
        return not self.failures

    def raise_if_failed(self) -> None:
        """Strict-mode check: raise :class:`HarnessError` on any failure."""
        if self.failures:
            raise HarnessError(self.failure_summary())

    def failure_summary(self) -> str:
        """Multi-line report of every failure (CLI / logs)."""
        total = len(self.runs) + len(self.failures)
        lines = [f"{len(self.failures)} of {total} runs failed:"]
        lines += [f"  {failure.describe()}" for failure in self.failures]
        return "\n".join(lines)


def assemble_outcome(
    tasks: Sequence[Tuple[str, MachineConfig]],
    results: Dict[int, "BenchmarkRun"],
    failures: Dict[int, RunFailure],
) -> SuiteOutcome:
    """Build the outcome, insisting every task is accounted for.

    A task index that produced neither a run nor a failure means the
    driver lost a result — an internal invariant violation that used to
    silently shorten the suite; it is now an explicit error.
    """
    missing = [
        f"{tasks[i][0]} ({tasks[i][1].name})"
        for i in range(len(tasks))
        if i not in results and i not in failures
    ]
    if missing:
        raise HarnessError(
            f"suite driver lost {len(missing)} run(s) without recording "
            f"a result or failure: {', '.join(missing)}"
        )
    return SuiteOutcome(
        runs=[results[i] for i in range(len(tasks)) if i in results],
        failures=[failures[i] for i in sorted(failures)],
    )


# ----------------------------------------------------------------------
# per-run timeout (serial path)
# ----------------------------------------------------------------------
@contextmanager
def run_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Bound the wall clock of the enclosed run via ``SIGALRM``.

    Signal-based, so it interrupts even a hung C-level sleep; only
    installable in the main thread (and on platforms with ``SIGALRM``) —
    elsewhere it degrades to a no-op, and the parallel path enforces
    timeouts by terminating workers instead.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise RunTimeout(f"run exceeded per-run timeout of {seconds}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# serial execution with retries
# ----------------------------------------------------------------------
def run_tasks_serial(
    runner: "ExperimentRunner",
    tasks: Sequence[Tuple[str, MachineConfig]],
    policy: FaultPolicy = DEFAULT_POLICY,
    progress: bool = False,
    on_run: Optional[Callable[[int, "BenchmarkRun"], None]] = None,
    on_failure: Optional[Callable[[int, RunFailure], None]] = None,
) -> SuiteOutcome:
    """Run *tasks* in-process with per-run isolation, retries and timeout.

    Mirrors the parallel driver's recovery semantics on one process:
    each task gets up to ``policy.max_attempts`` attempts with
    deterministic backoff between them; a task that exhausts its budget
    becomes a :class:`RunFailure` (or raises, under ``fail_fast``).
    """
    from . import faults

    metrics = runner.obs.metrics
    results: Dict[int, "BenchmarkRun"] = {}
    failures: Dict[int, RunFailure] = {}
    for index, (benchmark, config) in enumerate(tasks):
        for attempt in range(policy.max_attempts):
            if attempt:
                delay = policy.backoff_seconds(attempt)
                metrics.histogram(RETRY_BACKOFF_SECONDS).observe(delay)
                time.sleep(delay)
            if progress:
                suffix = f" (attempt {attempt + 1})" if attempt else ""
                logger.info("[%s] %s ...%s", config.name, benchmark, suffix)
            faults.set_attempt(attempt)
            try:
                with run_deadline(policy.timeout):
                    run = runner.run_benchmark(benchmark, config)
            except ReproError as error:
                # Library errors (including injected faults and serial
                # timeouts) are retryable run failures; anything else —
                # KeyboardInterrupt, MemoryError, genuine bugs outside
                # the library's error contract — still propagates.
                if isinstance(error, RunTimeout):
                    metrics.counter(RUN_TIMEOUTS).inc()
                failure = RunFailure.from_exception(
                    benchmark, config.name, error,
                    attempts=attempt + 1,
                    max_attempts=policy.max_attempts,
                )
                logger.warning("run failed: %s", failure.describe())
                if attempt + 1 < policy.max_attempts:
                    metrics.counter(RUN_RETRIES).inc()
                    plane = getattr(runner, "telemetry", None)
                    if plane is not None:
                        plane.events.emit(
                            "retry", benchmark=benchmark,
                            config=config.name, attempt=attempt + 1,
                            error=failure.error_type,
                        )
                    continue
                metrics.counter(RUN_FAILURES).inc()
                if policy.fail_fast:
                    raise HarnessError(
                        f"fail_fast: {failure.describe()}"
                    ) from error
                failures[index] = failure
                if on_failure is not None:
                    on_failure(index, failure)
                break
            finally:
                faults.set_attempt(0)
            results[index] = run
            metrics.counter(RUNS_COMPLETED).inc()
            if on_run is not None:
                on_run(index, run)
            break
    return assemble_outcome(tasks, results, failures)


# ----------------------------------------------------------------------
# checkpoint journal
# ----------------------------------------------------------------------
def suite_fingerprint(
    runner: "ExperimentRunner",
    config: MachineConfig,
    names: Sequence[str],
) -> str:
    """Content fingerprint of one suite invocation.

    Two invocations share a journal only when every input that could
    change their results matches (same discipline as the result cache's
    content keys).
    """
    text = (
        f"v{CACHE_SCHEMA_VERSION}:{config!r}:{runner.sampling!r}:"
        f"scale={runner.workload_scale}:"
        f"methods={','.join(runner.methods)}:names={','.join(names)}"
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


class SuiteJournal:
    """Append-only JSONL checkpoint of suite progress, for ``--resume``.

    The suite driver records every completed run (with its full result
    payload) and every final failure as **one appended, fsync'd line**
    — O(1) per record, where the original rewrite-the-file scheme cost
    O(records) per record and made checkpointing quadratic over a
    campaign.  A crash (even an OOM kill mid-append) can tear at most
    the final line; the loader drops any unparseable line, counts it as
    ``repro_journal_torn_total``, and heals the file with one atomic
    rewrite (mkstemp + ``os.replace``, the :class:`ResultCache`
    discipline) so later appends cannot concatenate onto a torn tail.
    Whole-file rewrites remain only for the rare structural edits:
    ``reset`` and ``drop_failures``.

    Only the suite *parent* writes the journal (workers return results
    to it), so there is a single writer per file — this is also the
    dispatch backend's at-most-once commit point: a stale worker's late
    result is discarded by the lease table before it ever reaches here.
    """

    VERSION = 1

    def __init__(
        self,
        path: Path,
        fingerprint: str,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.metrics = metrics
        self._entries: List[dict] = []

    @staticmethod
    def for_suite(
        directory: Path,
        runner: "ExperimentRunner",
        config: MachineConfig,
        names: Sequence[str],
    ) -> "SuiteJournal":
        """The journal of one suite invocation, next to the cache."""
        fingerprint = suite_fingerprint(runner, config, names)
        return SuiteJournal(
            Path(directory) / f"suite-{fingerprint}.journal.jsonl",
            fingerprint,
            metrics=runner.obs.metrics,
        )

    # ------------------------------------------------------------------
    def load(self) -> int:
        """Read existing entries (tolerating torn lines); return count.

        Unparseable lines — a crash tore the final append — are dropped
        and counted (``repro_journal_torn_total``); when any were found
        the journal is immediately rewritten from the surviving entries,
        so a subsequent append cannot concatenate onto a torn tail.  A
        journal written by a different suite invocation (mismatched
        fingerprint) or journal version is ignored wholesale — resuming
        against it would mix incompatible results.
        """
        self._entries = []
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return 0
        entries: List[dict] = []
        torn = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                logger.warning("journal %s: dropping torn line", self.path)
                continue
            entries.append(entry)
        if torn and self.metrics is not None:
            self.metrics.counter(JOURNAL_TORN).inc(torn)
        if not entries:
            return 0
        header = entries[0]
        if (
            header.get("type") != "header"
            or header.get("fingerprint") != self.fingerprint
            or header.get("version") != self.VERSION
        ):
            logger.warning(
                "journal %s belongs to a different suite invocation; "
                "ignoring it", self.path,
            )
            return 0
        self._entries = entries
        if torn:
            self._rewrite()
        return len(entries) - 1

    def reset(self) -> None:
        """Start a fresh journal (non-resume invocations)."""
        self._entries = [{
            "type": "header",
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
        }]
        self._rewrite()

    # ------------------------------------------------------------------
    def completed(self) -> Dict[Tuple[str, str], dict]:
        """Loaded run payloads keyed by (benchmark, config_name)."""
        return {
            (e["benchmark"], e["config_name"]): e["payload"]
            for e in self._entries
            if e.get("type") == "run"
        }

    def failed(self) -> List[RunFailure]:
        """Loaded failure records (these get re-attempted on resume)."""
        return [
            RunFailure.from_dict(e["failure"])
            for e in self._entries
            if e.get("type") == "failure"
        ]

    def drop_failures(self) -> None:
        """Forget recorded failures (they are about to be re-attempted).

        A structural edit, so this is one atomic whole-file rewrite —
        it happens once per resume, not once per record.
        """
        self._entries = [
            e for e in self._entries if e.get("type") != "failure"
        ]
        self._rewrite()

    # ------------------------------------------------------------------
    def record_run(
        self, benchmark: str, config_name: str, payload: dict
    ) -> None:
        """Checkpoint one completed run (one appended, fsync'd line)."""
        self._append({
            "type": "run",
            "benchmark": benchmark,
            "config_name": config_name,
            "payload": payload,
        })

    def record_failure(self, failure: RunFailure) -> None:
        """Checkpoint one final (post-retries) failure."""
        self._append({"type": "failure", "failure": failure.to_dict()})

    def _append(self, entry: dict) -> None:
        """Append one record: write the line, flush, fsync.

        The fsync bounds what a crash can lose to the final, possibly
        torn line — which :meth:`load` then drops and heals.
        """
        if not self._entries:
            self.reset()
        self._entries.append(entry)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _rewrite(self) -> None:
        """Atomically replace the whole file (reset / heal / drop)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=self.path.stem + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "w") as handle:
                for entry in self._entries:
                    handle.write(json.dumps(entry) + "\n")
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
