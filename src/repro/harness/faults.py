"""Deterministic fault injection for the experiment harness.

The fault-tolerance machinery (:mod:`repro.harness.recovery`) is only
trustworthy if every recovery path can be exercised on demand, in tests,
reproducibly.  This module installs hooks at the pipeline's stage
boundaries (see :meth:`SuiteTiming.stage`) and at the cache-publish point
that fire on *chosen* ``(benchmark, attempt)`` pairs — never randomly —
so a test that injects a fault sees exactly the same failure on every
run, serial or parallel alike.

Faults are configured through the ``$REPRO_FAULTS`` environment variable,
which crosses the process boundary to pool workers for free.  The value
is a semicolon-separated list of specs::

    kind:benchmark:stage:attempts

* ``kind`` — one of ``raise`` (raise :class:`InjectedFault` on stage
  entry), ``hang`` (block in the stage until killed or timed out),
  ``kill`` (``os._exit`` the current process, simulating an OOM-killed
  worker), ``corrupt`` (overwrite the run's just-published cache entry
  with garbage), or a dispatch-level kind understood by the distributed
  dispatcher (:mod:`repro.harness.dispatch`): ``worker_exit`` (the
  subprocess worker dies the moment it receives the matching task),
  ``heartbeat_drop`` (the worker executes the task but sends no
  heartbeats), ``partition`` (the dispatcher drops every message
  concerning the matching lease until the lease is reclaimed,
  simulating a network partition), ``stale_commit`` (the worker
  withholds its finished result until after its lease deadline, so the
  commit must be rejected as stale).
* ``benchmark`` — benchmark name, or ``*`` for all.
* ``stage`` — pipeline stage name (``trace_build``, ``profiling``,
  ``plan_construction``, ``baseline``, ``point_simulation``), or ``*``.
  Ignored for ``corrupt`` (which fires after the run publishes) and for
  the dispatch-level kinds (which fire at lease grant / task receipt,
  outside any stage).
* ``attempts`` — comma-separated attempt numbers (0-based), or ``*``.

Example: ``raise:gzip:baseline:0,1`` makes gzip's first two attempts die
in the baseline stage; the third succeeds — a transient failure.

.. warning:: ``kill`` terminates the *current* process.  Under the
   parallel runner that is a pool worker (the scenario being simulated);
   on the serial path it is the suite process itself — only inject serial
   kills into a subprocess (e.g. a CLI invocation) whose death and
   ``--resume`` you then observe.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import FaultSpecError, InjectedFault
from ..obs import FAULTS_INJECTED

logger = logging.getLogger(__name__)

#: Environment variable holding the fault specs.
FAULTS_ENV = "REPRO_FAULTS"

#: Fault kinds that fire at pipeline stage boundaries.
STAGE_FAULT_KINDS = ("raise", "hang", "kill")

#: Fault kinds handled by the distributed dispatcher / its workers.
DISPATCH_FAULT_KINDS = (
    "worker_exit", "heartbeat_drop", "partition", "stale_commit",
)

#: Recognised fault kinds.
FAULT_KINDS = STAGE_FAULT_KINDS + ("corrupt",) + DISPATCH_FAULT_KINDS

#: Exit status used by ``kill`` faults (mirrors SIGKILL's 128+9).
KILL_EXIT_CODE = 137

#: Upper bound on a ``hang`` fault, so a misconfigured test cannot wedge
#: a machine forever (per-run timeouts are expected to fire far sooner).
HANG_SECONDS = 300.0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: fire *kind* on (benchmark, stage, attempt)."""

    kind: str
    benchmark: str  # "*" matches every benchmark
    stage: str      # "*" matches every stage
    attempts: Tuple[int, ...]  # empty tuple matches every attempt

    def matches(self, benchmark: str, stage: Optional[str], attempt: int) -> bool:
        """Does this spec fire for the given site?"""
        if self.benchmark != "*" and self.benchmark != benchmark:
            return False
        if stage is not None and self.stage not in ("*", stage):
            return False
        if self.attempts and attempt not in self.attempts:
            return False
        return True


def parse_faults(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``$REPRO_FAULTS`` value into specs (raises on bad input)."""
    specs = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 4:
            raise FaultSpecError(
                f"fault spec {chunk!r} is not kind:benchmark:stage:attempts"
            )
        kind, benchmark, stage, attempts_text = (p.strip() for p in parts)
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})"
            )
        if attempts_text == "*":
            attempts: Tuple[int, ...] = ()
        else:
            try:
                attempts = tuple(
                    int(a) for a in attempts_text.split(",") if a.strip()
                )
            except ValueError as error:
                raise FaultSpecError(
                    f"bad attempt list {attempts_text!r} in {chunk!r}"
                ) from error
            if not attempts or any(a < 0 for a in attempts):
                raise FaultSpecError(
                    f"bad attempt list {attempts_text!r} in {chunk!r}"
                )
        specs.append(FaultSpec(kind, benchmark, stage, attempts))
    return tuple(specs)


# Parsed specs are cached against the exact env value so the per-stage
# hook costs one dict lookup when faults are configured and one environ
# read when they are not.
_parsed: Tuple[str, Tuple[FaultSpec, ...]] = ("", ())

#: Attempt number of the run currently executing in this process; the
#: recovery layer sets it before each (re-)attempt, workers set it from
#: their task payload.
_current_attempt = 0


def set_attempt(attempt: int) -> None:
    """Declare the attempt number of the run about to execute."""
    global _current_attempt
    _current_attempt = attempt


def current_attempt() -> int:
    """The attempt number declared via :func:`set_attempt` (default 0)."""
    return _current_attempt


def active_faults() -> Tuple[FaultSpec, ...]:
    """The specs currently configured through ``$REPRO_FAULTS``."""
    global _parsed
    text = os.environ.get(FAULTS_ENV, "")
    if text != _parsed[0]:
        _parsed = (text, parse_faults(text))
    return _parsed[1]


def dispatch_fault(kind: str, benchmark: str, attempt: int) -> bool:
    """Is a dispatch-level fault of *kind* configured for this task?

    Dispatch faults fire outside any pipeline stage — at lease grant on
    the dispatcher side (``partition``) or at task receipt on the worker
    side (``worker_exit``, ``heartbeat_drop``, ``stale_commit``) — so
    only the (benchmark, attempt) coordinates select them.
    """
    if kind not in DISPATCH_FAULT_KINDS:
        raise FaultSpecError(f"{kind!r} is not a dispatch fault kind")
    return any(
        spec.kind == kind and spec.matches(benchmark, None, attempt)
        for spec in active_faults()
    )


def fire_stage(benchmark: str, stage: str) -> None:
    """Fault hook at stage entry (called by :meth:`SuiteTiming.stage`)."""
    for spec in active_faults():
        if spec.kind not in STAGE_FAULT_KINDS:
            continue
        if not spec.matches(benchmark, stage, _current_attempt):
            continue
        logger.warning(
            "injected fault %s on %s/%s attempt %d",
            spec.kind, benchmark, stage, _current_attempt,
        )
        if spec.kind == "raise":
            raise InjectedFault(
                f"injected failure in {benchmark}/{stage} "
                f"(attempt {_current_attempt})"
            )
        if spec.kind == "hang":
            deadline = time.monotonic() + HANG_SECONDS
            while time.monotonic() < deadline:
                time.sleep(0.05)
            raise InjectedFault(
                f"injected hang in {benchmark}/{stage} outlived its "
                f"{HANG_SECONDS}s bound"
            )
        if spec.kind == "kill":
            os._exit(KILL_EXIT_CODE)


def corrupt_cache_entry(cache, key: str, benchmark: str) -> None:
    """Fault hook after a run publishes its cache entry.

    Overwrites the entry with garbage, simulating a torn write or bad
    disk; the next reader must quarantine it and recompute.
    """
    for spec in active_faults():
        if spec.kind != "corrupt":
            continue
        if not spec.matches(benchmark, None, _current_attempt):
            continue
        path = cache.path_for(key)
        if path.exists():
            logger.warning(
                "injected cache corruption for %s (attempt %d)",
                benchmark, _current_attempt,
            )
            cache.metrics.counter(FAULTS_INJECTED, site="cache").inc()
            path.write_text("{corrupted by injected fault")
