"""Seeded program families: parameterized distributions over BenchmarkSpec.

A *family* is a deterministic generator of benchmark variants along one
sampler-sensitive axis (irregular phase lengths, phase counts well above
Kmax, input-dependent control flow, multi-regime memory behaviour, large
hostile working sets).  Member ``i`` of family ``f`` is the benchmark
named ``fam:f[i]`` — the name alone fully determines the spec, the
program and the trace, so dispatcher workers (which resolve benchmarks
by name in their own process) and result caches need no side channel.

Determinism contract, pinned by tests/test_families.py:

* ``member_spec(f, i)`` is byte-identical across processes and runs —
  every random draw comes from a ``SeedSequence`` over
  ``(FAMILY_SEED_ROOT, crc32(f), i)``;
* distinct indices give distinct programs;
* the member index space is unbounded (``fam:irregular[100:200]`` is
  valid), which is what scales 16 fixed programs to campaign-size
  populations.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import HarnessError
from . import schedule as sched
from .spec import BenchmarkSpec, RegimeSpec
from .suite import (
    KB,
    MB,
    _FP_MIX,
    _FP_STREAM,
    _INT_BRANCHY,
    _INT_MIX,
    _MEM_MIX,
    _loop,
)

#: Prefix of all family benchmark names.
FAMILY_PREFIX = "fam:"

#: Root entropy of every family member; bump to re-roll all families.
FAMILY_SEED_ROOT = 0x5EED_2013

#: ``irregular`` members guarantee at least this CV of phase run lengths.
IRREGULAR_CV_FLOOR = 1.0

#: ``multi-regime`` members spread their working sets at least this much.
MULTI_REGIME_WS_SPREAD = 16

#: ``cache-hostile`` members use working sets of at least this size.
CACHE_HOSTILE_MIN_WS = 1 * MB

_MEMBER_RE = re.compile(r"^fam:([A-Za-z0-9_.-]+)\[(\d+)\]$")


@dataclass(frozen=True)
class Family:
    """One program family and the axis its members stress."""

    name: str
    description: str
    #: The behavioural axis the family sweeps, human-readable.
    axis: str
    #: Members materialised by a bare ``fam:<name>`` (slice for more).
    default_count: int
    #: ``build(index, rng) -> BenchmarkSpec`` — must draw all randomness
    #: from ``rng`` and must not read any other mutable state.
    build: Callable[[int, np.random.Generator], "BenchmarkSpec"]


def member_name(family: str, index: int) -> str:
    """The canonical benchmark name of member *index* of *family*."""
    return f"{FAMILY_PREFIX}{family}[{index}]"


def parse_member_name(text: str) -> Optional[Tuple[str, int]]:
    """``(family, index)`` when *text* is a member name, else ``None``."""
    match = _MEMBER_RE.match(text)
    if match is None:
        return None
    return match.group(1), int(match.group(2))


def member_rng(family: str, index: int) -> np.random.Generator:
    """The member's private generator; the sole source of randomness."""
    entropy = (FAMILY_SEED_ROOT, zlib.crc32(family.encode("utf-8")), index)
    return np.random.default_rng(np.random.SeedSequence(entropy))


# ----------------------------------------------------------------------
# Schedule statistics (used by builders and by the property battery)
# ----------------------------------------------------------------------
def run_lengths(schedule: Tuple[int, ...]) -> Tuple[int, ...]:
    """Lengths of the maximal same-regime runs of *schedule*."""
    lengths: List[int] = []
    previous: Optional[int] = None
    for regime in schedule:
        if regime == previous:
            lengths[-1] += 1
        else:
            lengths.append(1)
            previous = regime
    return tuple(lengths)


def run_length_cv(schedule: Tuple[int, ...]) -> float:
    """Coefficient of variation of the phase run lengths."""
    lengths = np.asarray(run_lengths(schedule), dtype=float)
    if lengths.size < 2:
        return 0.0
    mean = lengths.mean()
    return float(lengths.std() / mean) if mean > 0 else 0.0


# ----------------------------------------------------------------------
# Shared builder helpers
# ----------------------------------------------------------------------
_MIXES = (_INT_MIX, _INT_BRANCHY, _FP_MIX, _FP_STREAM, _MEM_MIX)


def _draw(rng: np.random.Generator, low: int, high: int) -> int:
    """A draw from [low, high] inclusive."""
    return int(rng.integers(low, high + 1))


def _basic_regime(
    tag: int,
    rng: np.random.Generator,
    ws_choices: Tuple[int, ...],
    branch_lo: float = 0.86,
    branch_hi: float = 0.96,
    jitter: float = 0.10,
) -> RegimeSpec:
    """A two-loop regime with knobs drawn from *rng*."""
    loops = []
    for which in ("a", "b"):
        ws = int(ws_choices[_draw(rng, 0, len(ws_choices) - 1)])
        loops.append(_loop(
            f"r{tag}{which}",
            ws,
            _MIXES[_draw(rng, 0, len(_MIXES) - 1)],
            stride=int(2 ** _draw(rng, 3, 6)),
            branch_bias=branch_lo + (branch_hi - branch_lo) * float(rng.random()),
            visits=_draw(rng, 2, 3),
            body_blocks=_draw(rng, 1, 2),
            jitter=jitter,
        ))
    return RegimeSpec(name=f"regime{tag}", loops=tuple(loops))


_MODEST_WS = (8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB)


# ----------------------------------------------------------------------
# Family builders
# ----------------------------------------------------------------------
def _build_irregular(index: int, rng: np.random.Generator) -> BenchmarkSpec:
    """Lognormal phase run lengths with a guaranteed CV floor.

    Uniform-run schedules (cyclic, staggered) have run-length CV ~0;
    samplers that assume steady phase durations go wrong exactly when
    the CV is high, so the floor is enforced deterministically: keep
    doubling the longest run until the CV clears IRREGULAR_CV_FLOOR.
    """
    n_regimes = _draw(rng, 3, 4)
    n_runs = _draw(rng, 18, 30)
    lengths = np.maximum(
        1, np.round(rng.lognormal(mean=1.1, sigma=1.2, size=n_runs))
    ).astype(int)
    lengths = np.minimum(lengths, 60)
    guard = 0
    while run_length_cv(_expand(lengths, n_regimes)) < IRREGULAR_CV_FLOOR \
            and guard < 16:
        lengths[int(np.argmax(lengths))] *= 2
        guard += 1
    schedule = _expand(lengths, n_regimes)
    regimes = tuple(
        _basic_regime(r, rng, _MODEST_WS) for r in range(n_regimes)
    )
    return BenchmarkSpec(
        name=member_name("irregular", index),
        seed=_draw(rng, 1, 2**31 - 2),
        regimes=regimes,
        schedule=schedule,
        description=f"irregular member {index}: lognormal phase run lengths",
    )


def _expand(lengths: np.ndarray, n_regimes: int) -> Tuple[int, ...]:
    """Turn run lengths into a schedule, rotating regimes run by run.

    Rotation (not random choice) guarantees no same-regime merge between
    adjacent runs — the run-length structure *is* the lengths array —
    and that every regime appears once n_runs >= n_regimes.
    """
    schedule: List[int] = []
    for run, length in enumerate(lengths):
        schedule.extend([run % n_regimes] * int(length))
    return tuple(schedule)


def _build_phase_heavy(index: int, rng: np.random.Generator) -> BenchmarkSpec:
    """Regime counts far above the coarse clustering Kmax (= 3).

    The member index drives the regime count (6..12) so the axis sweep
    is structural, not just a reroll: fam:phase-heavy[0:7] covers every
    count once.
    """
    n_regimes = 6 + index % 7
    gap = _draw(rng, 4, 7)
    n_iterations = 180 + 12 * n_regimes
    intros = tuple(r * gap for r in range(n_regimes))
    regimes = tuple(
        _basic_regime(r, rng, _MODEST_WS) for r in range(n_regimes)
    )
    return BenchmarkSpec(
        name=member_name("phase-heavy", index),
        seed=_draw(rng, 1, 2**31 - 2),
        regimes=regimes,
        schedule=sched.staggered(n_regimes, n_iterations, intros=intros),
        description=(
            f"phase-heavy member {index}: {n_regimes} regimes, Kmax-busting"
        ),
    )


def _build_input_dependent(
    index: int, rng: np.random.Generator
) -> BenchmarkSpec:
    """Data-dependent control flow: low branch bias, sticky Markov phases.

    Branch biases are drawn from [0.62, 0.85] — far below the suite's
    ~0.9 norm — and the phase walk is a Markov chain, so both the
    fine-grained BBVs and the phase sequence are input-shaped.
    """
    n_regimes = _draw(rng, 2, 4)
    stay = 0.55 + 0.25 * float(rng.random())
    markov_seed = _draw(rng, 0, 2**31 - 2)
    regimes = tuple(
        _basic_regime(
            r, rng, _MODEST_WS,
            branch_lo=0.62, branch_hi=0.85, jitter=0.25,
        )
        for r in range(n_regimes)
    )
    return BenchmarkSpec(
        name=member_name("input-dependent", index),
        seed=_draw(rng, 1, 2**31 - 2),
        regimes=regimes,
        schedule=sched.markov(
            n_regimes, _draw(rng, 160, 260),
            stay_probability=stay, seed=markov_seed,
        ),
        description=(
            f"input-dependent member {index}: branchy loops, Markov phases"
        ),
    )


def _build_multi_regime(index: int, rng: np.random.Generator) -> BenchmarkSpec:
    """Working sets log-spread across >= MULTI_REGIME_WS_SPREAD x.

    Each regime owns a different rung of the memory hierarchy (L1-fit
    through L2-busting) with its own stride, so per-phase cache
    behaviour differs by construction — the axis "Memory Access
    Vectors" identifies as what sampling must preserve.
    """
    n_regimes = 3 + index % 3
    base_ws = int((8 * KB) * 2 ** _draw(rng, 0, 2))
    spread = MULTI_REGIME_WS_SPREAD ** (1.0 / (n_regimes - 1))
    regimes = []
    for r in range(n_regimes):
        ws = int(round(base_ws * spread**r))
        stride = int(2 ** (3 + r % 4))
        regimes.append(RegimeSpec(
            name=f"regime{r}",
            loops=(
                _loop(f"r{r}a", ws, _MEM_MIX, stride=stride,
                      branch_bias=0.88 + 0.06 * float(rng.random()),
                      visits=2, body_blocks=2),
                _loop(f"r{r}b", max(4 * KB, ws // 4),
                      _MIXES[_draw(rng, 0, len(_MIXES) - 1)],
                      stride=stride, branch_bias=0.90, visits=2),
            ),
        ))
    n_iterations = _draw(rng, 160, 240)
    gap = _draw(rng, 5, 9)
    return BenchmarkSpec(
        name=member_name("multi-regime", index),
        seed=_draw(rng, 1, 2**31 - 2),
        regimes=tuple(regimes),
        schedule=sched.staggered(
            n_regimes, n_iterations,
            intros=tuple(r * gap for r in range(n_regimes)),
        ),
        description=(
            f"multi-regime member {index}: {n_regimes} working-set rungs"
        ),
    )


def _build_cache_hostile(
    index: int, rng: np.random.Generator
) -> BenchmarkSpec:
    """Every regime sweeps >= CACHE_HOSTILE_MIN_WS with large strides."""
    n_regimes = _draw(rng, 2, 3)
    regimes = []
    for r in range(n_regimes):
        ws = int(CACHE_HOSTILE_MIN_WS * 2 ** _draw(rng, 0, 2))
        regimes.append(RegimeSpec(
            name=f"regime{r}",
            loops=(
                _loop(f"r{r}a", ws, _MEM_MIX,
                      stride=int(64 * 2 ** _draw(rng, 0, 1)),
                      branch_bias=0.87 + 0.05 * float(rng.random()),
                      visits=2, sweeps=1.2),
                _loop(f"r{r}b", max(CACHE_HOSTILE_MIN_WS, ws // 2),
                      _FP_STREAM, stride=64, branch_bias=0.95, visits=1,
                      sweeps=1.2),
            ),
        ))
    return BenchmarkSpec(
        name=member_name("cache-hostile", index),
        seed=_draw(rng, 1, 2**31 - 2),
        regimes=tuple(regimes),
        schedule=sched.blocked(n_regimes, _draw(rng, 100, 140)),
        description=(
            f"cache-hostile member {index}: multi-MB sweeps, wide strides"
        ),
    )


_FAMILIES: Dict[str, Family] = {
    family.name: family
    for family in (
        Family(
            name="irregular",
            description="lognormal phase run lengths (high CV)",
            axis="phase-length irregularity",
            default_count=16,
            build=_build_irregular,
        ),
        Family(
            name="phase-heavy",
            description="6-12 regimes, far above the coarse Kmax",
            axis="phase count vs Kmax",
            default_count=16,
            build=_build_phase_heavy,
        ),
        Family(
            name="input-dependent",
            description="low branch bias + Markov phase walks",
            axis="input-dependent control flow",
            default_count=16,
            build=_build_input_dependent,
        ),
        Family(
            name="multi-regime",
            description="working sets log-spread across >= 16x",
            axis="multi-regime memory behaviour",
            default_count=16,
            build=_build_multi_regime,
        ),
        Family(
            name="cache-hostile",
            description="every phase sweeps multi-MB working sets",
            axis="cache hostility",
            default_count=16,
            build=_build_cache_hostile,
        ),
    )
}


def family_names() -> Tuple[str, ...]:
    """Registered family names, in registration order."""
    return tuple(_FAMILIES)


def get_family(name: str) -> Family:
    """The family called *name*, or a HarnessError naming the known ones."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise HarnessError(
            f"unknown benchmark family {name!r} "
            f"(known: {', '.join(_FAMILIES)})"
        ) from None


@lru_cache(maxsize=1024)
def member_spec(family: str, index: int) -> BenchmarkSpec:
    """The deterministic BenchmarkSpec of member *index* of *family*."""
    spec_family = get_family(family)
    if index < 0:
        raise HarnessError(
            f"family member index must be >= 0, got {index}"
        )
    spec = spec_family.build(index, member_rng(family, index))
    assert spec.name == member_name(family, index)
    return spec


def spec_for(name: str) -> Optional[BenchmarkSpec]:
    """The spec when *name* is a ``fam:f[i]`` member name, else ``None``."""
    member = parse_member_name(name)
    if member is None:
        return None
    return member_spec(*member)
