"""Benchmark registry: look specs up by name and cache generated workloads.

Three name shapes resolve here, so every consumer (runner, dispatcher
workers, cache keys) can go from a bare string to a spec, workload or
trace without side channels:

* suite benchmarks (``gzip``);
* family members (``fam:irregular[3]``) — generated deterministically by
  :mod:`repro.workloads.families`;
* imported traces (``import:<path>``) — validated external run-length
  streams (:mod:`repro.workloads.trace_import`).  Imported benchmarks
  carry their own unrolled arrays at the scale they were exported at, so
  :func:`load_trace` returns those verbatim and the requested scale is
  ignored for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ProgramError
from .generator import Workload, generate_workload
from .spec import BenchmarkSpec
from .suite import QUICK_SUITE_NAMES, SUITE_NAMES, build_suite, scaled_spec

#: Prefix of imported-trace benchmark names.
IMPORT_PREFIX = "import:"

_SPECS: Optional[Dict[str, BenchmarkSpec]] = None
_WORKLOADS: Dict[str, Workload] = {}


def _specs() -> Dict[str, BenchmarkSpec]:
    global _SPECS
    if _SPECS is None:
        _SPECS = build_suite()
    return _SPECS


def benchmark_names(quick: bool = False) -> List[str]:
    """Names of the suite benchmarks (canonical order)."""
    return list(QUICK_SUITE_NAMES if quick else SUITE_NAMES)


def get_spec(name: str) -> BenchmarkSpec:
    """Return the spec for benchmark *name* (suite, family or import)."""
    specs = _specs()
    if name in specs:
        return specs[name]
    from . import families

    member = families.spec_for(name)
    if member is not None:
        return member
    if name.startswith(IMPORT_PREFIX):
        from . import trace_import

        return trace_import.import_spec(name[len(IMPORT_PREFIX):])
    raise ProgramError(
        f"unknown benchmark {name!r}; known: {', '.join(sorted(specs))}, "
        f"fam:<family>[i], {IMPORT_PREFIX}<path>"
    )


def load_workload(name: str, scale: float = 1.0) -> Workload:
    """Return the (cached) generated workload for benchmark *name*.

    ``scale < 1`` returns a shrunken variant (for tests / smoke runs); scaled
    variants are cached separately.  Imported benchmarks were unrolled at
    their embedded scale, so *scale* does not apply to them.
    """
    key = name if scale == 1.0 else f"{name}@{scale:g}"
    if key not in _WORKLOADS:
        if name.startswith(IMPORT_PREFIX):
            from . import trace_import

            workload = trace_import.load_import(
                name[len(IMPORT_PREFIX):]
            ).workload
        else:
            spec = get_spec(name)
            if scale != 1.0:
                spec = scaled_spec(spec, scale)
            workload = generate_workload(spec)
        _WORKLOADS[key] = workload
    return _WORKLOADS[key]


def load_trace(
    name: str,
    scale: float = 1.0,
    backend: Optional[str] = None,
    metrics=None,
):
    """The trace of benchmark *name*: unrolled, or imported verbatim.

    Suite and family benchmarks unroll their workload's schedule
    (deterministic in the spec seed).  Imported benchmarks return the
    validated external arrays unchanged — rebuilding them would defeat
    the point of admitting foreign streams.  *metrics* (a
    :class:`~repro.obs.metrics.MetricsRegistry`) counts import
    rejections.
    """
    if name.startswith(IMPORT_PREFIX):
        from . import trace_import

        return trace_import.imported_trace(
            name[len(IMPORT_PREFIX):], metrics=metrics
        )
    from ..engine.trace import build_trace

    return build_trace(load_workload(name, scale=scale), backend=backend)


def clear_cache() -> None:
    """Drop all cached workloads and imports (mainly for tests)."""
    _WORKLOADS.clear()
    from . import trace_import

    trace_import.clear_cache()
