"""Benchmark registry: look specs up by name and cache generated workloads."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ProgramError
from .generator import Workload, generate_workload
from .spec import BenchmarkSpec
from .suite import QUICK_SUITE_NAMES, SUITE_NAMES, build_suite, scaled_spec

_SPECS: Optional[Dict[str, BenchmarkSpec]] = None
_WORKLOADS: Dict[str, Workload] = {}


def _specs() -> Dict[str, BenchmarkSpec]:
    global _SPECS
    if _SPECS is None:
        _SPECS = build_suite()
    return _SPECS


def benchmark_names(quick: bool = False) -> List[str]:
    """Names of the suite benchmarks (canonical order)."""
    return list(QUICK_SUITE_NAMES if quick else SUITE_NAMES)


def get_spec(name: str) -> BenchmarkSpec:
    """Return the spec for benchmark *name*."""
    specs = _specs()
    if name not in specs:
        raise ProgramError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(specs))}"
        )
    return specs[name]


def load_workload(name: str, scale: float = 1.0) -> Workload:
    """Return the (cached) generated workload for benchmark *name*.

    ``scale < 1`` returns a shrunken variant (for tests / smoke runs); scaled
    variants are cached separately.
    """
    key = name if scale == 1.0 else f"{name}@{scale:g}"
    if key not in _WORKLOADS:
        spec = get_spec(name)
        if scale != 1.0:
            spec = scaled_spec(spec, scale)
        _WORKLOADS[key] = generate_workload(spec)
    return _WORKLOADS[key]


def clear_cache() -> None:
    """Drop all cached workloads (mainly for tests)."""
    _WORKLOADS.clear()
