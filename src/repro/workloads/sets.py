"""Named benchmark sets and the CLI set-expression language.

Campaigns address benchmark populations the way SPEC harnesses address
their targets: by *named sets* combined with a tiny expression language
instead of exhaustive name lists.  The grammar (also in the README)::

    expr   := term (("+" | "-") term)*      left-associative
    term   := atom [ "[" slice "]" ]
    atom   := "(" expr ")" | NAME
    slice  := [INT] ":" [INT] | INT         half-open, non-negative

``+`` is order-preserving union (first occurrence wins), ``-`` removes
every occurrence of the right side from the left.  A ``NAME`` is a named
set (``all``, ``int``, ``phase-heavy``, ...), a suite benchmark
(``gzip``), a generated family (``fam:irregular``, sliced by member
index), a single family member (``fam:irregular[3]``) or an imported
trace (``import:<path>``).  Because several set names contain ``-``, the
difference operator must be surrounded by whitespace; ``+`` needs none.

Everything user-facing raises :class:`~repro.errors.HarnessError` (the
CLI's usage-error exit code 2) with a message naming what *is* known.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import HarnessError
from . import families
from .suite import QUICK_SUITE_NAMES, SUITE_NAMES, build_suite

#: Prefix of imported-trace benchmark names (see ``trace_import``).
IMPORT_PREFIX = "import:"

#: SPEC2000 integer / floating-point membership of the synthetic suite
#: (the named ``int`` / ``fp`` sets mirror the real CINT/CFP split).
INT_NAMES: Tuple[str, ...] = (
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "vortex", "bzip2",
    "twolf",
)
FP_NAMES: Tuple[str, ...] = (
    "swim", "applu", "mesa", "art", "equake", "lucas", "fma3d",
)

#: Working sets at least this large mark a benchmark ``cache-hostile``.
CACHE_HOSTILE_WS = 1024 * 1024

#: At least this many regimes marks a benchmark ``phase-heavy``.
PHASE_HEAVY_REGIMES = 4

_NAMED_SETS: Optional[Dict[str, Tuple[str, ...]]] = None


def named_sets() -> Dict[str, Tuple[str, ...]]:
    """The named sets, each an ordered tuple of suite benchmark names.

    ``int`` / ``fp`` follow the SPEC2000 split; ``phase-heavy`` and
    ``cache-hostile`` are *derived* from the specs (regime count and
    largest working set), so re-tuning the suite re-derives them.
    """
    global _NAMED_SETS
    if _NAMED_SETS is None:
        specs = build_suite()
        phase_heavy = tuple(
            name for name in SUITE_NAMES
            if len(specs[name].regimes) >= PHASE_HEAVY_REGIMES
        )
        cache_hostile = tuple(
            name for name in SUITE_NAMES
            if max(
                loop.working_set
                for regime in specs[name].regimes for loop in regime.loops
            ) >= CACHE_HOSTILE_WS
        )
        _NAMED_SETS = {
            "all": SUITE_NAMES,
            "quick": QUICK_SUITE_NAMES,
            "int": INT_NAMES,
            "fp": FP_NAMES,
            "phase-heavy": phase_heavy,
            "cache-hostile": cache_hostile,
        }
    return _NAMED_SETS


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Name:
    """A leaf: named set, benchmark, family, family member or import."""

    text: str


@dataclass(frozen=True)
class Slice:
    """``base[start:stop]`` — member indices for a bare family, a list
    slice for anything else."""

    base: "Expr"
    start: Optional[int]
    stop: Optional[int]


@dataclass(frozen=True)
class Binary:
    """``left + right`` (union) or ``left - right`` (difference)."""

    op: str
    left: "Expr"
    right: "Expr"


Expr = Union[Name, Slice, Binary]


def format_expr(expr: Expr) -> str:
    """The canonical text of *expr*; ``parse(format_expr(e)) == e``."""
    if isinstance(expr, Name):
        return expr.text
    if isinstance(expr, Slice):
        base = format_expr(expr.base)
        if isinstance(expr.base, Binary):
            base = f"({base})"
        start = "" if expr.start is None else str(expr.start)
        stop = "" if expr.stop is None else str(expr.stop)
        return f"{base}[{start}:{stop}]"
    left = format_expr(expr.left)
    right = format_expr(expr.right)
    if isinstance(expr.right, Binary):
        right = f"({right})"
    return f"{left} {expr.op} {right}"


# ----------------------------------------------------------------------
# Tokenizer + parser
# ----------------------------------------------------------------------
#: Characters a NAME token may contain (``-`` handled contextually).
_NAME_CHARS = re.compile(r"[A-Za-z0-9_.:/@]")

_SLICE_RANGE = re.compile(r"^(\d*):(\d*)$")
_SLICE_INDEX = re.compile(r"^(\d+)$")


def _tokenize(text: str) -> List[str]:
    """Split *text* into NAME, operator and bracket tokens.

    ``-`` continues a NAME when glued between two name characters
    (``phase-heavy``); standalone it is the difference operator.
    """
    tokens: List[str] = []
    current = ""
    i = 0
    while i < len(text):
        char = text[i]
        if _NAME_CHARS.match(char):
            current += char
        elif char == "-" and current and i + 1 < len(text) \
                and _NAME_CHARS.match(text[i + 1]):
            current += char
        elif char in "+-[]():" or char.isspace():
            if current:
                tokens.append(current)
                current = ""
            if char == ":":
                tokens.append(char)
            elif not char.isspace():
                tokens.append(char)
        else:
            raise HarnessError(
                f"benchmark expression {text!r}: "
                f"unexpected character {char!r} at position {i}"
            )
        i += 1
    if current:
        tokens.append(current)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise HarnessError(
                f"benchmark expression {self.text!r}: unexpected end"
            )
        self.pos += 1
        return token

    def fail(self, why: str) -> HarnessError:
        return HarnessError(f"benchmark expression {self.text!r}: {why}")

    # expr := term (("+" | "-") term)*
    def parse(self) -> Expr:
        if not self.tokens:
            raise self.fail("empty expression")
        expr = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            expr = Binary(op=op, left=expr, right=self.term())
        if self.peek() is not None:
            raise self.fail(f"unexpected token {self.peek()!r}")
        return expr

    # term := atom [ "[" slice "]" ]
    def term(self) -> Expr:
        expr = self.atom()
        while self.peek() == "[":
            self.take()
            expr = self.slice_of(expr)
        return expr

    def atom(self) -> Expr:
        token = self.take()
        if token == "(":
            expr = self.term_group()
            return expr
        if token in ("+", "-", ")", "[", "]", ":"):
            raise self.fail(f"expected a name, got {token!r}")
        return Name(token)

    def term_group(self) -> Expr:
        expr = self.term()
        while self.peek() in ("+", "-"):
            op = self.take()
            expr = Binary(op=op, left=expr, right=self.term())
        if self.take() != ")":
            raise self.fail("unbalanced '('")
        return expr

    def slice_of(self, base: Expr) -> Slice:
        inner = ""
        while True:
            token = self.peek()
            if token is None:
                raise self.fail("unclosed '['")
            self.take()
            if token == "]":
                break
            inner += token
        match = _SLICE_RANGE.match(inner)
        if match:
            start = int(match.group(1)) if match.group(1) else None
            stop = int(match.group(2)) if match.group(2) else None
            if start is not None and stop is not None and start > stop:
                raise self.fail(
                    f"slice [{inner}] has start > stop"
                )
            return Slice(base=base, start=start, stop=stop)
        match = _SLICE_INDEX.match(inner)
        if match:
            index = int(match.group(1))
            return Slice(base=base, start=index, stop=index + 1)
        raise self.fail(
            f"malformed slice [{inner}] (expected [start:stop] or [index] "
            "with non-negative integers)"
        )


def parse(text: str) -> Expr:
    """Parse a benchmark set expression into its AST."""
    if not isinstance(text, str) or not text.strip():
        raise HarnessError("empty benchmark expression")
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def _known_names_hint() -> str:
    sets = ", ".join(named_sets())
    fams = ", ".join(f"fam:{name}" for name in families.family_names())
    return (
        f"named sets: {sets}; families: {fams}; benchmarks: "
        f"{', '.join(SUITE_NAMES)}; or import:<path>"
    )


def _resolve_name(name: Name) -> List[str]:
    text = name.text
    sets = named_sets()
    if text in sets:
        return list(sets[text])
    if text in SUITE_NAMES:
        return [text]
    member = families.parse_member_name(text)
    if member is not None:
        family, index = member
        families.get_family(family)  # raises on unknown family
        return [families.member_name(family, index)]
    if text.startswith(families.FAMILY_PREFIX):
        family = families.get_family(text[len(families.FAMILY_PREFIX):])
        return [
            families.member_name(family.name, i)
            for i in range(family.default_count)
        ]
    if text.startswith(IMPORT_PREFIX):
        path = text[len(IMPORT_PREFIX):]
        if not path:
            raise HarnessError("import: needs a trace file path")
        return [text]
    raise HarnessError(
        f"unknown benchmark or set {text!r} ({_known_names_hint()})"
    )


def _is_bare_family(expr: Expr) -> Optional[str]:
    """The family name when *expr* is a bare ``fam:<family>`` leaf."""
    if isinstance(expr, Name) and expr.text.startswith(families.FAMILY_PREFIX):
        rest = expr.text[len(families.FAMILY_PREFIX):]
        if families.parse_member_name(expr.text) is None and rest:
            return rest
    return None


def _resolve(expr: Expr) -> List[str]:
    if isinstance(expr, Name):
        return _resolve_name(expr)
    if isinstance(expr, Slice):
        family = _is_bare_family(expr.base)
        if family is not None:
            # Member-index slice over the (unbounded) family index space:
            # fam:irregular[16:32] is valid beyond the default count.
            spec = families.get_family(family)
            start = expr.start if expr.start is not None else 0
            stop = expr.stop if expr.stop is not None else spec.default_count
            return [
                families.member_name(spec.name, i) for i in range(start, stop)
            ]
        return _resolve(expr.base)[expr.start:expr.stop]
    left = _resolve(expr.left)
    right = _resolve(expr.right)
    if expr.op == "+":
        merged = list(left)
        seen = set(left)
        for name in right:
            if name not in seen:
                merged.append(name)
                seen.add(name)
        return merged
    removed = set(right)
    return [name for name in left if name not in removed]


def resolve(expression: Union[str, Expr]) -> Tuple[str, ...]:
    """Resolve *expression* to an ordered, duplicate-free benchmark tuple.

    An expression that resolves to nothing is a usage error: silently
    running a 0-benchmark campaign would look like success.
    """
    expr = parse(expression) if isinstance(expression, str) else expression
    names = _resolve(expr)
    if not names:
        raise HarnessError(
            f"benchmark expression {format_expr(expr)!r} resolves to no "
            "benchmarks"
        )
    return tuple(names)


def describe_sets() -> List[Tuple[str, str]]:
    """(name, summary) rows for every named set and family (CLI listing)."""
    rows = [
        (name, ", ".join(members)) for name, members in named_sets().items()
    ]
    for name in families.family_names():
        family = families.get_family(name)
        rows.append((
            f"fam:{name}",
            f"{family.description} (axis: {family.axis}; default "
            f"{family.default_count} members, slice for more)",
        ))
    return rows
