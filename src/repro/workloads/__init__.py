"""Synthetic SPEC2000-like workload suite."""

from . import families, schedule, sets, trace_import
from .generator import InnerLayout, RegimeLayout, Workload, generate_workload
from .registry import (
    benchmark_names,
    clear_cache,
    get_spec,
    load_trace,
    load_workload,
)
from .spec import (
    HEADER_BLOCK_SIZE,
    N_NOISE_BLOCKS,
    NOISE_BLOCK_SIZE,
    BenchmarkSpec,
    InnerLoopSpec,
    RegimeSpec,
)
from .suite import QUICK_SUITE_NAMES, SUITE_NAMES, build_suite, scaled_spec

__all__ = [
    "BenchmarkSpec",
    "HEADER_BLOCK_SIZE",
    "InnerLayout",
    "InnerLoopSpec",
    "N_NOISE_BLOCKS",
    "NOISE_BLOCK_SIZE",
    "QUICK_SUITE_NAMES",
    "RegimeLayout",
    "RegimeSpec",
    "SUITE_NAMES",
    "Workload",
    "benchmark_names",
    "build_suite",
    "clear_cache",
    "families",
    "generate_workload",
    "get_spec",
    "load_trace",
    "load_workload",
    "scaled_spec",
    "schedule",
    "sets",
    "trace_import",
]
