"""External trace adapter: run-length block streams as benchmarks.

Two on-disk formats carry the canonical trace arrays
(:data:`repro.engine.trace.TRACE_ARRAY_FIELDS`):

* **JSONL** (``.jsonl``): a header line ``{"format": "repro-trace",
  "version": 1, "benchmark": ..., "scale": ..., "n_segments": ...,
  "total_instructions": ...}`` followed by one line per segment
  ``{"blocks": [...], "reps": r, "outer": o, "iter_base": b,
  "loop": l}`` — greppable, streamable, diffable.
* **flat-array** (``.npz``): the six canonical arrays plus the same
  header as a JSON string under ``meta`` — compact and loadable without
  parsing a line per segment.

A file imported as benchmark ``import:<path>`` is a first-class
benchmark: the header names the *base* benchmark (suite or family
member) and workload scale the stream was exported at, the base
workload is rebuilt deterministically from that name, and the imported
arrays are installed verbatim — so a clean export/import round-trip is
bit-identical to the original ``Trace.arrays()``.

Validation quarantines rather than trusts: any malformed or
inconsistent input raises :class:`~repro.errors.TraceImportError`
*before* anything enters the workload registry, and each rejection is
counted on ``repro_trace_import_rejected_total`` (labelled by reason).
Because the runner's workload scale cannot re-unroll someone else's
stream, imported benchmarks always run at their embedded scale; the
requested scale is ignored.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import HarnessError, TraceImportError
from ..obs.metrics import TRACE_IMPORT_REJECTED, MetricsRegistry

#: Header fields every trace file must carry.
FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1

#: Benchmark-name prefix of imported traces (mirrors ``sets.IMPORT_PREFIX``).
IMPORT_PREFIX = "import:"

_HEADER_FIELDS = (
    "format", "version", "benchmark", "scale", "n_segments",
    "total_instructions",
)


@dataclass(frozen=True)
class ImportRecord:
    """One validated import: the rebuilt base workload plus the arrays."""

    path: str
    digest: str
    benchmark: str
    scale: float
    workload: Any  # repro.workloads.generator.Workload
    arrays: Dict[str, np.ndarray]
    total_instructions: int


#: Validated imports keyed by the path as given; invalidated on digest
#: change, so editing a file in place is picked up, not stale-served.
_IMPORTS: Dict[str, ImportRecord] = {}


def clear_cache() -> None:
    """Drop all cached imports (mainly for tests)."""
    _IMPORTS.clear()


def _reject(
    metrics: Optional[MetricsRegistry], reason: str, message: str
) -> None:
    """Count the rejection and quarantine the input (raise)."""
    if metrics is not None:
        metrics.counter(TRACE_IMPORT_REJECTED, reason=reason).inc()
    raise TraceImportError(message)


def _format_of(path: Path) -> str:
    if path.suffix == ".jsonl":
        return "jsonl"
    if path.suffix == ".npz":
        return "npz"
    raise HarnessError(
        f"trace file {path} must end in .jsonl or .npz"
    )


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def export_trace(trace, path, benchmark: str, scale: float = 1.0) -> Path:
    """Write *trace* to *path* in the format its suffix selects.

    *benchmark* and *scale* name the workload the stream unrolled from —
    they are what import uses to rebuild the base program, so they must
    be resolvable by the registry on the importing side.
    """
    path = Path(path)
    fmt = _format_of(path)
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "benchmark": benchmark,
        "scale": scale,
        "n_segments": int(trace.n_segments),
        "total_instructions": int(trace.total_instructions),
    }
    arrays = trace.arrays()
    if fmt == "npz":
        np.savez_compressed(
            path, meta=np.array([json.dumps(header)]), **arrays
        )
        return path
    offsets = np.concatenate(
        ([0], np.cumsum(arrays["blocks_per_segment"]))
    )
    with path.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        flat = arrays["flat_blocks"]
        for i in range(int(trace.n_segments)):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            handle.write(json.dumps({
                "blocks": [int(b) for b in flat[lo:hi]],
                "reps": int(arrays["reps"][i]),
                "outer": int(arrays["outer_index"][i]),
                "iter_base": int(arrays["iter_base"][i]),
                "loop": int(arrays["loop_id"][i]),
            }) + "\n")
    return path


# ----------------------------------------------------------------------
# Parsing (format -> header + raw arrays, no semantic checks yet)
# ----------------------------------------------------------------------
def _parse_jsonl(
    raw: bytes, metrics: Optional[MetricsRegistry], where: str
) -> Tuple[dict, Dict[str, np.ndarray]]:
    lines = raw.decode("utf-8", errors="replace").splitlines()
    if not lines:
        _reject(metrics, "empty", f"{where}: empty trace file")
    try:
        header = json.loads(lines[0])
    except ValueError:
        _reject(metrics, "bad_json", f"{where}: unparseable header line")
    if not isinstance(header, dict):
        _reject(metrics, "bad_header", f"{where}: header is not an object")
    flat, nblocks, reps, outer, iter_base, loop = [], [], [], [], [], []
    for n, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            seg = json.loads(line)
            blocks = seg["blocks"]
            if not isinstance(blocks, list):
                raise TypeError("blocks must be a list")
            flat.extend(int(b) for b in blocks)
            nblocks.append(len(blocks))
            reps.append(int(seg["reps"]))
            outer.append(int(seg.get("outer", -1)))
            iter_base.append(int(seg.get("iter_base", 0)))
            loop.append(int(seg.get("loop", -1)))
        except (ValueError, TypeError, KeyError) as err:
            _reject(
                metrics, "bad_segment",
                f"{where}:{n}: unparseable segment line ({err})",
            )
    arrays = {
        "flat_blocks": np.array(flat, dtype=np.int64),
        "blocks_per_segment": np.array(nblocks, dtype=np.int64),
        "reps": np.array(reps, dtype=np.int64),
        "outer_index": np.array(outer, dtype=np.int64),
        "iter_base": np.array(iter_base, dtype=np.int64),
        "loop_id": np.array(loop, dtype=np.int64),
    }
    return header, arrays


def _parse_npz(
    path: Path, metrics: Optional[MetricsRegistry], where: str
) -> Tuple[dict, Dict[str, np.ndarray]]:
    from ..engine.trace import TRACE_ARRAY_FIELDS

    try:
        with np.load(path, allow_pickle=False) as bundle:
            names = set(bundle.files)
            missing = ({"meta", *TRACE_ARRAY_FIELDS}) - names
            if missing:
                _reject(
                    metrics, "missing_arrays",
                    f"{where}: missing entries {sorted(missing)}",
                )
            header = json.loads(str(bundle["meta"][0]))
            arrays = {
                field: np.asarray(bundle[field], dtype=np.int64)
                for field in TRACE_ARRAY_FIELDS
            }
    except TraceImportError:
        raise
    except Exception as err:  # zipfile/json/dtype failures alike
        _reject(metrics, "bad_npz", f"{where}: unreadable npz ({err})")
    if not isinstance(header, dict):
        _reject(metrics, "bad_header", f"{where}: meta is not an object")
    return header, arrays


# ----------------------------------------------------------------------
# Validation + workload rebuild
# ----------------------------------------------------------------------
def _validate_header(
    header: dict, metrics: Optional[MetricsRegistry], where: str
) -> None:
    missing = [f for f in _HEADER_FIELDS if f not in header]
    if missing:
        _reject(
            metrics, "bad_header",
            f"{where}: header missing fields {missing}",
        )
    if header["format"] != FORMAT_NAME:
        _reject(
            metrics, "bad_format",
            f"{where}: format {header['format']!r} is not {FORMAT_NAME!r}",
        )
    if header["version"] != FORMAT_VERSION:
        _reject(
            metrics, "bad_version",
            f"{where}: version {header['version']!r} is not "
            f"{FORMAT_VERSION}",
        )


def _validate_against(
    workload,
    header: dict,
    arrays: Dict[str, np.ndarray],
    metrics: Optional[MetricsRegistry],
    where: str,
) -> int:
    """Semantic checks against the rebuilt base workload.

    Returns the recomputed total instruction count (must equal the
    header's, so truncation or rep tampering cannot slip through).
    """
    n = len(arrays["reps"])
    if n == 0:
        _reject(metrics, "empty", f"{where}: trace has no segments")
    if n != int(header["n_segments"]):
        _reject(
            metrics, "segment_count",
            f"{where}: header says {header['n_segments']} segments, "
            f"file has {n}",
        )
    for field in ("blocks_per_segment", "reps", "outer_index", "iter_base",
                  "loop_id"):
        if len(arrays[field]) != n:
            _reject(
                metrics, "length_mismatch",
                f"{where}: array {field!r} length {len(arrays[field])} "
                f"!= {n}",
            )
    if int(arrays["blocks_per_segment"].sum()) != len(arrays["flat_blocks"]):
        _reject(
            metrics, "length_mismatch",
            f"{where}: flat_blocks length inconsistent with "
            "blocks_per_segment",
        )
    if (arrays["blocks_per_segment"] < 1).any():
        _reject(metrics, "bad_segment", f"{where}: segment with no blocks")
    if (arrays["reps"] < 1).any():
        _reject(metrics, "bad_reps", f"{where}: segment reps must be >= 1")
    if (arrays["iter_base"] < 0).any():
        _reject(metrics, "bad_segment",
                f"{where}: negative iter_base")
    n_blocks = len(workload.program.block_sizes)
    flat = arrays["flat_blocks"]
    if flat.size and (
        int(flat.min()) < 0 or int(flat.max()) >= n_blocks
    ):
        _reject(
            metrics, "block_range",
            f"{where}: block ids outside the base program's "
            f"[0, {n_blocks}) range",
        )
    n_outer = workload.spec.n_outer_iterations
    outer = arrays["outer_index"]
    if int(outer.min()) < -1 or int(outer.max()) >= n_outer:
        _reject(
            metrics, "outer_range",
            f"{where}: outer_index outside [-1, {n_outer})",
        )
    offsets = np.concatenate(([0], np.cumsum(arrays["blocks_per_segment"])))
    rep_lengths = np.add.reduceat(
        workload.program.block_sizes[flat], offsets[:-1]
    )
    total = int((rep_lengths * arrays["reps"]).sum())
    if total != int(header["total_instructions"]):
        _reject(
            metrics, "total_mismatch",
            f"{where}: recomputed {total} instructions, header claims "
            f"{header['total_instructions']}",
        )
    return total


def load_import(
    path_text: str, metrics: Optional[MetricsRegistry] = None
) -> ImportRecord:
    """Validate (and cache) the trace file at *path_text*.

    Missing files are a usage error (:class:`HarnessError`, CLI exit 2);
    present-but-invalid files are quarantined
    (:class:`TraceImportError`, counted).
    """
    from .registry import load_workload

    path = Path(path_text)
    if not path.is_file():
        raise HarnessError(f"trace file not found: {path}")
    raw = path.read_bytes()
    digest = hashlib.sha256(raw).hexdigest()
    cached = _IMPORTS.get(path_text)
    if cached is not None and cached.digest == digest:
        return cached

    where = str(path)
    if _format_of(path) == "jsonl":
        header, arrays = _parse_jsonl(raw, metrics, where)
    else:
        header, arrays = _parse_npz(path, metrics, where)
    _validate_header(header, metrics, where)

    base = header["benchmark"]
    scale = float(header["scale"])
    if isinstance(base, str) and base.startswith(IMPORT_PREFIX):
        _reject(
            metrics, "recursive_base",
            f"{where}: base benchmark cannot itself be an import",
        )
    try:
        base_workload = load_workload(base, scale=scale)
    except TraceImportError:
        raise
    except Exception as err:
        _reject(
            metrics, "unknown_base",
            f"{where}: cannot rebuild base benchmark {base!r} at scale "
            f"{scale:g} ({err})",
        )
    total = _validate_against(base_workload, header, arrays, metrics, where)

    # The imported benchmark is the base workload renamed (the top-level
    # name is cosmetic to the program, so block identity is preserved)
    # with the content digest in the description — result-cache keys
    # fingerprint the spec repr, so editing the file invalidates them.
    from .generator import generate_workload

    spec = base_workload.spec
    renamed = replace(
        spec,
        name=f"{IMPORT_PREFIX}{path_text}",
        description=(
            f"imported from {path} (base {base!r} @ {scale:g}, "
            f"sha256 {digest[:16]})"
        ),
    )
    record = ImportRecord(
        path=path_text,
        digest=digest,
        benchmark=base,
        scale=scale,
        workload=generate_workload(renamed),
        arrays=arrays,
        total_instructions=total,
    )
    _IMPORTS[path_text] = record
    return record


def import_spec(path_text: str, metrics: Optional[MetricsRegistry] = None):
    """The (renamed, digest-stamped) spec of the import at *path_text*."""
    return load_import(path_text, metrics).workload.spec


def imported_trace(
    path_text: str, metrics: Optional[MetricsRegistry] = None
):
    """The import's :class:`~repro.engine.trace.Trace`, arrays verbatim."""
    from ..engine.trace import Trace
    from ..errors import TraceError

    record = load_import(path_text, metrics)
    try:
        return Trace(record.workload, arrays=record.arrays)
    except TraceError as err:
        _reject(
            metrics, "inconsistent",
            f"{record.path}: arrays rejected by trace model ({err})",
        )
