"""Turn a :class:`~repro.workloads.spec.BenchmarkSpec` into a program.

The generated layout is what the trace builder unrolls:

* a short straight-line prologue plus a tiny *init loop* — a real top-level
  cyclic structure whose dynamic coverage is far below the paper's 1%
  floor, exercising COASTS' boundary-collection filter;
* one *outer loop* (the main top-level cyclic structure) whose header runs
  once per outer iteration;
* per regime, per inner loop: a header block plus ``body_blocks`` body
  blocks bound to the loop's own memory region, stride and branch bias;
* a handful of shared *noise* blocks sprinkled between inner-loop visits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..isa.builder import InstructionMix, ProgramBuilder
from ..isa.program import Program
from .spec import (
    HEADER_BLOCK_SIZE,
    N_NOISE_BLOCKS,
    NOISE_BLOCK_SIZE,
    BenchmarkSpec,
    InnerLoopSpec,
    RegimeSpec,
)

#: Instruction mix used for glue (header / prologue) blocks: pure control.
_GLUE_MIX = InstructionMix(load=0.0, store=0.0, fp=0.0, mul_div=0.0)

#: Mix of the data-initialisation scan blocks (store-heavy).
_INIT_MIX = InstructionMix(load=0.10, store=0.40, fp=0.0, mul_div=0.0)


def _mem_instructions_per_block(loop_spec: InnerLoopSpec) -> int:
    """Memory instructions the builder will emit per body block."""
    return loop_spec.mem_instructions_per_block


@dataclass(frozen=True)
class InnerLayout:
    """Static placement of one inner loop."""

    spec: InnerLoopSpec
    header_block: int
    body_blocks: Tuple[int, ...]
    loop_id: int
    region_id: int

    @property
    def body_instructions(self) -> int:
        """Instructions executed by one iteration of the loop body."""
        return self.spec.body_blocks * self.spec.block_size


@dataclass(frozen=True)
class RegimeLayout:
    """Static placement of one regime."""

    spec: RegimeSpec
    loops: Tuple[InnerLayout, ...]


@dataclass(frozen=True)
class Workload:
    """A spec together with its generated program and placements."""

    spec: BenchmarkSpec
    program: Program
    regime_layouts: Tuple[RegimeLayout, ...]
    outer_header: int
    outer_loop_id: int
    prologue_blocks: Tuple[int, ...]
    init_loop_header: int
    init_loop_body: int
    init_loop_id: int
    noise_blocks: Tuple[int, ...]
    #: (block_id, reps) pairs that initialise every data region once in the
    #: prologue, as real programs do before their main loops.
    init_scans: Tuple[Tuple[int, int], ...] = ()

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.spec.name


def generate_workload(spec: BenchmarkSpec) -> Workload:
    """Generate the static program and layout for *spec*."""
    builder = ProgramBuilder(spec.name, seed=spec.seed)

    # --- prologue ----------------------------------------------------
    init_region = builder.add_region("init", 4096)
    prologue: List[int] = [
        builder.add_block(
            "init.setup0", 16, mix=InstructionMix(load=0.1, store=0.2),
            region=init_region, stride=8, terminator="jump",
        ),
        builder.add_block(
            "init.setup1", 14, mix=_GLUE_MIX, terminator="jump",
        ),
    ]
    init_header = builder.add_block(
        "init.loop.header", HEADER_BLOCK_SIZE, mix=_GLUE_MIX, terminator="jump"
    )
    init_body = builder.add_block(
        "init.loop.body", 30, mix=InstructionMix(load=0.25, store=0.1),
        region=init_region, stride=8, branch_bias=0.95, terminator="branch",
    )
    init_loop_id = builder.add_loop(init_header, [init_header, init_body])

    # --- outer loop header -------------------------------------------
    outer_header = builder.add_block(
        "outer.header", HEADER_BLOCK_SIZE, mix=_GLUE_MIX, terminator="jump"
    )
    outer_blocks: List[int] = [outer_header]

    # --- noise blocks -------------------------------------------------
    noise_region = builder.add_region("noise", 8 * 1024)
    noise_blocks: List[int] = []
    for i in range(N_NOISE_BLOCKS):
        noise_blocks.append(
            builder.add_block(
                f"noise.b{i}", NOISE_BLOCK_SIZE,
                mix=InstructionMix(load=0.2, store=0.05),
                region=noise_region, stride=16, branch_bias=0.7,
                terminator="branch",
            )
        )
    outer_blocks.extend(noise_blocks)

    # --- data regions (shared regions resolved benchmark-wide) ----------
    # Loops naming the same `region` operate on the same data, sized to the
    # largest declared working set; each region gets a one-time store sweep
    # in the prologue (programs initialise their arrays before the main
    # loops, so first iteration instances are not artificially all-cold).
    region_sizes: Dict[str, int] = {}
    for regime in spec.regimes:
        for loop_spec in regime.loops:
            key = loop_spec.region or f"{regime.name}.{loop_spec.name}"
            region_sizes[key] = max(
                region_sizes.get(key, 0), loop_spec.working_set
            )
    region_ids: Dict[str, int] = {}
    init_scans: List[Tuple[int, int]] = []
    for key, size in region_sizes.items():
        shared_region = builder.add_region(f"{key}.data", size)
        region_ids[key] = shared_region
        scan_block = builder.add_block(
            f"init.scan.{key}", 16, mix=_INIT_MIX, region=shared_region,
            stride=32, offset_step=max(8, size // 8),
            branch_bias=0.98, terminator="branch",
        )
        init_scans.append((scan_block, max(1, size // (8 * 32))))

    # --- regimes -------------------------------------------------------
    regime_layouts: List[RegimeLayout] = []
    outer_loop_members: List[int] = list(outer_blocks)
    pending_loops: List[Tuple[InnerLayout, List[int]]] = []
    for regime in spec.regimes:
        inner_layouts: List[InnerLayout] = []
        for loop_spec in regime.loops:
            key = loop_spec.region or f"{regime.name}.{loop_spec.name}"
            region_id = region_ids[key]
            header = builder.add_block(
                f"{regime.name}.{loop_spec.name}.header",
                HEADER_BLOCK_SIZE, mix=_GLUE_MIX, terminator="jump",
            )
            body: List[int] = []
            mem_per_block = _mem_instructions_per_block(loop_spec)
            # Memory instructions partition the region: instruction i starts
            # at offset i * ws/k and walks forward by `stride` per iteration,
            # so one visit's footprint is ~ k * iterations * stride bytes,
            # re-swept identically on every visit (temporal locality).
            offset_step = max(
                8, loop_spec.working_set // max(1, mem_per_block)
            )
            for b in range(loop_spec.body_blocks):
                body.append(
                    builder.add_block(
                        f"{regime.name}.{loop_spec.name}.b{b}",
                        loop_spec.block_size,
                        mix=loop_spec.mix,
                        region=region_id,
                        stride=loop_spec.stride,
                        offset_step=offset_step,
                        branch_bias=loop_spec.branch_bias,
                        terminator="branch",
                    )
                )
            members = [header] + body
            layout = InnerLayout(
                spec=loop_spec,
                header_block=header,
                body_blocks=tuple(body),
                loop_id=-1,  # patched below once the outer loop exists
                region_id=region_id,
            )
            pending_loops.append((layout, members))
            inner_layouts.append(layout)
            outer_loop_members.extend(members)
        regime_layouts.append(RegimeLayout(spec=regime, loops=tuple(inner_layouts)))

    outer_loop_id = builder.add_loop(outer_header, outer_loop_members)

    # Register inner loops as children of the outer loop and patch loop ids.
    patched_regimes: List[RegimeLayout] = []
    pending_index = 0
    for regime_layout in regime_layouts:
        patched_inner: List[InnerLayout] = []
        for inner in regime_layout.loops:
            layout, members = pending_loops[pending_index]
            pending_index += 1
            loop_id = builder.add_loop(
                layout.header_block, members, parent=outer_loop_id
            )
            patched_inner.append(
                InnerLayout(
                    spec=layout.spec,
                    header_block=layout.header_block,
                    body_blocks=layout.body_blocks,
                    loop_id=loop_id,
                    region_id=layout.region_id,
                )
            )
        patched_regimes.append(
            RegimeLayout(spec=regime_layout.spec, loops=tuple(patched_inner))
        )

    _add_edges(builder, prologue, init_header, init_body, outer_header,
               patched_regimes, noise_blocks)

    program = builder.build(entry=prologue[0])
    return Workload(
        spec=spec,
        program=program,
        regime_layouts=tuple(patched_regimes),
        outer_header=outer_header,
        outer_loop_id=outer_loop_id,
        prologue_blocks=tuple(prologue),
        init_loop_header=init_header,
        init_loop_body=init_body,
        init_loop_id=init_loop_id,
        noise_blocks=tuple(noise_blocks),
        init_scans=tuple(init_scans),
    )


def _add_edges(
    builder: ProgramBuilder,
    prologue: List[int],
    init_header: int,
    init_body: int,
    outer_header: int,
    regimes: List[RegimeLayout],
    noise_blocks: List[int],
) -> None:
    """Record a plausible CFG over the generated blocks."""
    builder.add_edge(prologue[0], prologue[1])
    builder.add_edge(prologue[1], init_header)
    builder.add_edge(init_header, init_body)
    builder.add_edge(init_body, init_header)
    builder.add_edge(init_body, outer_header)
    for regime_layout in regimes:
        for inner in regime_layout.loops:
            builder.add_edge(outer_header, inner.header_block)
            chain = [inner.header_block, *inner.body_blocks]
            for src, dst in zip(chain, chain[1:]):
                builder.add_edge(src, dst)
            builder.add_edge(inner.body_blocks[-1], inner.header_block)
            builder.add_edge(inner.body_blocks[-1], outer_header)
            for noise in noise_blocks:
                builder.add_edge(inner.body_blocks[-1], noise)
    for noise in noise_blocks:
        builder.add_edge(noise, outer_header)
