"""Benchmark specifications.

A benchmark is described declaratively: a set of behaviour *regimes* (the
ground-truth coarse phases), each composed of inner loops with their own
instruction mix, working set, stride and branch predictability; plus a
*schedule* assigning a regime to every outer-loop iteration and a per-
iteration size multiplier.  The generator turns a spec into a static
:class:`~repro.isa.program.Program`, and the trace builder unrolls the
schedule into the dynamic instruction stream.

The suite in :mod:`repro.workloads.suite` tunes these specs so the phase
facts published in the paper hold (coarse phase counts, last-point
positions, gcc's dominant iteration, lucas's smooth coarse / chaotic fine
BBV curves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ProgramError
from ..isa.builder import InstructionMix

#: Instructions in a loop-header (glue) block.
HEADER_BLOCK_SIZE = 6

#: Instructions in a noise block.
NOISE_BLOCK_SIZE = 12

#: Number of shared noise blocks per benchmark.
N_NOISE_BLOCKS = 4


@dataclass(frozen=True)
class InnerLoopSpec:
    """One inner loop of a regime.

    ``iterations`` is the mean trip count per visit; ``jitter`` the sigma of
    the lognormal factor applied per visit; ``visits`` how many times the
    loop is (re-)entered per outer iteration — visits of different inner
    loops are interleaved round-robin, which is what makes fine-grained
    fixed-size intervals look chaotic while the whole outer iteration stays
    stable.
    """

    name: str
    body_blocks: int = 3
    block_size: int = 24
    iterations: int = 200
    jitter: float = 0.10
    mix: InstructionMix = field(default_factory=InstructionMix)
    working_set: int = 64 * 1024
    stride: int = 8
    branch_bias: float = 0.92
    visits: int = 1
    #: Name of a benchmark-wide shared data region; loops of different
    #: regimes naming the same region operate on the same data (as real
    #: programs' phases do on shared arrays).  None = private region.
    region: Optional[str] = None

    def __post_init__(self) -> None:
        if self.body_blocks < 1:
            raise ProgramError(f"loop {self.name!r}: needs at least one body block")
        if self.block_size < 4:
            raise ProgramError(f"loop {self.name!r}: block_size too small")
        if self.iterations < 1 or self.visits < 1:
            raise ProgramError(f"loop {self.name!r}: iterations/visits must be >= 1")
        if self.jitter < 0:
            raise ProgramError(f"loop {self.name!r}: jitter must be non-negative")
        if self.working_set <= 0 or self.stride <= 0:
            raise ProgramError(f"loop {self.name!r}: bad memory behaviour")
        if not 0.0 <= self.branch_bias <= 1.0:
            raise ProgramError(f"loop {self.name!r}: branch_bias out of range")

    @property
    def instructions_per_visit(self) -> float:
        """Expected dynamic instructions of one visit (header included)."""
        return HEADER_BLOCK_SIZE + self.iterations * self.body_blocks * self.block_size

    @property
    def mem_instructions_per_block(self) -> int:
        """Memory instructions per body block implied by the mix."""
        body = max(1, self.block_size - 1)
        return max(1, int(round(body * (self.mix.load + self.mix.store))))

    @property
    def footprint_bytes(self) -> int:
        """Approximate cache footprint one visit touches.

        Memory instructions partition the region and each advances by
        ``stride`` per iteration, so a visit spans about
        ``k * iterations * stride`` bytes, capped by the region size.
        """
        span = self.mem_instructions_per_block * self.iterations * self.stride
        return min(self.working_set, span)


@dataclass(frozen=True)
class RegimeSpec:
    """A behaviour regime: the inner loops active while the regime runs."""

    name: str
    loops: Tuple[InnerLoopSpec, ...]

    def __post_init__(self) -> None:
        if not self.loops:
            raise ProgramError(f"regime {self.name!r} has no loops")
        names = [loop.name for loop in self.loops]
        if len(set(names)) != len(names):
            raise ProgramError(f"regime {self.name!r}: duplicate loop names")

    @property
    def instructions_per_iteration(self) -> float:
        """Expected dynamic instructions of one outer iteration."""
        return sum(l.visits * l.instructions_per_visit for l in self.loops)


@dataclass(frozen=True)
class BenchmarkSpec:
    """A full benchmark: regimes plus the outer-iteration schedule."""

    name: str
    seed: int
    regimes: Tuple[RegimeSpec, ...]
    schedule: Tuple[int, ...]
    iteration_scale: Tuple[float, ...] = ()
    noise: float = 0.02
    prologue_iterations: int = 2
    description: str = ""

    def __post_init__(self) -> None:
        if not self.regimes:
            raise ProgramError(f"benchmark {self.name!r}: no regimes")
        if not self.schedule:
            raise ProgramError(f"benchmark {self.name!r}: empty schedule")
        for regime_index in self.schedule:
            if not 0 <= regime_index < len(self.regimes):
                raise ProgramError(
                    f"benchmark {self.name!r}: schedule references regime "
                    f"{regime_index}"
                )
        if self.iteration_scale and len(self.iteration_scale) != len(self.schedule):
            raise ProgramError(
                f"benchmark {self.name!r}: iteration_scale length must match "
                "schedule length"
            )
        if any(s <= 0 for s in self.iteration_scale):
            raise ProgramError(f"benchmark {self.name!r}: non-positive scale")
        if not 0.0 <= self.noise <= 1.0:
            raise ProgramError(f"benchmark {self.name!r}: noise out of range")
        if self.prologue_iterations < 0:
            raise ProgramError(f"benchmark {self.name!r}: bad prologue")
        names = [r.name for r in self.regimes]
        if len(set(names)) != len(names):
            raise ProgramError(f"benchmark {self.name!r}: duplicate regime names")

    @property
    def n_outer_iterations(self) -> int:
        """Number of outer-loop iterations."""
        return len(self.schedule)

    def scale_of(self, outer_index: int) -> float:
        """Size multiplier of the given outer iteration (default 1.0)."""
        if self.iteration_scale:
            return self.iteration_scale[outer_index]
        return 1.0

    @property
    def expected_instructions(self) -> float:
        """Rough expected dynamic instruction count of the whole run."""
        total = 0.0
        for i, regime_index in enumerate(self.schedule):
            regime = self.regimes[regime_index]
            total += regime.instructions_per_iteration * self.scale_of(i)
        return total

    def regime_first_positions(self) -> Tuple[float, ...]:
        """Fraction of instructions completed at the *end* of each regime's
        first scheduled iteration — a design-time proxy for where COASTS will
        place its last simulation point."""
        total = self.expected_instructions
        seen = {}
        done = 0.0
        for i, regime_index in enumerate(self.schedule):
            regime = self.regimes[regime_index]
            done += regime.instructions_per_iteration * self.scale_of(i)
            if regime_index not in seen:
                seen[regime_index] = done / total
        return tuple(seen[r] for r in sorted(seen))
