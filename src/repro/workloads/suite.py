"""The SPEC2000-like benchmark suite.

Each entry is a synthetic analogue of a SPEC2000 benchmark (see DESIGN.md,
"Substitutions").  The specs are tuned so the phase facts the paper reports
hold by construction:

* coarse-grained phase counts: average ~3; gzip 4, equake 6, fma3d 5
  (Section III-B);
* position of the last coarse simulation point: early but non-zero for most
  benchmarks, ~86% for gcc, ~47% for art, ~36% for bzip2 (Section III-B);
* gcc: 56 outer iterations with wildly varying sizes, one of which holds
  ~60% of the dynamic instructions (Section V-A);
* lucas: smooth coarse-grained behaviour but chaotic fine-grained behaviour
  (Figure 1) — several dissimilar inner loops alternate within each outer
  iteration.

Loop trip counts are *derived* from the loop's working set: a visit sweeps
its working set ``sweeps`` times (``iterations = sweeps * ws / (k * stride)``
with ``k`` memory instructions per block), so cache behaviour is stationary
across iteration instances — phases look like phases to the caches, not just
to the BBVs.  Instruction counts are scaled 250:1 against the paper (see
:mod:`repro.config`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..isa.builder import InstructionMix
from . import schedule as sched
from .spec import BenchmarkSpec, InnerLoopSpec, RegimeSpec

KB = 1024
MB = 1024 * KB

#: Upper bound on instructions per inner-loop visit (see _loop).
MAX_VISIT_INSTRUCTIONS = 3000

#: Instruction mixes by flavour.
_INT_MIX = InstructionMix(load=0.22, store=0.10, fp=0.0, mul_div=0.03)
_INT_BRANCHY = InstructionMix(load=0.18, store=0.08, fp=0.0, mul_div=0.02)
_FP_MIX = InstructionMix(load=0.28, store=0.12, fp=0.30, mul_div=0.02)
_FP_STREAM = InstructionMix(load=0.32, store=0.16, fp=0.28, mul_div=0.01)
_MEM_MIX = InstructionMix(load=0.34, store=0.12, fp=0.0, mul_div=0.02)


def _loop(
    name: str,
    working_set: int,
    mix: InstructionMix = _INT_MIX,
    stride: int = 8,
    branch_bias: float = 0.92,
    visits: int = 2,
    body_blocks: int = 1,
    block_size: int = 24,
    jitter: float = 0.10,
    sweeps: float = 1.5,
    region: str = None,
) -> InnerLoopSpec:
    """Inner-loop constructor deriving trip counts from the working set.

    ``iterations = sweeps * working_set / (k * stride)`` where ``k`` is the
    memory instructions per body block, so each visit touches the whole
    working set about ``sweeps`` times.
    """
    body = max(1, block_size - 1)
    k = max(1, round(body * (mix.load + mix.store)))
    if working_set >= 512 * KB and sweeps >= 1.0:
        # Loops over multi-megabyte data are sparse traversals (pointer
        # chasing, indexed gathers): each visit touches a subset of the
        # footprint, in many short visits, instead of sweeping all of it.
        sweeps = 0.15
        visits = min(visits * 4, 8)
    iterations = max(40, round(sweeps * working_set / (k * stride)))
    # Cap the visit length: fine-grained intervals must average over many
    # visits (as the paper's 10M intervals do over real inner loops), or a
    # 2.5K-instruction interval would resolve individual visits and turn
    # fine-grained point selection into a cold-vs-warm-visit lottery.
    visit_insts = iterations * body_blocks * block_size
    if visit_insts > MAX_VISIT_INSTRUCTIONS:
        factor = -(-visit_insts // MAX_VISIT_INSTRUCTIONS)  # ceil div
        iterations = max(30, round(iterations / factor))
        visits = visits * factor
    return InnerLoopSpec(
        name=name,
        body_blocks=body_blocks,
        block_size=block_size,
        iterations=iterations,
        jitter=jitter,
        mix=mix,
        working_set=working_set,
        stride=stride,
        branch_bias=branch_bias,
        visits=visits,
        region=region,
    )


def _regime(name: str, *loops: InnerLoopSpec) -> RegimeSpec:
    return RegimeSpec(name=name, loops=tuple(loops))


def _gzip() -> BenchmarkSpec:
    """gzip: 4 coarse phases (deflate/inflate over different corpora)."""
    regimes = (
        _regime(
            "deflate_text",
            _loop("hash", 64 * KB, _INT_MIX, stride=32, branch_bias=0.88,
                  visits=3),
            _loop("match", 16 * KB, _INT_BRANCHY, stride=8, branch_bias=0.82,
                  visits=2, body_blocks=2),
            _loop("emit", 8 * KB, _INT_MIX, stride=8, branch_bias=0.95,
                  visits=4),
        ),
        _regime(
            "deflate_bin",
            _loop("hash2", 128 * KB, _INT_MIX, stride=32, branch_bias=0.85,
                  visits=2),
            _loop("match2", 32 * KB, _INT_BRANCHY, stride=16, branch_bias=0.78,
                  visits=2, body_blocks=2),
        ),
        _regime(
            "inflate",
            _loop("decode", 16 * KB, _INT_MIX, stride=8, branch_bias=0.90,
                  visits=3, body_blocks=2),
            _loop("copy", 96 * KB, _MEM_MIX, stride=32, branch_bias=0.97,
                  visits=2),
        ),
        _regime(
            "crc",
            _loop("crc", 4 * KB, _INT_MIX, stride=8, branch_bias=0.99,
                  visits=4, body_blocks=2),
            _loop("scan", 256 * KB, _MEM_MIX, stride=32, branch_bias=0.93,
                  visits=2),
        ),
    )
    return BenchmarkSpec(
        name="gzip", seed=101, regimes=regimes,
        schedule=sched.staggered(4, 1008, intros=(0, 7, 14, 21)),
        description="compression: 4 coarse phases, all early",
    )


def _vpr() -> BenchmarkSpec:
    regimes = (
        _regime(
            "place",
            _loop("swap", 64 * KB, _INT_BRANCHY, stride=16, branch_bias=0.80,
                  visits=3),
            _loop("cost", 32 * KB, _FP_MIX, branch_bias=0.94, visits=2,
                  body_blocks=2),
        ),
        _regime(
            "route",
            _loop("expand", 256 * KB, _MEM_MIX, stride=32, branch_bias=0.86,
                  visits=2),
            _loop("trace", 64 * KB, _INT_MIX, stride=8, branch_bias=0.90,
                  visits=2, body_blocks=2),
        ),
    )
    return BenchmarkSpec(
        name="vpr", seed=102, regimes=regimes,
        schedule=sched.staggered(2, 750, intros=(0, 9)),
        description="FPGA place & route, 2 phases",
    )


def _gcc() -> BenchmarkSpec:
    """gcc: 56 outer iterations; one holds ~60% of all instructions.

    The dominant iteration runs a regime seen nowhere else, so its coarse
    phase is first classified at ~86% of the run and COASTS alone must
    detail-simulate 60% of the program (Section V-A).
    """
    regimes = (
        _regime(
            "parse",
            _loop("lex", 32 * KB, _INT_BRANCHY, branch_bias=0.84, visits=3,
                  body_blocks=2),
            _loop("tree", 128 * KB, _INT_MIX, stride=16, branch_bias=0.88,
                  visits=2),
        ),
        _regime(
            "rtl",
            _loop("gen", 64 * KB, _INT_MIX, branch_bias=0.90, visits=3,
                  body_blocks=2),
            _loop("jump_opt", 16 * KB, _INT_BRANCHY, branch_bias=0.80,
                  visits=3),
        ),
        _regime(
            "global_opt",
            _loop("dataflow", 768 * KB, _MEM_MIX, stride=32, branch_bias=0.87,
                  visits=2, region="ir"),
            _loop("regalloc", 256 * KB, _INT_MIX, stride=16, branch_bias=0.85,
                  visits=2, region="ir"),
        ),
    )
    n = 56
    dominant = 35
    base = list(sched.cyclic(2, n))
    base[dominant] = 2  # the unique giant-iteration regime
    scales = sched.dominant_iteration_scales(
        n, dominant_index=dominant, dominant_fraction=0.60, spread=0.7, seed=7
    )
    return BenchmarkSpec(
        name="gcc", seed=103, regimes=regimes,
        schedule=tuple(base), iteration_scale=scales,
        description="compiler: 56 wildly-sized iterations, one dominant",
    )


def _mcf() -> BenchmarkSpec:
    regimes = (
        _regime(
            "simplex",
            _loop("pivot", 2 * MB, _MEM_MIX, stride=64, branch_bias=0.88,
                  visits=2, sweeps=1.2, region="graph"),
            _loop("price", 1 * MB, _MEM_MIX, stride=64, branch_bias=0.91,
                  visits=1, sweeps=1.2, region="graph"),
        ),
        _regime(
            "flow",
            _loop("augment", 768 * KB, _MEM_MIX, stride=32, branch_bias=0.86,
                  visits=2, sweeps=1.2, region="graph"),
            _loop("relabel", 64 * KB, _INT_MIX, branch_bias=0.90, visits=2),
        ),
    )
    return BenchmarkSpec(
        name="mcf", seed=104, regimes=regimes,
        schedule=sched.staggered(2, 600, intros=(0, 12)),
        description="memory-bound network simplex",
    )


def _crafty() -> BenchmarkSpec:
    regimes = (
        _regime(
            "search",
            _loop("movegen", 24 * KB, _INT_BRANCHY, branch_bias=0.76,
                  visits=3, body_blocks=2),
            _loop("evaluate", 48 * KB, _INT_MIX, stride=16, branch_bias=0.83,
                  visits=2, body_blocks=2),
        ),
        _regime(
            "quiesce",
            _loop("capture", 16 * KB, _INT_BRANCHY, branch_bias=0.74,
                  visits=3, body_blocks=2),
            _loop("hash_probe", 512 * KB, _MEM_MIX, stride=64,
                  branch_bias=0.90, visits=2),
        ),
        _regime(
            "endgame",
            _loop("table", 128 * KB, _INT_MIX, stride=32, branch_bias=0.88,
                  visits=2, body_blocks=2),
        ),
    )
    return BenchmarkSpec(
        name="crafty", seed=105, regimes=regimes,
        schedule=sched.staggered(3, 800, intros=(0, 20, 40)),
        description="chess: branchy integer search",
    )


def _parser() -> BenchmarkSpec:
    regimes = (
        _regime(
            "tokenize",
            _loop("scan", 16 * KB, _INT_MIX, branch_bias=0.91, visits=3,
                  body_blocks=2),
            _loop("dict", 192 * KB, _MEM_MIX, stride=32, branch_bias=0.84,
                  visits=2),
        ),
        _regime(
            "link",
            _loop("match", 96 * KB, _INT_BRANCHY, stride=16, branch_bias=0.79,
                  visits=2, body_blocks=2),
            _loop("prune", 32 * KB, _INT_MIX, branch_bias=0.87, visits=3),
        ),
    )
    return BenchmarkSpec(
        name="parser", seed=106, regimes=regimes,
        schedule=sched.markov(2, 770, stay_probability=0.6, seed=11),
        description="NL parser, sticky 2-phase behaviour",
    )


def _vortex() -> BenchmarkSpec:
    regimes = (
        _regime(
            "insert",
            _loop("btree", 384 * KB, _MEM_MIX, stride=32, branch_bias=0.87,
                  visits=2, region="db"),
            _loop("pack", 32 * KB, _INT_MIX, branch_bias=0.92, visits=2,
                  body_blocks=2),
        ),
        _regime(
            "lookup",
            _loop("probe", 768 * KB, _MEM_MIX, stride=64, branch_bias=0.89,
                  visits=2, sweeps=1.2, region="db"),
            _loop("validate", 16 * KB, _INT_MIX, branch_bias=0.93, visits=3),
        ),
        _regime(
            "delete",
            _loop("unlink", 256 * KB, _INT_MIX, stride=32, branch_bias=0.85,
                  visits=2, region="db"),
        ),
    )
    return BenchmarkSpec(
        name="vortex", seed=107, regimes=regimes,
        schedule=sched.staggered(3, 800, intros=(0, 32, 64)),
        description="OO database transactions",
    )


def _bzip2() -> BenchmarkSpec:
    """bzip2: the sorting regime first appears ~34% in; last coarse point
    lands near the paper's 36%."""
    regimes = (
        _regime(
            "rle",
            _loop("runlen", 16 * KB, _INT_MIX, branch_bias=0.90, visits=3,
                  body_blocks=2),
            _loop("mtf", 64 * KB, _INT_MIX, stride=8, branch_bias=0.88,
                  visits=2),
        ),
        _regime(
            "huffman",
            _loop("encode", 32 * KB, _INT_MIX, branch_bias=0.93, visits=3,
                  body_blocks=2),
            _loop("tables", 8 * KB, _INT_MIX, branch_bias=0.96, visits=3),
        ),
        _regime(
            "blocksort",
            _loop("sort", 512 * KB, _MEM_MIX, stride=32, branch_bias=0.81,
                  visits=4, sweeps=1.2),
        ),
    )
    base = sched.cyclic(3, 840)
    return BenchmarkSpec(
        name="bzip2", seed=108, regimes=regimes,
        schedule=sched.late_phase(base, late_regime=2, first_at=0.34),
        description="compression: block-sort phase appears ~34% in",
    )


def _twolf_schedule() -> Tuple[int, ...]:
    """Blocked hot->cold annealing with one early cold dip, so the cold
    regime's earliest instance sits near the start of the run."""
    out = list(sched.blocked(2, 700))
    out[24] = 1
    return tuple(out)


def _twolf() -> BenchmarkSpec:
    regimes = (
        _regime(
            "anneal_hot",
            _loop("move", 96 * KB, _INT_BRANCHY, stride=16, branch_bias=0.80,
                  visits=2, body_blocks=2),
            _loop("wirelen", 48 * KB, _FP_MIX, branch_bias=0.92, visits=2,
                  body_blocks=2),
        ),
        _regime(
            "anneal_cold",
            _loop("move_small", 32 * KB, _INT_MIX, branch_bias=0.89, visits=3,
                  body_blocks=2),
            _loop("accept", 8 * KB, _INT_BRANCHY, branch_bias=0.83, visits=3),
        ),
    )
    return BenchmarkSpec(
        name="twolf", seed=109, regimes=regimes,
        schedule=_twolf_schedule(),
        description="place/route annealing, hot->cold",
    )


def _swim() -> BenchmarkSpec:
    regimes = (
        _regime(
            "calc1",
            _loop("stencil_u", 768 * KB, _FP_STREAM, stride=32,
                  branch_bias=0.99, visits=2, sweeps=1.2, region="grid"),
            _loop("stencil_v", 768 * KB, _FP_STREAM, stride=32,
                  branch_bias=0.99, visits=2, sweeps=1.2, region="grid"),
        ),
        _regime(
            "calc2",
            _loop("update", 1536 * KB, _FP_STREAM, stride=32, branch_bias=0.99,
                  visits=2, sweeps=1.2, region="grid"),
        ),
    )
    return BenchmarkSpec(
        name="swim", seed=110, regimes=regimes,
        schedule=sched.staggered(2, 600, intros=(0, 30)),
        description="shallow-water stencils, streaming FP",
    )


def _applu() -> BenchmarkSpec:
    regimes = (
        _regime(
            "jacobi",
            _loop("blts", 384 * KB, _FP_MIX, stride=16, branch_bias=0.98,
                  visits=2, region="grid"),
            _loop("buts", 384 * KB, _FP_MIX, stride=16, branch_bias=0.98,
                  visits=2, region="grid"),
        ),
        _regime(
            "rhs",
            _loop("flux", 768 * KB, _FP_STREAM, stride=32, branch_bias=0.98,
                  visits=2, sweeps=1.2, region="grid"),
        ),
        _regime(
            "norm",
            _loop("l2norm", 192 * KB, _FP_MIX, stride=8, branch_bias=0.99,
                  visits=2, region="grid"),
        ),
    )
    return BenchmarkSpec(
        name="applu", seed=111, regimes=regimes,
        schedule=sched.staggered(3, 750, intros=(0, 40, 80)),
        description="SSOR CFD solver",
    )


def _mesa() -> BenchmarkSpec:
    regimes = (
        _regime(
            "transform",
            _loop("vertex", 64 * KB, _FP_MIX, branch_bias=0.97, visits=3),
            _loop("clip", 16 * KB, _FP_MIX, branch_bias=0.90, visits=3),
        ),
        _regime(
            "raster",
            _loop("span", 256 * KB, _FP_STREAM, stride=16, branch_bias=0.96,
                  visits=2),
            _loop("texture", 512 * KB, _MEM_MIX, stride=32, branch_bias=0.94,
                  visits=2, sweeps=1.2),
        ),
    )
    return BenchmarkSpec(
        name="mesa", seed=112, regimes=regimes,
        schedule=sched.staggered(2, 700, intros=(0, 42)),
        description="software GL pipeline",
    )


def _art() -> BenchmarkSpec:
    """art: the scan/test phase first appears ~45% in; the paper reports the
    last coarse point at ~47%."""
    regimes = (
        _regime(
            "train",
            _loop("f1_layer", 384 * KB, _FP_MIX, stride=32, branch_bias=0.97,
                  visits=2, region="net"),
            _loop("weights", 1 * MB, _FP_STREAM, stride=64, branch_bias=0.98,
                  visits=1, sweeps=1.2, region="net"),
        ),
        _regime(
            "scan",
            _loop("match", 1 * MB, _FP_STREAM, stride=64, branch_bias=0.97,
                  visits=2, sweeps=1.2, region="net"),
        ),
    )
    base = sched.cyclic(2, 800)
    return BenchmarkSpec(
        name="art", seed=113, regimes=regimes,
        schedule=sched.late_phase(base, late_regime=1, first_at=0.45),
        description="neural net: test phase appears ~45% in",
    )


def _equake() -> BenchmarkSpec:
    """equake: 6 coarse phases (the paper's maximum)."""
    def phase(i: int, ws: int, stride: int) -> RegimeSpec:
        return _regime(
            f"step{i}",
            _loop("smvp", ws, _FP_MIX, stride=stride, branch_bias=0.97,
                  visits=2, sweeps=1.2 if ws >= MB else 1.5, region="mesh"),
            _loop("disp", max(16 * KB, ws // 4), _FP_STREAM, stride=8,
                  branch_bias=0.98, visits=2, region="disp"),
        )

    regimes = tuple(
        phase(i, ws, stride)
        for i, (ws, stride) in enumerate(
            [(128 * KB, 16), (256 * KB, 32), (512 * KB, 32),
             (1 * MB, 64), (64 * KB, 8), (1536 * KB, 64)]
        )
    )
    return BenchmarkSpec(
        name="equake", seed=114, regimes=regimes,
        schedule=sched.staggered(6, 840, intros=(0, 7, 14, 21, 28, 35)),
        description="earthquake FEM: 6 coarse phases",
    )


def _lucas() -> BenchmarkSpec:
    """lucas: smooth coarse-grained curve, chaotic fine-grained curve
    (Figure 1) — four dissimilar inner loops alternate inside every outer
    iteration with high per-visit jitter."""
    regimes = (
        _regime(
            "fft_pass",
            _loop("butterfly", 128 * KB, _FP_MIX, stride=16,
                  branch_bias=0.98, visits=2, jitter=0.30),
            _loop("twiddle", 32 * KB, _FP_MIX, stride=8,
                  branch_bias=0.98, visits=2, jitter=0.30),
            _loop("carry", 16 * KB, _INT_MIX, stride=8,
                  branch_bias=0.95, visits=2, jitter=0.30),
            _loop("square", 32 * KB, _FP_STREAM, stride=8,
                  branch_bias=0.98, visits=2, jitter=0.30),
        ),
        _regime(
            "mult_pass",
            _loop("butterfly2", 128 * KB, _FP_MIX, stride=16,
                  branch_bias=0.98, visits=2, jitter=0.30),
            _loop("norm", 32 * KB, _FP_MIX, stride=8,
                  branch_bias=0.98, visits=2, jitter=0.30),
        ),
    )
    # Long same-phase runs with one early dip: the coarse-grained curve is
    # smooth (Figure 1b) while inner-loop alternation keeps the fine-grained
    # curve chaotic (Figure 1a).
    schedule = list(sched.blocked(2, 640))
    schedule[9] = 1
    return BenchmarkSpec(
        name="lucas", seed=115, regimes=regimes,
        schedule=tuple(schedule),
        description="Lucas-Lehmer FFT: Fig 1's granularity example",
    )


def _fma3d() -> BenchmarkSpec:
    """fma3d: 5 coarse phases."""
    def phase(i: int, ws: int) -> RegimeSpec:
        return _regime(
            f"elem{i}",
            _loop("force", ws, _FP_MIX, stride=32, branch_bias=0.97,
                  visits=2, sweeps=1.2 if ws >= MB else 1.5, region="mesh"),
            _loop("stress", max(16 * KB, ws // 2), _FP_STREAM, stride=8,
                  branch_bias=0.97, visits=2, region="elem"),
        )

    regimes = tuple(
        phase(i, ws)
        for i, ws in enumerate(
            [64 * KB, 256 * KB, 512 * KB, 128 * KB, 1 * MB]
        )
    )
    return BenchmarkSpec(
        name="fma3d", seed=116, regimes=regimes,
        schedule=sched.staggered(5, 800, intros=(0, 6, 12, 18, 24)),
        description="crash FEM: 5 coarse phases",
    )


def build_suite() -> Dict[str, BenchmarkSpec]:
    """Return the full 16-benchmark suite, keyed by name."""
    specs = [
        _gzip(), _vpr(), _gcc(), _mcf(), _crafty(), _parser(), _vortex(),
        _bzip2(), _twolf(), _swim(), _applu(), _mesa(), _art(), _equake(),
        _lucas(), _fma3d(),
    ]
    return {s.name: s for s in specs}


#: Names of the benchmarks in the suite, in canonical order.
SUITE_NAMES: Tuple[str, ...] = (
    "gzip", "vpr", "gcc", "mcf", "crafty", "parser", "vortex", "bzip2",
    "twolf", "swim", "applu", "mesa", "art", "equake", "lucas", "fma3d",
)

#: A small, fast subset used by tests and quick examples.
QUICK_SUITE_NAMES: Tuple[str, ...] = ("gzip", "lucas", "mcf")


def scaled_spec(spec: BenchmarkSpec, factor: float) -> BenchmarkSpec:
    """Return a shrunken copy of *spec* for fast tests.

    Inner-loop trip counts and the schedule length are scaled by *factor*
    (minimum one iteration of everything); the phase structure is preserved.
    Working sets scale with the trip counts so the sweep behaviour is kept.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    from dataclasses import replace

    # The schedule length scales linearly; per-visit trip counts and working
    # sets scale by sqrt(factor) so scaled iteration sizes stay well above
    # the fine-interval size and the coarse/fine hierarchy survives.
    loop_factor = factor ** 0.5
    regimes = tuple(
        replace(
            regime,
            loops=tuple(
                replace(
                    loop,
                    iterations=max(2, int(round(loop.iterations * loop_factor))),
                    working_set=max(
                        1024, int(round(loop.working_set * loop_factor))
                    ),
                    visits=max(1, min(loop.visits, 6)),
                )
                for loop in regime.loops
            ),
        )
        for regime in spec.regimes
    )
    n_regimes = len(spec.regimes)
    keep = max(n_regimes * 3, int(round(len(spec.schedule) * factor)))
    keep = min(keep, len(spec.schedule))
    # Decimate (rather than truncate) the schedule so phase-introduction
    # positions keep their fractions of the run.
    import numpy as np

    indices = sorted(
        {int(i) for i in np.linspace(0, len(spec.schedule) - 1, keep)}
    )
    schedule = list(spec.schedule[i] for i in indices)
    # Pin each regime's first occurrence at its original fraction of the
    # run — decimation must not move phase-introduction positions.
    first = {}
    for i, regime in enumerate(spec.schedule):
        first.setdefault(regime, i / len(spec.schedule))
    for regime in range(n_regimes):
        target = min(len(schedule) - 1, int(round(first[regime] * len(schedule))))
        if regime not in schedule[: target + 1]:
            schedule[target] = regime
    schedule = tuple(schedule)
    scales = (
        tuple(spec.iteration_scale[i] for i in indices)
        if spec.iteration_scale else ()
    )
    # Shrink the prologue init loop too, so its coverage stays below the
    # boundary-collection floor in scaled-down runs as well.
    prologue = 1 if factor < 0.5 else spec.prologue_iterations
    return replace(spec, regimes=regimes, schedule=schedule,
                   iteration_scale=scales, prologue_iterations=prologue)
