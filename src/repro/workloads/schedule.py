"""Schedule pattern builders.

Schedules assign a regime index to every outer-loop iteration.  The suite
uses these helpers to place each regime's *first* occurrence at a chosen
fraction of the run, which is what determines where COASTS classifies its
last coarse-grained simulation point (Section III-B of the paper).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ProgramError


def cyclic(n_regimes: int, n_iterations: int) -> Tuple[int, ...]:
    """``0 1 2 ... 0 1 2 ...`` — all regimes appear immediately."""
    if n_regimes < 1 or n_iterations < n_regimes:
        raise ProgramError("cyclic schedule needs n_iterations >= n_regimes")
    return tuple(i % n_regimes for i in range(n_iterations))


def blocked(n_regimes: int, n_iterations: int) -> Tuple[int, ...]:
    """``0 0 ... 1 1 ... 2 2 ...`` — contiguous runs of each regime."""
    if n_regimes < 1 or n_iterations < n_regimes:
        raise ProgramError("blocked schedule needs n_iterations >= n_regimes")
    per = n_iterations // n_regimes
    out: List[int] = []
    for r in range(n_regimes):
        count = per if r < n_regimes - 1 else n_iterations - per * (n_regimes - 1)
        out.extend([r] * count)
    return tuple(out)


def late_phase(
    base: Sequence[int], late_regime: int, first_at: float
) -> Tuple[int, ...]:
    """Delay all occurrences of *late_regime* until fraction *first_at*.

    Iterations before that point that the base schedule assigned to the late
    regime are remapped to the other regimes round-robin.
    """
    if not 0.0 <= first_at <= 1.0:
        raise ProgramError("first_at must be in [0, 1]")
    cut = int(round(first_at * len(base)))
    others = sorted(set(base) - {late_regime})
    if not others and cut > 0:
        raise ProgramError("late_phase needs at least one other regime")
    out: List[int] = []
    fill = 0
    for i, r in enumerate(base):
        if i < cut and r == late_regime:
            out.append(others[fill % len(others)])
            fill += 1
        else:
            out.append(r)
    if late_regime not in out:
        out[min(cut, len(out) - 1)] = late_regime
    return tuple(out)


def staggered(
    n_regimes: int,
    n_iterations: int,
    intros: Sequence[int],
) -> Tuple[int, ...]:
    """Cyclic schedule with progressive phase introduction.

    Regime ``r`` is guaranteed to first appear exactly at iteration
    ``intros[r]`` and participates in the round-robin from then on.  This
    reproduces the paper's observation that coarse phases are classified at
    *early but non-zero* positions (average ~17% across SPEC2000): the last
    intro iteration directly sets where COASTS' last simulation point lands.
    """
    if len(intros) != n_regimes:
        raise ProgramError("need one intro iteration per regime")
    if list(intros) != sorted(intros) or intros[0] != 0:
        raise ProgramError("intros must be sorted and start at 0")
    if intros[-1] >= n_iterations:
        raise ProgramError("last intro beyond schedule end")
    if len(set(intros)) != n_regimes:
        raise ProgramError("intro iterations must be distinct")
    intro_of = {iteration: r for r, iteration in enumerate(intros)}
    out: List[int] = []
    available = 0
    for i in range(n_iterations):
        if i in intro_of:
            available = max(available, intro_of[i] + 1)
            out.append(intro_of[i])
        else:
            out.append(i % available)
    return tuple(out)


def markov(
    n_regimes: int,
    n_iterations: int,
    stay_probability: float = 0.7,
    seed: int = 0,
) -> Tuple[int, ...]:
    """A sticky Markov walk over regimes (reproducible)."""
    if not 0.0 <= stay_probability < 1.0:
        raise ProgramError("stay_probability must be in [0, 1)")
    if n_regimes < 1 or n_iterations < 1:
        raise ProgramError("markov schedule needs positive sizes")
    rng = np.random.default_rng(seed)
    state = 0
    out = []
    for _ in range(n_iterations):
        out.append(state)
        if rng.random() >= stay_probability:
            state = int((state + 1 + rng.integers(n_regimes - 1)) % n_regimes) \
                if n_regimes > 1 else 0
    # Guarantee every regime appears at least once.
    missing = set(range(n_regimes)) - set(out)
    for i, regime in enumerate(sorted(missing)):
        out[(i * 7 + 3) % n_iterations] = regime
    return tuple(out)


def uniform_scales(n_iterations: int) -> Tuple[float, ...]:
    """All-ones iteration scales."""
    return tuple([1.0] * n_iterations)


def dominant_iteration_scales(
    n_iterations: int,
    dominant_index: int,
    dominant_fraction: float,
    spread: float = 0.6,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Scales where one iteration holds *dominant_fraction* of the work.

    Reproduces gcc's pathology: 56 outer iterations whose instruction counts
    vary wildly, one of which accounts for ~60% of the whole run.  The other
    iterations get lognormal scales normalised so the dominant iteration's
    share is exactly *dominant_fraction* in expectation.
    """
    if not 0 <= dominant_index < n_iterations:
        raise ProgramError("dominant_index out of range")
    if not 0.0 < dominant_fraction < 1.0:
        raise ProgramError("dominant_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    scales = np.exp(rng.normal(0.0, spread, size=n_iterations))
    scales[dominant_index] = 0.0
    rest = scales.sum()
    scales[dominant_index] = rest * dominant_fraction / (1.0 - dominant_fraction)
    return tuple(float(s) for s in scales)
