"""Profile containers produced by the functional simulator.

A *profile* is what a profiling pass over the program (the paper's
"collection of metrics information") yields: per-interval basic-block
vectors plus bookkeeping.  Two interval shapes exist:

* fixed-length intervals (SimPoint's 10M-instruction chunks);
* coarse intervals aligned to outer-loop iteration instances (COASTS),
  each also carrying per-temporal-segment sub-BBVs used to build the
  concatenated signature vector of Section IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import TraceError


@dataclass(frozen=True)
class FixedIntervalProfile:
    """BBVs of fixed-length intervals.

    ``bbv[i, b]`` is the number of instructions interval ``i`` executed in
    basic block ``b`` (instruction-weighted BBV).  The last interval may be
    shorter than ``interval_size``.
    """

    interval_size: int
    starts: np.ndarray        # (n_intervals,) start instruction of each interval
    instructions: np.ndarray  # (n_intervals,) instructions per interval
    bbv: np.ndarray           # (n_intervals, n_blocks)

    def __post_init__(self) -> None:
        n = len(self.starts)
        if self.bbv.shape[0] != n or len(self.instructions) != n:
            raise TraceError("inconsistent fixed-interval profile shapes")
        if self.interval_size <= 0:
            raise TraceError("interval_size must be positive")

    @property
    def n_intervals(self) -> int:
        """Number of intervals."""
        return len(self.starts)

    @property
    def total_instructions(self) -> int:
        """Instructions covered by the profile."""
        return int(self.instructions.sum())

    def end_of(self, index: int) -> int:
        """End instruction (exclusive) of interval *index*."""
        return int(self.starts[index] + self.instructions[index])


@dataclass(frozen=True)
class CoarseIntervalProfile:
    """BBVs of outer-loop iteration instances (COASTS intervals).

    ``segment_bbvs[i, s]`` is the BBV of the ``s``-th of ``n_segments``
    equal temporal sub-chunks of instance ``i``; COASTS concatenates their
    projections to form the instance's signature vector.
    """

    starts: np.ndarray        # (n_instances,)
    instructions: np.ndarray  # (n_instances,)
    bbv: np.ndarray           # (n_instances, n_blocks)
    segment_bbvs: np.ndarray  # (n_instances, n_segments, n_blocks)

    def __post_init__(self) -> None:
        n = len(self.starts)
        if (
            self.bbv.shape[0] != n
            or len(self.instructions) != n
            or self.segment_bbvs.shape[0] != n
        ):
            raise TraceError("inconsistent coarse profile shapes")

    @property
    def n_instances(self) -> int:
        """Number of iteration instances."""
        return len(self.starts)

    @property
    def n_segments(self) -> int:
        """Temporal sub-chunks per instance."""
        return self.segment_bbvs.shape[1]

    @property
    def total_instructions(self) -> int:
        """Instructions covered by the profile."""
        return int(self.instructions.sum())

    def end_of(self, index: int) -> int:
        """End instruction (exclusive) of instance *index*."""
        return int(self.starts[index] + self.instructions[index])


@dataclass(frozen=True)
class StructureProfile:
    """Dynamic statistics of one cyclic program structure (loop)."""

    loop_id: int
    depth: int
    instructions: int
    instances: int
    coverage: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise TraceError("coverage must be in [0, 1]")


@dataclass(frozen=True)
class FunctionalResult:
    """Aggregate output of a plain functional run."""

    total_instructions: int
    block_counts: np.ndarray  # executions per static block
    block_instructions: np.ndarray  # instructions per static block

    @property
    def n_blocks(self) -> int:
        """Number of static blocks."""
        return len(self.block_counts)


#: Map loop_id -> StructureProfile.
StructureProfiles = Dict[int, StructureProfile]
