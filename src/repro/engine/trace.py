"""Dynamic trace model.

The dynamic execution of a workload is materialised once, deterministically,
as a sequence of run-length *segments*: "run this block sequence ``reps``
times".  Loop visits map to one header segment plus one body segment; glue
and noise blocks map to single-rep segments.

The canonical trace representation is **array-native**: contiguous flat
int64 arrays (``flat_blocks`` plus per-segment ``blocks_per_segment``,
``reps``, ``outer_index``, ``iter_base``, ``loop_id``) that the vectorized
profilers index directly and that cross process boundaries zero-copy via
shared memory (:mod:`repro.engine.shm`).  :class:`Segment` tuples are
materialised lazily, only for the consumers that still want object views
(the detailed simulators' per-piece bookkeeping).

Every consumer — the functional profiler, both detailed simulators, the
sampling cost accounting — reads the *same* trace, so baseline and sampled
results are directly comparable, exactly as SimPoint-style methods assume
when they mix `sim-fast` and `sim-outorder` runs of one binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import TraceError
from ..workloads.generator import Workload
from ..workloads.spec import BenchmarkSpec
from .backend import resolve_backend

#: The per-segment columns of an array-native trace, in canonical order
#: (``flat_blocks`` first, then the five per-segment columns).
TRACE_ARRAY_FIELDS: Tuple[str, ...] = (
    "flat_blocks",
    "blocks_per_segment",
    "reps",
    "outer_index",
    "iter_base",
    "loop_id",
)


@dataclass(frozen=True)
class Segment:
    """A run-length piece of the dynamic trace.

    ``blocks`` execute in order, the whole sequence repeating ``reps`` times.
    ``outer_index`` is the owning outer-loop iteration (-1 in the prologue).
    ``iter_base`` is the loop-iteration index of the first rep (0 for loop
    visits: every visit re-sweeps its data from the start).  ``loop_id`` is
    the inner loop id, or -1 for glue/noise segments.
    """

    blocks: Tuple[int, ...]
    reps: int
    outer_index: int = -1
    iter_base: int = 0
    loop_id: int = -1

    def __post_init__(self) -> None:
        if not self.blocks:
            raise TraceError("segment with no blocks")
        if self.reps < 1:
            raise TraceError("segment reps must be >= 1")
        if self.iter_base < 0:
            raise TraceError("segment iter_base must be >= 0")


@dataclass(frozen=True)
class SegmentPiece:
    """A whole-rep sub-range of one segment, produced by :meth:`Trace.clip`.

    ``seg_index`` is the segment's index in its trace (-1 when unknown);
    consumers use it to look up precomputed per-segment data.
    """

    segment: Segment
    rep_offset: int
    n_reps: int
    start_inst: int
    seg_index: int = -1

    def __post_init__(self) -> None:
        if self.n_reps < 1 or self.rep_offset < 0:
            raise TraceError("invalid segment piece")
        if self.rep_offset + self.n_reps > self.segment.reps:
            raise TraceError("segment piece exceeds segment reps")


def _arrays_from_segments(segments: List[Segment]) -> Dict[str, np.ndarray]:
    """Flatten :class:`Segment` objects into the canonical trace arrays.

    This is the scalar-reference conversion: one Python pass in segment
    order, so the resulting arrays are identical to what the vectorized
    builder emits directly.
    """
    flat: List[int] = []
    nblocks: List[int] = []
    reps: List[int] = []
    outer: List[int] = []
    iter_base: List[int] = []
    loop: List[int] = []
    for seg in segments:
        flat.extend(seg.blocks)
        nblocks.append(len(seg.blocks))
        reps.append(seg.reps)
        outer.append(seg.outer_index)
        iter_base.append(seg.iter_base)
        loop.append(seg.loop_id)
    return {
        "flat_blocks": np.array(flat, dtype=np.int64),
        "blocks_per_segment": np.array(nblocks, dtype=np.int64),
        "reps": np.array(reps, dtype=np.int64),
        "outer_index": np.array(outer, dtype=np.int64),
        "iter_base": np.array(iter_base, dtype=np.int64),
        "loop_id": np.array(loop, dtype=np.int64),
    }


class Trace:
    """The materialised dynamic trace of one workload.

    Construct from a list of :class:`Segment` objects (the scalar path)
    or directly from the canonical arrays via ``arrays=`` (the
    vectorized builder and the shared-memory attach path).  Either way
    the canonical state is the flat arrays; ``segments`` materialises
    object views lazily.
    """

    def __init__(
        self,
        workload: Workload,
        segments: Optional[List[Segment]] = None,
        *,
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        if arrays is None:
            if not segments:
                raise TraceError("empty trace")
            arrays = _arrays_from_segments(list(segments))
        elif segments is not None:
            raise TraceError("pass segments or arrays, not both")
        self.workload = workload
        self.program = workload.program
        #: Keeps an attached shared-memory block alive for the arrays'
        #: lifetime (set by :func:`repro.engine.shm.attach_trace`).
        self._shm = None

        self.flat_blocks = np.asarray(arrays["flat_blocks"], dtype=np.int64)
        self.blocks_per_segment = np.asarray(
            arrays["blocks_per_segment"], dtype=np.int64
        )
        self.reps = np.asarray(arrays["reps"], dtype=np.int64)
        self.outer_index = np.asarray(arrays["outer_index"], dtype=np.int64)
        self.iter_base = np.asarray(arrays["iter_base"], dtype=np.int64)
        self.loop_id = np.asarray(arrays["loop_id"], dtype=np.int64)
        n = len(self.reps)
        if n == 0:
            raise TraceError("empty trace")
        for field in TRACE_ARRAY_FIELDS[2:]:
            if len(arrays[field]) != n:
                raise TraceError(f"trace array {field!r} length mismatch")
        if (self.blocks_per_segment < 1).any():
            raise TraceError("segment with no blocks")
        if (self.reps < 1).any():
            raise TraceError("segment reps must be >= 1")
        if (self.iter_base < 0).any():
            raise TraceError("segment iter_base must be >= 0")
        self.flat_offsets = np.concatenate(
            ([0], np.cumsum(self.blocks_per_segment))
        ).astype(np.int64)
        if int(self.flat_offsets[-1]) != len(self.flat_blocks):
            raise TraceError("trace flat_blocks length mismatch")

        sizes = self.program.block_sizes
        self.rep_lengths = np.add.reduceat(
            sizes[self.flat_blocks], self.flat_offsets[:-1]
        ).astype(np.int64)
        self.segment_instructions = self.rep_lengths * self.reps
        self.seg_starts = np.concatenate(
            ([0], np.cumsum(self.segment_instructions))
        ).astype(np.int64)
        self.total_instructions = int(self.seg_starts[-1])

        # First-start per outer iteration; iterations are emitted in
        # order, so missing ones inherit the next iteration's start.
        n_outer = workload.spec.n_outer_iterations
        outer_starts = np.full(n_outer + 1, self.total_instructions,
                               dtype=np.int64)
        tagged = self.outer_index >= 0
        if tagged.any():
            np.minimum.at(
                outer_starts, self.outer_index[tagged],
                self.seg_starts[:-1][tagged],
            )
        outer_starts = np.minimum.accumulate(outer_starts[::-1])[::-1]
        self.outer_starts = outer_starts
        self.prologue_end = int(outer_starts[0])

        #: Lazily materialised Segment views (prefilled when the trace
        #: was constructed from segments in the first place).
        self._segment_views: List[Optional[Segment]] = (
            list(segments) if segments is not None else [None] * n
        )

    # ------------------------------------------------------------------
    # Lazy object views over the canonical arrays.
    def segment_at(self, index: int) -> Segment:
        """The (lazily materialised, memoised) Segment view of *index*."""
        seg = self._segment_views[index]
        if seg is None:
            lo = int(self.flat_offsets[index])
            hi = int(self.flat_offsets[index + 1])
            seg = Segment(
                blocks=tuple(int(b) for b in self.flat_blocks[lo:hi]),
                reps=int(self.reps[index]),
                outer_index=int(self.outer_index[index]),
                iter_base=int(self.iter_base[index]),
                loop_id=int(self.loop_id[index]),
            )
            self._segment_views[index] = seg
        return seg

    @property
    def segments(self) -> Tuple[Segment, ...]:
        """All Segment views (materialises any not yet built)."""
        return tuple(
            self.segment_at(i) for i in range(len(self._segment_views))
        )

    @cached_property
    def flat_composition(self) -> np.ndarray:
        """Per flat entry: the block's share of its segment's rep length."""
        sizes = self.program.block_sizes[self.flat_blocks].astype(np.float64)
        rep_lens = np.repeat(
            self.rep_lengths.astype(np.float64), self.blocks_per_segment
        )
        return sizes / rep_lens

    def arrays(self) -> Dict[str, np.ndarray]:
        """The canonical arrays, keyed by :data:`TRACE_ARRAY_FIELDS`."""
        return {field: getattr(self, field) for field in TRACE_ARRAY_FIELDS}

    # ------------------------------------------------------------------
    @property
    def spec(self) -> BenchmarkSpec:
        """The benchmark spec this trace was unrolled from."""
        return self.workload.spec

    @property
    def n_segments(self) -> int:
        """Number of run-length segments."""
        return len(self.reps)

    def segment_span(self, index: int) -> Tuple[int, int]:
        """Instruction range [start, end) covered by segment *index*."""
        return int(self.seg_starts[index]), int(self.seg_starts[index + 1])

    def locate(self, inst: int) -> int:
        """Index of the segment containing instruction number *inst*."""
        if not 0 <= inst < self.total_instructions:
            raise TraceError(
                f"instruction {inst} outside trace of "
                f"{self.total_instructions} instructions"
            )
        return int(np.searchsorted(self.seg_starts, inst, side="right") - 1)

    def outer_bounds(self) -> np.ndarray:
        """(n_outer, 2) array of [start, end) per outer iteration."""
        starts = self.outer_starts
        return np.stack([starts[:-1], starts[1:]], axis=1)

    def clip(self, start: int, end: int) -> Iterator[SegmentPiece]:
        """Yield whole-rep pieces covering the instruction range [start, end).

        Pieces are rounded *outward* to rep boundaries, so the union of the
        yielded pieces is a superset of the requested range; callers measure
        the instructions they actually simulated from the pieces themselves.
        """
        if start < 0 or end > self.total_instructions or start >= end:
            raise TraceError(f"bad clip range [{start}, {end})")
        index = self.locate(start)
        while index < self.n_segments:
            seg_start, seg_end = self.segment_span(index)
            if seg_start >= end:
                break
            seg = self.segment_at(index)
            rep_len = int(self.rep_lengths[index])
            lo = max(start, seg_start)
            hi = min(end, seg_end)
            first_rep = (lo - seg_start) // rep_len
            last_rep = (hi - seg_start + rep_len - 1) // rep_len  # exclusive
            last_rep = min(max(last_rep, first_rep + 1), seg.reps)
            yield SegmentPiece(
                segment=seg,
                rep_offset=int(first_rep),
                n_reps=int(last_rep - first_rep),
                start_inst=int(seg_start + first_rep * rep_len),
                seg_index=index,
            )
            index += 1


class TraceBuilder:
    """Deterministically unroll a workload's schedule into a trace.

    Two backends produce byte-identical traces (see
    :mod:`repro.engine.backend`):

    * ``vectorized`` (default): one Python pass draws the RNG stream in
      the exact order the scalar builder draws it (jitter normals, noise
      uniforms/integers — the draws are interleaved and control-flow
      dependent, so their order is part of the trace's definition) while
      appending plain ints to flat columns; the jitter factors and rep
      counts are then computed in one batched ``exp``/``rint`` pass, and
      the trace is constructed array-native without ever materialising
      :class:`Segment` objects.
    * ``scalar``: the original object builder, kept as the differential
      reference.
    """

    #: Reps of the prologue init loop per ``prologue_iterations`` unit.
    INIT_LOOP_REPS = 25

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def build(self, backend: Optional[str] = None) -> Trace:
        """Unroll the schedule and return the trace."""
        if resolve_backend(backend) == "scalar":
            return self._build_scalar()
        return self._build_vectorized()

    # ------------------------------------------------------------------
    def _build_scalar(self) -> Trace:
        """Unroll into Segment objects (the reference implementation)."""
        wl = self.workload
        spec = wl.spec
        rng = np.random.default_rng(np.random.SeedSequence(spec.seed))
        segments: List[Segment] = []

        # --- prologue --------------------------------------------------
        for block in wl.prologue_blocks:
            segments.append(Segment(blocks=(block,), reps=1))
        init_reps = self.INIT_LOOP_REPS * max(1, spec.prologue_iterations)
        segments.append(Segment(blocks=(wl.init_loop_header,), reps=1))
        segments.append(
            Segment(
                blocks=(wl.init_loop_body,), reps=init_reps,
                loop_id=wl.init_loop_id,
            )
        )
        for scan_block, scan_reps in wl.init_scans:
            segments.append(Segment(blocks=(scan_block,), reps=scan_reps))

        # --- main outer loop --------------------------------------------
        # Every visit re-sweeps its loop's working set from the start
        # (iter_base = 0): loops re-read the same data on every visit, the
        # temporal locality that makes phase behaviour stationary across
        # iteration instances.
        for outer_index, regime_index in enumerate(spec.schedule):
            layout = wl.regime_layouts[regime_index]
            scale = spec.scale_of(outer_index)
            segments.append(
                Segment(blocks=(wl.outer_header,), reps=1,
                        outer_index=outer_index)
            )
            max_visits = max(l.spec.visits for l in layout.loops)
            for visit in range(max_visits):
                for inner in layout.loops:
                    if visit >= inner.spec.visits:
                        continue
                    jitter = inner.spec.jitter
                    factor = float(np.exp(rng.normal(0.0, jitter))) if jitter else 1.0
                    reps = max(1, int(round(inner.spec.iterations * scale * factor)))
                    segments.append(
                        Segment(blocks=(inner.header_block,), reps=1,
                                outer_index=outer_index)
                    )
                    segments.append(
                        Segment(
                            blocks=inner.body_blocks,
                            reps=reps,
                            outer_index=outer_index,
                            iter_base=0,
                            loop_id=inner.loop_id,
                        )
                    )
                    if spec.noise and rng.random() < spec.noise:
                        noise_block = wl.noise_blocks[
                            int(rng.integers(len(wl.noise_blocks)))
                        ]
                        segments.append(
                            Segment(
                                blocks=(noise_block,),
                                reps=int(rng.integers(1, 5)),
                                outer_index=outer_index,
                            )
                        )
        return Trace(self.workload, segments)

    # ------------------------------------------------------------------
    def _regime_entries(self) -> List[List[Tuple[int, List[int], int, int, float]]]:
        """Per regime: the ordered (visit-major) inner-loop entry list.

        Each entry is ``(header_block, body_blocks, loop_id, iterations,
        jitter)`` — the schedule-independent part of one inner-loop visit,
        precomputed once so the unroll walk touches no layout objects.
        """
        entries_per_regime = []
        for layout in self.workload.regime_layouts:
            entries = []
            max_visits = max(l.spec.visits for l in layout.loops)
            for visit in range(max_visits):
                for inner in layout.loops:
                    if visit >= inner.spec.visits:
                        continue
                    entries.append((
                        inner.header_block,
                        list(inner.body_blocks),
                        inner.loop_id,
                        inner.spec.iterations,
                        inner.spec.jitter,
                    ))
            entries_per_regime.append(entries)
        return entries_per_regime

    def _build_vectorized(self) -> Trace:
        """Emit the canonical arrays directly, batching the float math."""
        wl = self.workload
        spec = wl.spec
        rng = np.random.default_rng(np.random.SeedSequence(spec.seed))

        # Per-segment columns, filled by one walk in segment order.
        flat: List[int] = []
        nblocks: List[int] = []
        reps: List[int] = []
        outer: List[int] = []
        loop: List[int] = []
        add_flat = flat.append
        ext_flat = flat.extend
        add_n = nblocks.append
        add_r = reps.append
        add_o = outer.append
        add_l = loop.append

        # --- prologue --------------------------------------------------
        for block in wl.prologue_blocks:
            add_flat(block); add_n(1); add_r(1); add_o(-1); add_l(-1)
        init_reps = self.INIT_LOOP_REPS * max(1, spec.prologue_iterations)
        add_flat(wl.init_loop_header); add_n(1); add_r(1); add_o(-1); add_l(-1)
        add_flat(wl.init_loop_body); add_n(1); add_r(init_reps); add_o(-1)
        add_l(wl.init_loop_id)
        for scan_block, scan_reps in wl.init_scans:
            add_flat(scan_block); add_n(1); add_r(scan_reps); add_o(-1); add_l(-1)

        # --- main outer loop -------------------------------------------
        # The walk draws the RNG stream in scalar order and leaves a rep
        # placeholder per body segment; `normals` (0.0 when jitterless:
        # exp(0) == 1 exactly) and `bases` ((iterations * scale), the
        # scalar expression's association) feed one vectorized
        # exp/rint/maximum pass below that is bit-identical to the
        # per-entry max(1, int(round(iterations * scale * factor))).
        entries_per_regime = self._regime_entries()
        noise = spec.noise
        noise_blocks = wl.noise_blocks
        n_noise = len(noise_blocks)
        draw_normal = rng.normal
        draw_uniform = rng.random
        draw_integers = rng.integers
        outer_header = wl.outer_header
        normals: List[float] = []
        bases: List[float] = []
        body_rows: List[int] = []
        for outer_index, regime_index in enumerate(spec.schedule):
            scale = spec.scale_of(outer_index)
            add_flat(outer_header); add_n(1); add_r(1); add_o(outer_index)
            add_l(-1)
            for header, body, loop_id, iterations, jitter in \
                    entries_per_regime[regime_index]:
                normals.append(draw_normal(0.0, jitter) if jitter else 0.0)
                bases.append(iterations * scale)
                add_flat(header); add_n(1); add_r(1); add_o(outer_index)
                add_l(-1)
                ext_flat(body)
                body_rows.append(len(reps))
                add_n(len(body)); add_r(0); add_o(outer_index); add_l(loop_id)
                if noise and draw_uniform() < noise:
                    add_flat(noise_blocks[int(draw_integers(n_noise))])
                    add_n(1); add_r(int(draw_integers(1, 5)))
                    add_o(outer_index); add_l(-1)

        reps_arr = np.array(reps, dtype=np.int64)
        if body_rows:
            factors = np.exp(np.array(normals, dtype=np.float64))
            body_reps = np.maximum(
                1.0, np.rint(np.array(bases, dtype=np.float64) * factors)
            ).astype(np.int64)
            reps_arr[np.array(body_rows, dtype=np.int64)] = body_reps
        n = len(reps_arr)
        arrays = {
            "flat_blocks": np.array(flat, dtype=np.int64),
            "blocks_per_segment": np.array(nblocks, dtype=np.int64),
            "reps": reps_arr,
            "outer_index": np.array(outer, dtype=np.int64),
            "iter_base": np.zeros(n, dtype=np.int64),
            "loop_id": np.array(loop, dtype=np.int64),
        }
        return Trace(self.workload, arrays=arrays)


def build_trace(workload: Workload, backend: Optional[str] = None) -> Trace:
    """Convenience wrapper: unroll *workload* into its trace."""
    return TraceBuilder(workload).build(backend=backend)
