"""Dynamic trace model.

The dynamic execution of a workload is materialised once, deterministically,
as a sequence of run-length *segments*: ``Segment(blocks, reps)`` means "run
this block sequence ``reps`` times".  Loop visits map to one header segment
plus one body segment; glue and noise blocks map to single-rep segments.

Every consumer — the functional profiler, both detailed simulators, the
sampling cost accounting — reads the *same* trace, so baseline and sampled
results are directly comparable, exactly as SimPoint-style methods assume
when they mix `sim-fast` and `sim-outorder` runs of one binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, List, Tuple

import numpy as np

from ..errors import TraceError
from ..workloads.generator import Workload
from ..workloads.spec import BenchmarkSpec


@dataclass(frozen=True)
class Segment:
    """A run-length piece of the dynamic trace.

    ``blocks`` execute in order, the whole sequence repeating ``reps`` times.
    ``outer_index`` is the owning outer-loop iteration (-1 in the prologue).
    ``iter_base`` is the loop-iteration index of the first rep (0 for loop
    visits: every visit re-sweeps its data from the start).  ``loop_id`` is
    the inner loop id, or -1 for glue/noise segments.
    """

    blocks: Tuple[int, ...]
    reps: int
    outer_index: int = -1
    iter_base: int = 0
    loop_id: int = -1

    def __post_init__(self) -> None:
        if not self.blocks:
            raise TraceError("segment with no blocks")
        if self.reps < 1:
            raise TraceError("segment reps must be >= 1")
        if self.iter_base < 0:
            raise TraceError("segment iter_base must be >= 0")


@dataclass(frozen=True)
class SegmentPiece:
    """A whole-rep sub-range of one segment, produced by :meth:`Trace.clip`.

    ``seg_index`` is the segment's index in its trace (-1 when unknown);
    consumers use it to look up precomputed per-segment data.
    """

    segment: Segment
    rep_offset: int
    n_reps: int
    start_inst: int
    seg_index: int = -1

    def __post_init__(self) -> None:
        if self.n_reps < 1 or self.rep_offset < 0:
            raise TraceError("invalid segment piece")
        if self.rep_offset + self.n_reps > self.segment.reps:
            raise TraceError("segment piece exceeds segment reps")


class Trace:
    """The materialised dynamic trace of one workload."""

    def __init__(self, workload: Workload, segments: List[Segment]) -> None:
        if not segments:
            raise TraceError("empty trace")
        self.workload = workload
        self.program = workload.program
        self.segments: Tuple[Segment, ...] = tuple(segments)

        sizes = self.program.block_sizes
        rep_lengths = np.array(
            [int(sizes[list(s.blocks)].sum()) for s in segments], dtype=np.int64
        )
        seg_insts = rep_lengths * np.array([s.reps for s in segments],
                                           dtype=np.int64)
        self.rep_lengths = rep_lengths
        self.segment_instructions = seg_insts
        self.seg_starts = np.concatenate(
            ([0], np.cumsum(seg_insts))
        ).astype(np.int64)
        self.total_instructions = int(self.seg_starts[-1])

        n_outer = workload.spec.n_outer_iterations
        outer_starts = np.full(n_outer + 1, self.total_instructions,
                               dtype=np.int64)
        for i, seg in enumerate(segments):
            if seg.outer_index >= 0:
                start = self.seg_starts[i]
                if start < outer_starts[seg.outer_index]:
                    outer_starts[seg.outer_index] = start
        # Iterations are emitted in order; ends are the next start.
        for i in range(n_outer - 1, -1, -1):
            if outer_starts[i] > outer_starts[i + 1]:
                outer_starts[i] = outer_starts[i + 1]
        self.outer_starts = outer_starts
        self.prologue_end = int(outer_starts[0])

    # ------------------------------------------------------------------
    # Flat per-segment arrays: the vectorized profilers and the timing
    # simulator's per-segment statics index these instead of re-walking
    # each segment's block tuple.  ``flat_blocks[flat_offsets[i]:
    # flat_offsets[i+1]]`` are segment i's block ids in execution order.
    @cached_property
    def blocks_per_segment(self) -> np.ndarray:
        """Number of blocks per rep of each segment."""
        return np.fromiter(
            (len(s.blocks) for s in self.segments),
            dtype=np.int64, count=self.n_segments,
        )

    @cached_property
    def flat_offsets(self) -> np.ndarray:
        """Start of each segment's slice in :attr:`flat_blocks`."""
        return np.concatenate(
            ([0], np.cumsum(self.blocks_per_segment))
        ).astype(np.int64)

    @cached_property
    def flat_blocks(self) -> np.ndarray:
        """All segments' block ids, concatenated in segment order."""
        total = int(self.flat_offsets[-1])
        flat = np.empty(total, dtype=np.int64)
        offset = 0
        for seg in self.segments:
            flat[offset:offset + len(seg.blocks)] = seg.blocks
            offset += len(seg.blocks)
        return flat

    @cached_property
    def flat_composition(self) -> np.ndarray:
        """Per flat entry: the block's share of its segment's rep length."""
        sizes = self.program.block_sizes[self.flat_blocks].astype(np.float64)
        rep_lens = np.repeat(
            self.rep_lengths.astype(np.float64), self.blocks_per_segment
        )
        return sizes / rep_lens

    # ------------------------------------------------------------------
    @property
    def spec(self) -> BenchmarkSpec:
        """The benchmark spec this trace was unrolled from."""
        return self.workload.spec

    @property
    def n_segments(self) -> int:
        """Number of run-length segments."""
        return len(self.segments)

    def segment_span(self, index: int) -> Tuple[int, int]:
        """Instruction range [start, end) covered by segment *index*."""
        return int(self.seg_starts[index]), int(self.seg_starts[index + 1])

    def locate(self, inst: int) -> int:
        """Index of the segment containing instruction number *inst*."""
        if not 0 <= inst < self.total_instructions:
            raise TraceError(
                f"instruction {inst} outside trace of "
                f"{self.total_instructions} instructions"
            )
        return int(np.searchsorted(self.seg_starts, inst, side="right") - 1)

    def outer_bounds(self) -> np.ndarray:
        """(n_outer, 2) array of [start, end) per outer iteration."""
        starts = self.outer_starts
        return np.stack([starts[:-1], starts[1:]], axis=1)

    def clip(self, start: int, end: int) -> Iterator[SegmentPiece]:
        """Yield whole-rep pieces covering the instruction range [start, end).

        Pieces are rounded *outward* to rep boundaries, so the union of the
        yielded pieces is a superset of the requested range; callers measure
        the instructions they actually simulated from the pieces themselves.
        """
        if start < 0 or end > self.total_instructions or start >= end:
            raise TraceError(f"bad clip range [{start}, {end})")
        index = self.locate(start)
        while index < self.n_segments:
            seg_start, seg_end = self.segment_span(index)
            if seg_start >= end:
                break
            seg = self.segments[index]
            rep_len = int(self.rep_lengths[index])
            lo = max(start, seg_start)
            hi = min(end, seg_end)
            first_rep = (lo - seg_start) // rep_len
            last_rep = (hi - seg_start + rep_len - 1) // rep_len  # exclusive
            last_rep = min(max(last_rep, first_rep + 1), seg.reps)
            yield SegmentPiece(
                segment=seg,
                rep_offset=int(first_rep),
                n_reps=int(last_rep - first_rep),
                start_inst=int(seg_start + first_rep * rep_len),
                seg_index=index,
            )
            index += 1


class TraceBuilder:
    """Deterministically unroll a workload's schedule into a trace."""

    #: Reps of the prologue init loop per ``prologue_iterations`` unit.
    INIT_LOOP_REPS = 25

    def __init__(self, workload: Workload) -> None:
        self.workload = workload

    def build(self) -> Trace:
        """Unroll the schedule and return the trace."""
        wl = self.workload
        spec = wl.spec
        rng = np.random.default_rng(np.random.SeedSequence(spec.seed))
        segments: List[Segment] = []

        # --- prologue --------------------------------------------------
        for block in wl.prologue_blocks:
            segments.append(Segment(blocks=(block,), reps=1))
        init_reps = self.INIT_LOOP_REPS * max(1, spec.prologue_iterations)
        segments.append(Segment(blocks=(wl.init_loop_header,), reps=1))
        segments.append(
            Segment(
                blocks=(wl.init_loop_body,), reps=init_reps,
                loop_id=wl.init_loop_id,
            )
        )
        for scan_block, scan_reps in wl.init_scans:
            segments.append(Segment(blocks=(scan_block,), reps=scan_reps))

        # --- main outer loop --------------------------------------------
        # Every visit re-sweeps its loop's working set from the start
        # (iter_base = 0): loops re-read the same data on every visit, the
        # temporal locality that makes phase behaviour stationary across
        # iteration instances.
        for outer_index, regime_index in enumerate(spec.schedule):
            layout = wl.regime_layouts[regime_index]
            scale = spec.scale_of(outer_index)
            segments.append(
                Segment(blocks=(wl.outer_header,), reps=1,
                        outer_index=outer_index)
            )
            max_visits = max(l.spec.visits for l in layout.loops)
            for visit in range(max_visits):
                for inner in layout.loops:
                    if visit >= inner.spec.visits:
                        continue
                    jitter = inner.spec.jitter
                    factor = float(np.exp(rng.normal(0.0, jitter))) if jitter else 1.0
                    reps = max(1, int(round(inner.spec.iterations * scale * factor)))
                    segments.append(
                        Segment(blocks=(inner.header_block,), reps=1,
                                outer_index=outer_index)
                    )
                    segments.append(
                        Segment(
                            blocks=inner.body_blocks,
                            reps=reps,
                            outer_index=outer_index,
                            iter_base=0,
                            loop_id=inner.loop_id,
                        )
                    )
                    if spec.noise and rng.random() < spec.noise:
                        noise_block = wl.noise_blocks[
                            int(rng.integers(len(wl.noise_blocks)))
                        ]
                        segments.append(
                            Segment(
                                blocks=(noise_block,),
                                reps=int(rng.integers(1, 5)),
                                outer_index=outer_index,
                            )
                        )
        return Trace(self.workload, segments)


def build_trace(workload: Workload) -> Trace:
    """Convenience wrapper: unroll *workload* into its trace."""
    return TraceBuilder(workload).build()
