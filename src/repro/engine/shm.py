"""Zero-copy trace sharing across processes via POSIX shared memory.

The parallel suite driver fans (benchmark, config) runs out over a
process pool.  Traces are deterministic, so workers *can* rebuild them
locally — but with C configs per benchmark the same trace gets unrolled
C times across the pool.  Instead the parent builds each benchmark's
trace once, publishes its canonical arrays (:data:`~repro.engine.trace.
TRACE_ARRAY_FIELDS`) into one named ``multiprocessing.shared_memory``
segment, and ships only the small :func:`share_trace` handle (segment
name + per-field offsets) through the task payload.  Workers attach
read-only ``np.ndarray`` views over the same physical pages — no copy,
no pickling of multi-megabyte arrays — and reconstruct a
:class:`~repro.engine.trace.Trace` around them.

Identity: the attached arrays are the parent's bytes, and the builder
is bit-identical across backends, so parallel results match serial
results byte for byte (asserted by the suite tests).

Lifecycle and crash-safety:

* the parent owns every segment: it creates them before the pool spins
  up and closes **and unlinks** them in a ``finally`` — pool respawns
  after a worker crash simply re-attach by name;
* workers never unlink; an attached trace keeps its
  :class:`~multiprocessing.shared_memory.SharedMemory` alive via
  ``trace._shm`` and the mapping dies with the worker process — even a
  SIGKILLed worker leaks nothing, because the parent still unlinks;
* under the default ``fork`` start method every process shares the
  parent's ``resource_tracker``, whose per-type cache is a set, so the
  duplicate attach-side registrations collapse and the parent's single
  ``unlink`` leaves the tracker clean (no spurious leak warnings);
* a worker whose attach fails (segment already torn down, exotic
  platform without POSIX shm) falls back to rebuilding the trace
  locally — slower, never wrong — and counts the fallback.

``$REPRO_TRACE_SHM=0`` disables sharing entirely (workers rebuild, the
pre-shm behaviour).  Counters: ``repro_trace_shm_shared_total`` /
``_bytes_total`` (parent), ``_attached_total`` / ``_fallbacks_total``
(workers, merged back into the suite registry).
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import TraceError
from ..obs import (
    TRACE_SHM_ATTACHED,
    TRACE_SHM_BYTES,
    TRACE_SHM_FALLBACKS,
    TRACE_SHM_SHARED,
    MetricsRegistry,
)
from ..workloads.generator import Workload
from .trace import TRACE_ARRAY_FIELDS, Trace

#: Environment variable gating shared-memory trace transport (default on;
#: set to ``0``/``off``/``false`` to force workers to rebuild locally).
SHM_ENV = "REPRO_TRACE_SHM"

_ITEMSIZE = np.dtype(np.int64).itemsize
_SEQUENCE = itertools.count()


def shm_enabled() -> bool:
    """Whether shared-memory trace transport is enabled for this process."""
    value = os.environ.get(SHM_ENV, "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def share_trace(
    trace: Trace, metrics: Optional[MetricsRegistry] = None
) -> Tuple[shared_memory.SharedMemory, Dict[str, object]]:
    """Publish *trace*'s canonical arrays into one shared-memory segment.

    Returns the segment (the caller owns it: keep it referenced, then
    ``close()`` + ``unlink()`` when the consumers are done) and the
    small picklable handle workers pass to :func:`attach_trace`.
    """
    arrays = trace.arrays()
    fields: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for field in TRACE_ARRAY_FIELDS:
        fields[field] = (offset, len(arrays[field]))
        offset += len(arrays[field]) * _ITEMSIZE
    total = max(offset, 1)

    segment = None
    while segment is None:
        name = f"repro-trace-{os.getpid()}-{next(_SEQUENCE)}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=total
            )
        except FileExistsError:  # stale name from a previous run
            continue
    for field in TRACE_ARRAY_FIELDS:
        off, length = fields[field]
        view = np.ndarray(
            (length,), dtype=np.int64, buffer=segment.buf, offset=off
        )
        view[:] = arrays[field]
    handle = {"shm_name": segment.name, "fields": fields}
    if metrics is not None:
        metrics.counter(TRACE_SHM_SHARED).inc()
        metrics.counter(TRACE_SHM_BYTES).inc(float(total))
    return segment, handle


def attach_trace(
    workload: Workload,
    handle: Dict[str, object],
    metrics: Optional[MetricsRegistry] = None,
) -> Trace:
    """Reconstruct a read-only :class:`Trace` over a shared segment.

    The returned trace's canonical arrays are zero-copy views of the
    parent's pages (writes are refused: the views are non-writeable).
    The segment stays mapped for the trace's lifetime via ``trace._shm``.
    Raises :class:`TraceError` when the segment cannot be attached;
    callers are expected to fall back to building locally.
    """
    try:
        segment = shared_memory.SharedMemory(name=str(handle["shm_name"]))
    except (OSError, ValueError) as error:
        raise TraceError(
            f"cannot attach shared trace {handle.get('shm_name')!r}: {error}"
        ) from error
    try:
        arrays: Dict[str, np.ndarray] = {}
        for field in TRACE_ARRAY_FIELDS:
            off, length = handle["fields"][field]  # type: ignore[index]
            view = np.ndarray(
                (length,), dtype=np.int64, buffer=segment.buf, offset=off
            )
            view.flags.writeable = False
            arrays[field] = view
        trace = Trace(workload, arrays=arrays)
    except Exception:
        segment.close()
        raise
    trace._shm = segment
    if metrics is not None:
        metrics.counter(TRACE_SHM_ATTACHED).inc()
    return trace


def attach_or_none(
    workload: Workload,
    handle: Dict[str, object],
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[Trace]:
    """:func:`attach_trace`, degrading to ``None`` (counted) on failure."""
    try:
        return attach_trace(workload, handle, metrics=metrics)
    except (TraceError, KeyError, TypeError):
        if metrics is not None:
            metrics.counter(TRACE_SHM_FALLBACKS).inc()
        return None


__all__ = [
    "SHM_ENV",
    "attach_or_none",
    "attach_trace",
    "share_trace",
    "shm_enabled",
]
