"""Functional simulator and profilers.

Plays the role of SimpleScalar's ``sim-fast`` plus the SimPoint BBV profiling
plug-in: executes the dynamic trace without timing, counting instructions and
collecting per-interval basic-block vectors.

Interval attribution: a segment's instructions are distributed over the
intervals it overlaps proportionally, using the segment's per-rep block
composition.  Attribution error is confined to partial reps at interval
boundaries (tens of instructions against 10K-instruction intervals) and is
zero for coarse intervals, whose boundaries coincide with segment boundaries.

The whole-trace run and the coarse/structure profilers are
backend-switched (:mod:`repro.engine.backend`): the vectorized default
reduces each pass to a handful of weighted :func:`np.bincount` calls over
the trace's flat arrays, laid out so every accumulator cell receives its
additions in exactly the order the retained scalar loops add them — the
outputs are bit-identical, which the differential tests assert.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import TraceError
from ..obs import FUNCTIONAL_INSTRUCTIONS, PROFILE_PASSES, MetricsRegistry
from .backend import resolve_backend
from .profiles import (
    CoarseIntervalProfile,
    FixedIntervalProfile,
    FunctionalResult,
    StructureProfile,
    StructureProfiles,
)
from .trace import Trace


class FunctionalSimulator:
    """Functional (no-timing) execution and profiling over a trace.

    *metrics* hooks the simulator into an observability registry at
    coarse granularity — one counter bump per pass, never per interval
    or block, so the hot loops stay untouched.  A private registry is
    used when none is supplied.
    """

    def __init__(
        self, trace: Trace, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.trace = trace
        self.program = trace.program
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    def run(self, backend: Optional[str] = None) -> FunctionalResult:
        """Execute the whole trace, returning aggregate block counts.

        Vectorized: one weighted bincount over the trace's flat block
        array; float64 holds the integer rep counts exactly (they are
        far below 2**53).  Scalar: the per-segment/per-block loop the
        bincount replaces, kept as the differential reference.
        """
        trace = self.trace
        if resolve_backend(backend) == "scalar":
            counts = np.zeros(self.program.n_blocks, dtype=np.int64)
            for index in range(trace.n_segments):
                seg = trace.segment_at(index)
                for block in seg.blocks:
                    counts[block] += seg.reps
        else:
            counts = np.bincount(
                trace.flat_blocks,
                weights=np.repeat(
                    trace.reps, trace.blocks_per_segment
                ).astype(np.float64),
                minlength=self.program.n_blocks,
            ).astype(np.int64)
        instructions = counts * self.program.block_sizes
        self.metrics.counter(PROFILE_PASSES, kind="functional_run").inc()
        self.metrics.counter(FUNCTIONAL_INSTRUCTIONS).inc(
            float(instructions.sum())
        )
        return FunctionalResult(
            total_instructions=int(instructions.sum()),
            block_counts=counts,
            block_instructions=instructions,
        )

    # ------------------------------------------------------------------
    def profile_fixed_intervals(
        self,
        interval_size: int,
        start: int = 0,
        end: Optional[int] = None,
    ) -> FixedIntervalProfile:
        """Collect instruction-weighted BBVs for fixed-length intervals.

        With ``start``/``end`` the grid covers only [start, end) — the
        multi-level sampler uses this to re-profile *inside* one coarse
        simulation point.  Interval starts are absolute instruction numbers.
        """
        if interval_size <= 0:
            raise TraceError("interval_size must be positive")
        trace = self.trace
        if end is None:
            end = trace.total_instructions
        if not 0 <= start < end <= trace.total_instructions:
            raise TraceError(f"bad profile range [{start}, {end})")
        total = end - start
        n_intervals = math.ceil(total / interval_size)
        n_blocks = self.program.n_blocks
        bbv = self._accumulate_bbv(start, end, interval_size, n_intervals)

        starts = np.arange(n_intervals, dtype=np.int64) * interval_size + start
        instructions = np.full(n_intervals, interval_size, dtype=np.int64)
        instructions[-1] = end - int(starts[-1])
        self.metrics.counter(PROFILE_PASSES, kind="fixed").inc()
        self.metrics.counter(FUNCTIONAL_INSTRUCTIONS).inc(float(total))
        return FixedIntervalProfile(
            interval_size=interval_size,
            starts=starts,
            instructions=instructions,
            bbv=bbv,
        )

    def _accumulate_bbv(
        self, start: int, end: int, interval_size: int, n_intervals: int
    ) -> np.ndarray:
        """Instruction-weighted BBV accumulation over [start, end).

        Fully vectorized: every (segment, interval, block) contribution
        becomes one entry of a weighted :func:`np.bincount` over flattened
        (interval, block) cell ids.  Entries are laid out in segment order
        and each cell receives at most one entry per segment, so every BBV
        cell accumulates its additions in exactly the order the scalar
        per-segment loop used — the result is bit-identical.
        """
        trace = self.trace
        n_blocks = self.program.n_blocks
        lo_index = 0 if start == 0 else trace.locate(start)
        hi_index = trace.locate(end - 1) + 1

        # Clipped [seg_lo, seg_hi) instruction bounds per overlapping segment.
        seg_lo = np.maximum(trace.seg_starts[lo_index:hi_index], start)
        seg_hi = np.minimum(trace.seg_starts[lo_index + 1:hi_index + 1], end)
        first = (seg_lo - start) // interval_size
        last = (seg_hi - 1 - start) // interval_size
        spans = last - first + 1

        # One row per (segment, overlapped interval), in segment order.
        n_rows = int(spans.sum())
        row_seg = np.repeat(np.arange(hi_index - lo_index), spans)
        row_offsets = np.cumsum(spans) - spans
        intra = np.arange(n_rows, dtype=np.int64) - np.repeat(row_offsets, spans)
        row_iv = first[row_seg] + intra
        piece_lo = np.maximum(seg_lo[row_seg], start + row_iv * interval_size)
        piece_hi = np.minimum(
            seg_hi[row_seg], start + (row_iv + 1) * interval_size
        )
        overlaps = (piece_hi - piece_lo).astype(np.float64)

        # Expand rows to (row, block) entries via the trace's flat arrays.
        n_per_row = trace.blocks_per_segment[lo_index + row_seg]
        n_entries = int(n_per_row.sum())
        ent_row = np.repeat(np.arange(n_rows, dtype=np.int64), n_per_row)
        ent_offsets = np.cumsum(n_per_row) - n_per_row
        ent_intra = (
            np.arange(n_entries, dtype=np.int64)
            - np.repeat(ent_offsets, n_per_row)
        )
        flat_index = trace.flat_offsets[lo_index + row_seg[ent_row]] + ent_intra
        weights = overlaps[ent_row] * trace.flat_composition[flat_index]
        cells = row_iv[ent_row] * n_blocks + trace.flat_blocks[flat_index]
        return np.bincount(
            cells, weights=weights, minlength=n_intervals * n_blocks
        ).reshape(n_intervals, n_blocks)

    # ------------------------------------------------------------------
    def profile_coarse_intervals(
        self,
        n_segments: int = 4,
        bounds: Optional[np.ndarray] = None,
        backend: Optional[str] = None,
    ) -> CoarseIntervalProfile:
        """Collect BBVs per outer-loop iteration instance.

        ``n_segments`` temporal sub-chunk BBVs per instance feed the COASTS
        signature.  ``bounds`` overrides the instance boundaries (an (n, 2)
        array), which the multi-level sampler uses to re-profile inside one
        coarse simulation point.
        """
        if n_segments <= 0:
            raise TraceError("n_segments must be positive")
        trace = self.trace
        if bounds is None:
            bounds = trace.outer_bounds()
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise TraceError("bounds must be an (n, 2) array")
        if resolve_backend(backend) == "scalar":
            bbv, seg_bbv = self._coarse_scalar(bounds, n_segments)
        else:
            bbv, seg_bbv = self._coarse_vectorized(bounds, n_segments)

        starts = bounds[:, 0].copy()
        instructions = (bounds[:, 1] - bounds[:, 0]).astype(np.int64)
        self.metrics.counter(PROFILE_PASSES, kind="coarse").inc()
        self.metrics.counter(FUNCTIONAL_INSTRUCTIONS).inc(
            float(instructions.sum())
        )
        return CoarseIntervalProfile(
            starts=starts,
            instructions=instructions,
            bbv=bbv,
            segment_bbvs=seg_bbv,
        )

    def _coarse_scalar(
        self, bounds: np.ndarray, n_segments: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-instance piece walk — the differential reference."""
        trace = self.trace
        n_instances = len(bounds)
        n_blocks = self.program.n_blocks
        bbv = np.zeros((n_instances, n_blocks), dtype=np.float64)
        seg_bbv = np.zeros((n_instances, n_segments, n_blocks), dtype=np.float64)

        for i in range(n_instances):
            start, end = int(bounds[i, 0]), int(bounds[i, 1])
            if end <= start:
                raise TraceError(f"instance {i}: empty bounds")
            length = end - start
            chunk = length / n_segments
            for piece in trace.clip(start, end):
                # Precomputed flat slices replace per-piece np.fromiter.
                flat_lo = int(trace.flat_offsets[piece.seg_index])
                flat_hi = int(trace.flat_offsets[piece.seg_index + 1])
                block_ids = trace.flat_blocks[flat_lo:flat_hi]
                rep_len = int(trace.rep_lengths[piece.seg_index])
                composition = trace.flat_composition[flat_lo:flat_hi]
                p_start = max(piece.start_inst, start)
                p_end = min(piece.start_inst + piece.n_reps * rep_len, end)
                if p_end <= p_start:
                    continue
                insts = p_end - p_start
                bbv[i, block_ids] += insts * composition
                # distribute over temporal sub-chunks
                first = int((p_start - start) / chunk)
                last = int((p_end - 1 - start) / chunk)
                first = min(first, n_segments - 1)
                last = min(last, n_segments - 1)
                if first == last:
                    seg_bbv[i, first][block_ids] += insts * composition
                else:
                    edges = [p_start]
                    for s in range(first + 1, last + 1):
                        edges.append(start + int(round(s * chunk)))
                    edges.append(p_end)
                    for s, (edge_lo, edge_hi) in enumerate(
                        zip(edges[:-1], edges[1:]), start=first
                    ):
                        if edge_hi > edge_lo:
                            seg_bbv[i, s][block_ids] += \
                                (edge_hi - edge_lo) * composition
        return bbv, seg_bbv

    def _coarse_vectorized(
        self, bounds: np.ndarray, n_segments: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One weighted-bincount pass over flattened (instance, sub-chunk,
        block) cells.

        Entry layout is instance-major, then trace order, then sub-chunk,
        then block position — exactly the order the scalar walk issues its
        ``+=`` updates, and ``np.bincount`` adds entries in index order, so
        every accumulator cell sees the same addition sequence and the
        profile is bit-identical.  Sub-chunk edges reproduce the scalar
        arithmetic operation for operation (truncating division for chunk
        indices, round-half-even for interior edges); zero-width edge
        spans contribute exact ``+0.0`` no-ops instead of being skipped.
        """
        trace = self.trace
        n_instances = len(bounds)
        n_blocks = self.program.n_blocks
        if n_instances == 0:
            return (
                np.zeros((0, n_blocks), dtype=np.float64),
                np.zeros((0, n_segments, n_blocks), dtype=np.float64),
            )
        starts_b = bounds[:, 0]
        ends_b = bounds[:, 1]
        total = trace.total_instructions
        bad = (ends_b <= starts_b) | (starts_b < 0) | (ends_b > total)
        if bad.any():
            i = int(np.argmax(bad))
            start, end = int(starts_b[i]), int(ends_b[i])
            if end <= start:
                raise TraceError(f"instance {i}: empty bounds")
            raise TraceError(f"bad clip range [{start}, {end})")

        # One row per (instance, overlapped segment), instance-major.
        seg_starts = trace.seg_starts
        lo_idx = np.searchsorted(seg_starts, starts_b, side="right") - 1
        hi_idx = np.searchsorted(seg_starts, ends_b - 1, side="right")
        spans = hi_idx - lo_idx
        n_rows = int(spans.sum())
        row_inst = np.repeat(np.arange(n_instances, dtype=np.int64), spans)
        row_offsets = np.cumsum(spans) - spans
        intra = np.arange(n_rows, dtype=np.int64) - np.repeat(row_offsets, spans)
        row_seg = lo_idx[row_inst] + intra
        p_lo = np.maximum(starts_b[row_inst], seg_starts[row_seg])
        p_hi = np.minimum(ends_b[row_inst], seg_starts[row_seg + 1])
        insts = (p_hi - p_lo).astype(np.float64)

        # Whole-instance BBV: expand rows to (row, block) entries.
        n_per_row = trace.blocks_per_segment[row_seg]
        n_entries = int(n_per_row.sum())
        ent_row = np.repeat(np.arange(n_rows, dtype=np.int64), n_per_row)
        ent_offsets = np.cumsum(n_per_row) - n_per_row
        ent_intra = (
            np.arange(n_entries, dtype=np.int64)
            - np.repeat(ent_offsets, n_per_row)
        )
        flat_index = trace.flat_offsets[row_seg[ent_row]] + ent_intra
        weights = insts[ent_row] * trace.flat_composition[flat_index]
        cells = row_inst[ent_row] * n_blocks + trace.flat_blocks[flat_index]
        bbv = np.bincount(
            cells, weights=weights, minlength=n_instances * n_blocks
        ).reshape(n_instances, n_blocks)

        # Temporal sub-chunk BBVs: one sub-row per (row, overlapped chunk).
        chunk = (ends_b - starts_b).astype(np.float64) / n_segments
        row_start = starts_b[row_inst]
        row_chunk = chunk[row_inst]
        first = ((p_lo - row_start) / row_chunk).astype(np.int64)
        last = ((p_hi - 1 - row_start) / row_chunk).astype(np.int64)
        first = np.minimum(first, n_segments - 1)
        last = np.minimum(last, n_segments - 1)
        sub_counts = last - first + 1
        n_sub = int(sub_counts.sum())
        sub_row = np.repeat(np.arange(n_rows, dtype=np.int64), sub_counts)
        sub_offsets = np.cumsum(sub_counts) - sub_counts
        sub_intra = (
            np.arange(n_sub, dtype=np.int64)
            - np.repeat(sub_offsets, sub_counts)
        )
        sub_s = first[sub_row] + sub_intra
        edge_lo = np.where(
            sub_s == first[sub_row],
            p_lo[sub_row],
            row_start[sub_row]
            + np.rint(sub_s * row_chunk[sub_row]).astype(np.int64),
        )
        edge_hi = np.where(
            sub_s == last[sub_row],
            p_hi[sub_row],
            row_start[sub_row]
            + np.rint((sub_s + 1) * row_chunk[sub_row]).astype(np.int64),
        )
        sub_w = np.maximum(edge_hi - edge_lo, 0).astype(np.float64)

        # Expand sub-rows to (sub-row, block) entries.
        n_per_sub = n_per_row[sub_row]
        n_sent = int(n_per_sub.sum())
        sent_sub = np.repeat(np.arange(n_sub, dtype=np.int64), n_per_sub)
        sent_offsets = np.cumsum(n_per_sub) - n_per_sub
        sent_intra = (
            np.arange(n_sent, dtype=np.int64)
            - np.repeat(sent_offsets, n_per_sub)
        )
        sub_row_of = sub_row[sent_sub]
        sflat = trace.flat_offsets[row_seg[sub_row_of]] + sent_intra
        sweights = sub_w[sent_sub] * trace.flat_composition[sflat]
        scells = (
            (row_inst[sub_row_of] * n_segments + sub_s[sent_sub]) * n_blocks
            + trace.flat_blocks[sflat]
        )
        seg_bbv = np.bincount(
            scells, weights=sweights,
            minlength=n_instances * n_segments * n_blocks,
        ).reshape(n_instances, n_segments, n_blocks)
        return bbv, seg_bbv

    # ------------------------------------------------------------------
    def profile_structures(
        self, backend: Optional[str] = None
    ) -> StructureProfiles:
        """Dynamic coverage and instance counts per cyclic structure."""
        trace = self.trace
        program = self.program
        total = trace.total_instructions
        if resolve_backend(backend) == "scalar":
            insts: Dict[int, int] = {l.loop_id: 0 for l in program.loops}
            instances: Dict[int, int] = {l.loop_id: 0 for l in program.loops}
            # Inner-loop instructions from segments tagged with a loop id;
            # the visit count is the number of body segments.
            for index in range(trace.n_segments):
                loop_id = int(trace.loop_id[index])
                if loop_id >= 0:
                    insts[loop_id] += int(trace.segment_instructions[index])
                    instances[loop_id] += 1
        else:
            # Weighted bincount over the tagged segments' loop ids; the
            # integer instruction totals are exact in float64 (< 2**53).
            loop_ids = [loop.loop_id for loop in program.loops]
            minlength = max(loop_ids) + 1 if loop_ids else 1
            tagged = trace.loop_id >= 0
            ids = trace.loop_id[tagged]
            if ids.size:
                minlength = max(minlength, int(ids.max()) + 1)
            inst_sums = np.bincount(
                ids,
                weights=trace.segment_instructions[tagged].astype(np.float64),
                minlength=minlength,
            ).astype(np.int64)
            inst_counts = np.bincount(ids, minlength=minlength)
            insts = {l.loop_id: int(inst_sums[l.loop_id]) for l in program.loops}
            instances = {
                l.loop_id: int(inst_counts[l.loop_id]) for l in program.loops
            }

        # The outer loop covers everything after the prologue; one instance
        # per outer iteration.  Propagate inner-loop headers implicitly.
        outer_id = trace.workload.outer_loop_id
        insts[outer_id] = total - trace.prologue_end
        instances[outer_id] = trace.spec.n_outer_iterations

        self.metrics.counter(PROFILE_PASSES, kind="structure").inc()
        profiles: StructureProfiles = {}
        for loop in program.loops:
            profiles[loop.loop_id] = StructureProfile(
                loop_id=loop.loop_id,
                depth=loop.depth,
                instructions=insts[loop.loop_id],
                instances=instances[loop.loop_id],
                coverage=insts[loop.loop_id] / total if total else 0.0,
            )
        return profiles
