"""Functional simulator and profilers.

Plays the role of SimpleScalar's ``sim-fast`` plus the SimPoint BBV profiling
plug-in: executes the dynamic trace without timing, counting instructions and
collecting per-interval basic-block vectors.

Interval attribution: a segment's instructions are distributed over the
intervals it overlaps proportionally, using the segment's per-rep block
composition.  Attribution error is confined to partial reps at interval
boundaries (tens of instructions against 10K-instruction intervals) and is
zero for coarse intervals, whose boundaries coincide with segment boundaries.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..errors import TraceError
from .profiles import (
    CoarseIntervalProfile,
    FixedIntervalProfile,
    FunctionalResult,
    StructureProfile,
    StructureProfiles,
)
from .trace import Trace


class FunctionalSimulator:
    """Functional (no-timing) execution and profiling over a trace."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.program = trace.program

    # ------------------------------------------------------------------
    def run(self) -> FunctionalResult:
        """Execute the whole trace, returning aggregate block counts."""
        n_blocks = self.program.n_blocks
        counts = np.zeros(n_blocks, dtype=np.int64)
        for seg in self.trace.segments:
            for block in seg.blocks:
                counts[block] += seg.reps
        instructions = counts * self.program.block_sizes
        return FunctionalResult(
            total_instructions=int(instructions.sum()),
            block_counts=counts,
            block_instructions=instructions,
        )

    # ------------------------------------------------------------------
    def profile_fixed_intervals(
        self,
        interval_size: int,
        start: int = 0,
        end: Optional[int] = None,
    ) -> FixedIntervalProfile:
        """Collect instruction-weighted BBVs for fixed-length intervals.

        With ``start``/``end`` the grid covers only [start, end) — the
        multi-level sampler uses this to re-profile *inside* one coarse
        simulation point.  Interval starts are absolute instruction numbers.
        """
        if interval_size <= 0:
            raise TraceError("interval_size must be positive")
        trace = self.trace
        if end is None:
            end = trace.total_instructions
        if not 0 <= start < end <= trace.total_instructions:
            raise TraceError(f"bad profile range [{start}, {end})")
        total = end - start
        n_intervals = math.ceil(total / interval_size)
        n_blocks = self.program.n_blocks
        bbv = np.zeros((n_intervals, n_blocks), dtype=np.float64)
        sizes = self.program.block_sizes

        for seg_start, seg_end, seg, rep_len in self._segments_in(start, end):
            block_ids = np.fromiter(seg.blocks, dtype=np.int64,
                                    count=len(seg.blocks))
            composition = sizes[block_ids] / float(rep_len)
            seg_insts = seg_end - seg_start
            first = (seg_start - start) // interval_size
            last = (seg_end - 1 - start) // interval_size
            if first == last:
                bbv[first, block_ids] += seg_insts * composition
                continue
            # Overlap of the segment with each interval it spans.
            boundaries = (
                np.arange(first, last + 2, dtype=np.int64) * interval_size + start
            )
            boundaries[0] = seg_start
            boundaries[-1] = seg_end
            overlaps = np.diff(boundaries).astype(np.float64)
            bbv[first:last + 1][:, block_ids] += (
                overlaps[:, None] * composition[None, :]
            )

        starts = np.arange(n_intervals, dtype=np.int64) * interval_size + start
        instructions = np.full(n_intervals, interval_size, dtype=np.int64)
        instructions[-1] = end - int(starts[-1])
        return FixedIntervalProfile(
            interval_size=interval_size,
            starts=starts,
            instructions=instructions,
            bbv=bbv,
        )

    def _segments_in(self, start: int, end: int):
        """Yield ``(clipped_start, clipped_end, segment, rep_len)`` for every
        segment overlapping [start, end), clipped to the range."""
        trace = self.trace
        if start == 0 and end == trace.total_instructions:
            for index, seg in enumerate(trace.segments):
                yield (
                    int(trace.seg_starts[index]),
                    int(trace.seg_starts[index + 1]),
                    seg,
                    int(trace.rep_lengths[index]),
                )
            return
        first = trace.locate(start)
        for index in range(first, trace.n_segments):
            seg_start = int(trace.seg_starts[index])
            if seg_start >= end:
                break
            seg_end = int(trace.seg_starts[index + 1])
            yield (
                max(seg_start, start),
                min(seg_end, end),
                trace.segments[index],
                int(trace.rep_lengths[index]),
            )

    # ------------------------------------------------------------------
    def profile_coarse_intervals(
        self, n_segments: int = 4, bounds: Optional[np.ndarray] = None
    ) -> CoarseIntervalProfile:
        """Collect BBVs per outer-loop iteration instance.

        ``n_segments`` temporal sub-chunk BBVs per instance feed the COASTS
        signature.  ``bounds`` overrides the instance boundaries (an (n, 2)
        array), which the multi-level sampler uses to re-profile inside one
        coarse simulation point.
        """
        if n_segments <= 0:
            raise TraceError("n_segments must be positive")
        trace = self.trace
        if bounds is None:
            bounds = trace.outer_bounds()
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise TraceError("bounds must be an (n, 2) array")
        n_instances = len(bounds)
        n_blocks = self.program.n_blocks
        bbv = np.zeros((n_instances, n_blocks), dtype=np.float64)
        seg_bbv = np.zeros((n_instances, n_segments, n_blocks), dtype=np.float64)
        sizes = self.program.block_sizes

        for i in range(n_instances):
            start, end = int(bounds[i, 0]), int(bounds[i, 1])
            if end <= start:
                raise TraceError(f"instance {i}: empty bounds")
            length = end - start
            chunk = length / n_segments
            for piece in trace.clip(start, end):
                seg = piece.segment
                block_ids = np.fromiter(seg.blocks, dtype=np.int64,
                                        count=len(seg.blocks))
                rep_len = int(sizes[block_ids].sum())
                composition = sizes[block_ids] / float(rep_len)
                p_start = max(piece.start_inst, start)
                p_end = min(piece.start_inst + piece.n_reps * rep_len, end)
                if p_end <= p_start:
                    continue
                insts = p_end - p_start
                bbv[i, block_ids] += insts * composition
                # distribute over temporal sub-chunks
                first = int((p_start - start) / chunk)
                last = int((p_end - 1 - start) / chunk)
                first = min(first, n_segments - 1)
                last = min(last, n_segments - 1)
                if first == last:
                    seg_bbv[i, first][block_ids] += insts * composition
                else:
                    edges = [p_start]
                    for s in range(first + 1, last + 1):
                        edges.append(start + int(round(s * chunk)))
                    edges.append(p_end)
                    for s, (lo, hi) in enumerate(zip(edges[:-1], edges[1:]),
                                                 start=first):
                        if hi > lo:
                            seg_bbv[i, s][block_ids] += (hi - lo) * composition

        starts = bounds[:, 0].copy()
        instructions = (bounds[:, 1] - bounds[:, 0]).astype(np.int64)
        return CoarseIntervalProfile(
            starts=starts,
            instructions=instructions,
            bbv=bbv,
            segment_bbvs=seg_bbv,
        )

    # ------------------------------------------------------------------
    def profile_structures(self) -> StructureProfiles:
        """Dynamic coverage and instance counts per cyclic structure."""
        trace = self.trace
        program = self.program
        total = trace.total_instructions
        insts: Dict[int, int] = {loop.loop_id: 0 for loop in program.loops}
        instances: Dict[int, int] = {loop.loop_id: 0 for loop in program.loops}

        # Inner-loop instructions from segments tagged with a loop id; the
        # visit count is the number of body segments.
        for index, seg in enumerate(trace.segments):
            if seg.loop_id >= 0:
                insts[seg.loop_id] += int(trace.segment_instructions[index])
                instances[seg.loop_id] += 1

        # The outer loop covers everything after the prologue; one instance
        # per outer iteration.  Propagate inner-loop headers implicitly.
        outer_id = trace.workload.outer_loop_id
        insts[outer_id] = total - trace.prologue_end
        instances[outer_id] = trace.spec.n_outer_iterations

        profiles: StructureProfiles = {}
        for loop in program.loops:
            profiles[loop.loop_id] = StructureProfile(
                loop_id=loop.loop_id,
                depth=loop.depth,
                instructions=insts[loop.loop_id],
                instances=instances[loop.loop_id],
                coverage=insts[loop.loop_id] / total if total else 0.0,
            )
        return profiles
