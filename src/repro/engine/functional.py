"""Functional simulator and profilers.

Plays the role of SimpleScalar's ``sim-fast`` plus the SimPoint BBV profiling
plug-in: executes the dynamic trace without timing, counting instructions and
collecting per-interval basic-block vectors.

Interval attribution: a segment's instructions are distributed over the
intervals it overlaps proportionally, using the segment's per-rep block
composition.  Attribution error is confined to partial reps at interval
boundaries (tens of instructions against 10K-instruction intervals) and is
zero for coarse intervals, whose boundaries coincide with segment boundaries.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..errors import TraceError
from ..obs import FUNCTIONAL_INSTRUCTIONS, PROFILE_PASSES, MetricsRegistry
from .profiles import (
    CoarseIntervalProfile,
    FixedIntervalProfile,
    FunctionalResult,
    StructureProfile,
    StructureProfiles,
)
from .trace import Trace


class FunctionalSimulator:
    """Functional (no-timing) execution and profiling over a trace.

    *metrics* hooks the simulator into an observability registry at
    coarse granularity — one counter bump per pass, never per interval
    or block, so the hot loops stay untouched.  A private registry is
    used when none is supplied.
    """

    def __init__(
        self, trace: Trace, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.trace = trace
        self.program = trace.program
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    def run(self) -> FunctionalResult:
        """Execute the whole trace, returning aggregate block counts.

        One weighted bincount over the trace's flat block array replaces
        the per-segment/per-block Python loop; float64 holds the integer
        rep counts exactly (they are far below 2**53).
        """
        trace = self.trace
        reps = np.fromiter(
            (s.reps for s in trace.segments), dtype=np.int64,
            count=trace.n_segments,
        )
        counts = np.bincount(
            trace.flat_blocks,
            weights=np.repeat(reps, trace.blocks_per_segment).astype(np.float64),
            minlength=self.program.n_blocks,
        ).astype(np.int64)
        instructions = counts * self.program.block_sizes
        self.metrics.counter(PROFILE_PASSES, kind="functional_run").inc()
        self.metrics.counter(FUNCTIONAL_INSTRUCTIONS).inc(
            float(instructions.sum())
        )
        return FunctionalResult(
            total_instructions=int(instructions.sum()),
            block_counts=counts,
            block_instructions=instructions,
        )

    # ------------------------------------------------------------------
    def profile_fixed_intervals(
        self,
        interval_size: int,
        start: int = 0,
        end: Optional[int] = None,
    ) -> FixedIntervalProfile:
        """Collect instruction-weighted BBVs for fixed-length intervals.

        With ``start``/``end`` the grid covers only [start, end) — the
        multi-level sampler uses this to re-profile *inside* one coarse
        simulation point.  Interval starts are absolute instruction numbers.
        """
        if interval_size <= 0:
            raise TraceError("interval_size must be positive")
        trace = self.trace
        if end is None:
            end = trace.total_instructions
        if not 0 <= start < end <= trace.total_instructions:
            raise TraceError(f"bad profile range [{start}, {end})")
        total = end - start
        n_intervals = math.ceil(total / interval_size)
        n_blocks = self.program.n_blocks
        bbv = self._accumulate_bbv(start, end, interval_size, n_intervals)

        starts = np.arange(n_intervals, dtype=np.int64) * interval_size + start
        instructions = np.full(n_intervals, interval_size, dtype=np.int64)
        instructions[-1] = end - int(starts[-1])
        self.metrics.counter(PROFILE_PASSES, kind="fixed").inc()
        self.metrics.counter(FUNCTIONAL_INSTRUCTIONS).inc(float(total))
        return FixedIntervalProfile(
            interval_size=interval_size,
            starts=starts,
            instructions=instructions,
            bbv=bbv,
        )

    def _accumulate_bbv(
        self, start: int, end: int, interval_size: int, n_intervals: int
    ) -> np.ndarray:
        """Instruction-weighted BBV accumulation over [start, end).

        Fully vectorized: every (segment, interval, block) contribution
        becomes one entry of a weighted :func:`np.bincount` over flattened
        (interval, block) cell ids.  Entries are laid out in segment order
        and each cell receives at most one entry per segment, so every BBV
        cell accumulates its additions in exactly the order the scalar
        per-segment loop used — the result is bit-identical.
        """
        trace = self.trace
        n_blocks = self.program.n_blocks
        lo_index = 0 if start == 0 else trace.locate(start)
        hi_index = trace.locate(end - 1) + 1

        # Clipped [seg_lo, seg_hi) instruction bounds per overlapping segment.
        seg_lo = np.maximum(trace.seg_starts[lo_index:hi_index], start)
        seg_hi = np.minimum(trace.seg_starts[lo_index + 1:hi_index + 1], end)
        first = (seg_lo - start) // interval_size
        last = (seg_hi - 1 - start) // interval_size
        spans = last - first + 1

        # One row per (segment, overlapped interval), in segment order.
        n_rows = int(spans.sum())
        row_seg = np.repeat(np.arange(hi_index - lo_index), spans)
        row_offsets = np.cumsum(spans) - spans
        intra = np.arange(n_rows, dtype=np.int64) - np.repeat(row_offsets, spans)
        row_iv = first[row_seg] + intra
        piece_lo = np.maximum(seg_lo[row_seg], start + row_iv * interval_size)
        piece_hi = np.minimum(
            seg_hi[row_seg], start + (row_iv + 1) * interval_size
        )
        overlaps = (piece_hi - piece_lo).astype(np.float64)

        # Expand rows to (row, block) entries via the trace's flat arrays.
        n_per_row = trace.blocks_per_segment[lo_index + row_seg]
        n_entries = int(n_per_row.sum())
        ent_row = np.repeat(np.arange(n_rows, dtype=np.int64), n_per_row)
        ent_offsets = np.cumsum(n_per_row) - n_per_row
        ent_intra = (
            np.arange(n_entries, dtype=np.int64)
            - np.repeat(ent_offsets, n_per_row)
        )
        flat_index = trace.flat_offsets[lo_index + row_seg[ent_row]] + ent_intra
        weights = overlaps[ent_row] * trace.flat_composition[flat_index]
        cells = row_iv[ent_row] * n_blocks + trace.flat_blocks[flat_index]
        return np.bincount(
            cells, weights=weights, minlength=n_intervals * n_blocks
        ).reshape(n_intervals, n_blocks)

    # ------------------------------------------------------------------
    def profile_coarse_intervals(
        self, n_segments: int = 4, bounds: Optional[np.ndarray] = None
    ) -> CoarseIntervalProfile:
        """Collect BBVs per outer-loop iteration instance.

        ``n_segments`` temporal sub-chunk BBVs per instance feed the COASTS
        signature.  ``bounds`` overrides the instance boundaries (an (n, 2)
        array), which the multi-level sampler uses to re-profile inside one
        coarse simulation point.
        """
        if n_segments <= 0:
            raise TraceError("n_segments must be positive")
        trace = self.trace
        if bounds is None:
            bounds = trace.outer_bounds()
        bounds = np.asarray(bounds, dtype=np.int64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise TraceError("bounds must be an (n, 2) array")
        n_instances = len(bounds)
        n_blocks = self.program.n_blocks
        bbv = np.zeros((n_instances, n_blocks), dtype=np.float64)
        seg_bbv = np.zeros((n_instances, n_segments, n_blocks), dtype=np.float64)

        for i in range(n_instances):
            start, end = int(bounds[i, 0]), int(bounds[i, 1])
            if end <= start:
                raise TraceError(f"instance {i}: empty bounds")
            length = end - start
            chunk = length / n_segments
            for piece in trace.clip(start, end):
                # Precomputed flat slices replace per-piece np.fromiter.
                lo = int(trace.flat_offsets[piece.seg_index])
                hi = int(trace.flat_offsets[piece.seg_index + 1])
                block_ids = trace.flat_blocks[lo:hi]
                rep_len = int(trace.rep_lengths[piece.seg_index])
                composition = trace.flat_composition[lo:hi]
                p_start = max(piece.start_inst, start)
                p_end = min(piece.start_inst + piece.n_reps * rep_len, end)
                if p_end <= p_start:
                    continue
                insts = p_end - p_start
                bbv[i, block_ids] += insts * composition
                # distribute over temporal sub-chunks
                first = int((p_start - start) / chunk)
                last = int((p_end - 1 - start) / chunk)
                first = min(first, n_segments - 1)
                last = min(last, n_segments - 1)
                if first == last:
                    seg_bbv[i, first][block_ids] += insts * composition
                else:
                    edges = [p_start]
                    for s in range(first + 1, last + 1):
                        edges.append(start + int(round(s * chunk)))
                    edges.append(p_end)
                    for s, (lo, hi) in enumerate(zip(edges[:-1], edges[1:]),
                                                 start=first):
                        if hi > lo:
                            seg_bbv[i, s][block_ids] += (hi - lo) * composition

        starts = bounds[:, 0].copy()
        instructions = (bounds[:, 1] - bounds[:, 0]).astype(np.int64)
        self.metrics.counter(PROFILE_PASSES, kind="coarse").inc()
        self.metrics.counter(FUNCTIONAL_INSTRUCTIONS).inc(
            float(instructions.sum())
        )
        return CoarseIntervalProfile(
            starts=starts,
            instructions=instructions,
            bbv=bbv,
            segment_bbvs=seg_bbv,
        )

    # ------------------------------------------------------------------
    def profile_structures(self) -> StructureProfiles:
        """Dynamic coverage and instance counts per cyclic structure."""
        trace = self.trace
        program = self.program
        total = trace.total_instructions
        insts: Dict[int, int] = {loop.loop_id: 0 for loop in program.loops}
        instances: Dict[int, int] = {loop.loop_id: 0 for loop in program.loops}

        # Inner-loop instructions from segments tagged with a loop id; the
        # visit count is the number of body segments.
        for index, seg in enumerate(trace.segments):
            if seg.loop_id >= 0:
                insts[seg.loop_id] += int(trace.segment_instructions[index])
                instances[seg.loop_id] += 1

        # The outer loop covers everything after the prologue; one instance
        # per outer iteration.  Propagate inner-loop headers implicitly.
        outer_id = trace.workload.outer_loop_id
        insts[outer_id] = total - trace.prologue_end
        instances[outer_id] = trace.spec.n_outer_iterations

        self.metrics.counter(PROFILE_PASSES, kind="structure").inc()
        profiles: StructureProfiles = {}
        for loop in program.loops:
            profiles[loop.loop_id] = StructureProfile(
                loop_id=loop.loop_id,
                depth=loop.depth,
                instructions=insts[loop.loop_id],
                instances=instances[loop.loop_id],
                coverage=insts[loop.loop_id] / total if total else 0.0,
            )
        return profiles
