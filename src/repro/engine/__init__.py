"""Dynamic trace generation, functional simulation and profiling."""

from .functional import FunctionalSimulator
from .profiles import (
    CoarseIntervalProfile,
    FixedIntervalProfile,
    FunctionalResult,
    StructureProfile,
    StructureProfiles,
)
from .trace import Segment, SegmentPiece, Trace, TraceBuilder, build_trace

__all__ = [
    "CoarseIntervalProfile",
    "FixedIntervalProfile",
    "FunctionalResult",
    "FunctionalSimulator",
    "Segment",
    "SegmentPiece",
    "StructureProfile",
    "StructureProfiles",
    "Trace",
    "TraceBuilder",
    "build_trace",
]
