"""Dynamic trace generation, functional simulation and profiling."""

from .backend import get_backend, resolve_backend, set_backend, use_backend
from .functional import FunctionalSimulator
from .profiles import (
    CoarseIntervalProfile,
    FixedIntervalProfile,
    FunctionalResult,
    StructureProfile,
    StructureProfiles,
)
from .shm import attach_or_none, attach_trace, share_trace, shm_enabled
from .trace import (
    TRACE_ARRAY_FIELDS,
    Segment,
    SegmentPiece,
    Trace,
    TraceBuilder,
    build_trace,
)

__all__ = [
    "CoarseIntervalProfile",
    "FixedIntervalProfile",
    "FunctionalResult",
    "FunctionalSimulator",
    "Segment",
    "SegmentPiece",
    "StructureProfile",
    "StructureProfiles",
    "TRACE_ARRAY_FIELDS",
    "Trace",
    "TraceBuilder",
    "attach_or_none",
    "attach_trace",
    "build_trace",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "share_trace",
    "shm_enabled",
    "use_backend",
]
