"""Kernel backend selection for the engine layer.

The engine's hot paths — trace unrolling (:class:`~repro.engine.trace.
TraceBuilder`), the whole-trace functional run and the coarse/structure
profilers (:class:`~repro.engine.functional.FunctionalSimulator`) —
follow the same pattern as the analysis kernels: a batched
``vectorized`` implementation is the default, and the original Python
loops are retained as the ``scalar`` reference the vectorized paths are
differentially tested against, bit-identical output included (same
flat arrays, same profiles, same RNG draw order).

The switch is independent of the analysis layer's: ``$REPRO_ENGINE_
BACKEND`` selects the engine backend for a whole process, and the
module-level functions below mirror :mod:`repro.analysis.backend`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..backend import BACKENDS, BackendControl
from ..errors import TraceError

#: Environment variable overriding the default backend at first use.
BACKEND_ENV = "REPRO_ENGINE_BACKEND"

#: The engine layer's process-global switch.
CONTROL = BackendControl(BACKEND_ENV, TraceError)


def get_backend() -> str:
    """The active engine backend name."""
    return CONTROL.get()


def set_backend(name: str) -> str:
    """Select the engine backend; returns the previously active one."""
    return CONTROL.set(name)


def resolve_backend(name: Optional[str]) -> str:
    """*name* itself if given (validated), else the active backend."""
    return CONTROL.resolve(name)


def use_backend(name: str) -> Iterator[str]:
    """Context manager: run a block under *name*, then restore."""
    return CONTROL.use(name)


__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "CONTROL",
    "get_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
