"""Benchmark execution: warm-up + measured repetitions over obs spans.

Every measured repetition is one ``bench_rep`` span under a per-case
``bench_case`` span, so a ``--trace-out`` of a bench run renders in
``repro obs report`` exactly like any other harness trace, and the
per-rep durations in the report are the span durations themselves
(monotonic ``perf_counter``, immune to wall-clock steps).
"""

from __future__ import annotations

import logging
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import HarnessError
from ..obs import ObsContext, register_help
from .suite import BenchCase

logger = logging.getLogger(__name__)

#: Counter: measured bench repetitions, labelled by case and backend.
BENCH_REPS = "repro_bench_reps"
register_help(BENCH_REPS, "Measured bench repetitions per case/backend.")


@dataclass(frozen=True)
class BackendTiming:
    """Measured repetitions of one case under one backend."""

    backend: str
    seconds: Sequence[float]

    @property
    def best(self) -> float:
        """Fastest rep — the conventional microbenchmark statistic."""
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.seconds)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "best_seconds": self.best,
            "mean_seconds": self.mean,
            "seconds": list(self.seconds),
        }


@dataclass(frozen=True)
class CaseResult:
    """One case's timings across its backends."""

    name: str
    description: str
    reps: int
    warmup: int
    timings: Dict[str, BackendTiming] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        """Scalar-over-vectorized best-time ratio (None without both)."""
        if "vectorized" not in self.timings or "scalar" not in self.timings:
            return None
        return self.timings["scalar"].best / self.timings["vectorized"].best

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "reps": self.reps,
            "warmup": self.warmup,
            "timings": {
                backend: timing.to_dict()
                for backend, timing in self.timings.items()
            },
            "speedup": self.speedup,
        }


def run_bench(
    cases: Sequence[BenchCase],
    scale: float,
    reps: int = 5,
    warmup: int = 1,
    obs: Optional[ObsContext] = None,
) -> List[CaseResult]:
    """Run *cases*: one setup, *warmup* unmeasured + *reps* measured runs.

    Per case and backend, each measured run is timed by a ``bench_rep``
    span; the returned :class:`CaseResult` carries the span durations.
    *obs* collects the spans and the :data:`BENCH_REPS` counter (a
    private context is used when omitted).
    """
    if reps < 1:
        raise HarnessError(f"reps must be >= 1, got {reps}")
    if warmup < 0:
        raise HarnessError(f"warmup must be >= 0, got {warmup}")
    obs = obs if obs is not None else ObsContext()

    results: List[CaseResult] = []
    for case in cases:
        with obs.tracer.span("bench_case", case=case.name, scale=scale):
            with obs.tracer.span("bench_setup", case=case.name):
                payload = case.setup(scale)
            timings: Dict[str, BackendTiming] = {}
            for backend in case.backends:
                for _ in range(warmup):
                    case.run(payload, backend)
                seconds: List[float] = []
                for rep in range(reps):
                    with obs.tracer.span(
                        "bench_rep", case=case.name, backend=backend, rep=rep
                    ) as span:
                        case.run(payload, backend)
                    seconds.append(float(span.duration))
                    obs.metrics.counter(
                        BENCH_REPS, case=case.name, backend=backend
                    ).inc()
                timings[backend] = BackendTiming(
                    backend=backend, seconds=tuple(seconds)
                )
                logger.info(
                    "bench %s [%s]: best %.6fs over %d reps",
                    case.name, backend, timings[backend].best, reps,
                )
        results.append(
            CaseResult(
                name=case.name,
                description=case.description,
                reps=reps,
                warmup=warmup,
                timings=timings,
            )
        )
    return results
