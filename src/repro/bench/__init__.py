"""Performance-regression microbenchmarks for the analysis hot path.

The paper's claim is *speed at preserved accuracy*; this package records
the speed half so it cannot silently rot.  Three pieces:

* :mod:`repro.bench.suite` — the declarative benchmark suite: k-means
  sweep, signature build, coarse+fine two-level planning, and the
  detailed-timing segment loop, each naming which kernel backends it
  exercises;
* :mod:`repro.bench.runner` — warm-up + measured repetitions, timed via
  the observability span tracer, yielding per-case best/mean seconds and
  the vectorized-over-scalar speedup ratio;
* :mod:`repro.bench.report` — the schema-versioned
  ``BENCH_phase_analysis.json`` artefact (host fingerprint included) and
  the baseline comparison used by CI: speedup *ratios* are asserted
  against committed floors (host-portable, non-flaky), wall-clock only
  on request.

Driven by the ``repro bench`` CLI subcommand; see the README's
"Benchmarking" section for the baseline-update workflow.
"""

from .report import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_REPORT_NAME,
    BenchReport,
    compare_reports,
    load_report,
)
from .runner import CaseResult, run_bench
from .suite import (
    BENCH_SUITE,
    BENCH_WORKLOAD,
    DEFAULT_BENCH_SCALE,
    BenchCase,
    bench_workload,
    select_cases,
    set_bench_workload,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCH_SUITE",
    "BENCH_WORKLOAD",
    "BenchCase",
    "BenchReport",
    "CaseResult",
    "DEFAULT_BENCH_SCALE",
    "DEFAULT_REPORT_NAME",
    "bench_workload",
    "compare_reports",
    "load_report",
    "run_bench",
    "select_cases",
    "set_bench_workload",
]
