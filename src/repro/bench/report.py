"""The ``BENCH_phase_analysis.json`` artefact and baseline comparison.

A :class:`BenchReport` is schema-versioned and stamped with the host
fingerprint from :mod:`repro.obs.manifest`, so a recorded number always
names the code, interpreter, numpy and platform that produced it.

Comparison semantics — designed to be non-flaky in CI:

* **ratio checks** (always on): a case's vectorized-over-scalar speedup
  must stay above the ``min_speedup`` floor committed in the baseline,
  and must not fall more than ``threshold`` (fractionally) below the
  baseline's recorded speedup.  Ratios divide out the host's absolute
  speed, so they hold on any machine.
* **wall-clock checks** (opt-in, ``--wall``): a case's best vectorized
  time must not exceed the baseline's by more than ``threshold``.  Only
  meaningful when current and baseline ran on comparable hosts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import HarnessError
from ..obs.manifest import host_fingerprint
from .runner import CaseResult

#: Bump when the report layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Default artefact file name (the repo's perf trajectory record).
DEFAULT_REPORT_NAME = "BENCH_phase_analysis.json"


@dataclass(frozen=True)
class BenchReport:
    """One bench invocation's results plus provenance."""

    schema_version: int
    host: Dict[str, str]
    scale: float
    cases: List[dict]
    #: Per-case speedup floors asserted by :func:`compare_reports`
    #: (committed in the baseline file; empty on freshly measured
    #: reports unless carried over).
    min_speedups: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @staticmethod
    def build(
        results: Sequence[CaseResult],
        scale: float,
        min_speedups: Optional[Dict[str, float]] = None,
    ) -> "BenchReport":
        """Assemble a report from runner output (stamps the host)."""
        return BenchReport(
            schema_version=BENCH_SCHEMA_VERSION,
            host=host_fingerprint(),
            scale=scale,
            cases=[result.to_dict() for result in results],
            min_speedups=dict(min_speedups or {}),
        )

    # ------------------------------------------------------------------
    def case(self, name: str) -> Optional[dict]:
        """The named case's payload, or None."""
        for case in self.cases:
            if case["name"] == name:
                return case
        return None

    def speedup(self, name: str) -> Optional[float]:
        """The named case's speedup ratio, or None."""
        case = self.case(name)
        return case.get("speedup") if case else None

    def best_seconds(self, name: str, backend: str = "vectorized") -> Optional[float]:
        """The named case's best time under *backend*, or None."""
        case = self.case(name)
        if not case:
            return None
        timing = case.get("timings", {}).get(backend)
        return timing.get("best_seconds") if timing else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "host": dict(self.host),
            "scale": self.scale,
            "min_speedups": dict(self.min_speedups),
            "cases": list(self.cases),
        }

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def load_report(path) -> BenchReport:
    """Read a report; unknown schema versions are rejected loudly."""
    path = Path(path)
    if not path.exists():
        raise HarnessError(f"bench baseline not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise HarnessError(f"unreadable bench report {path}: {error}")
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise HarnessError(
            f"bench report {path} has schema version {version!r}; this "
            f"build reads version {BENCH_SCHEMA_VERSION}"
        )
    return BenchReport(
        schema_version=version,
        host=dict(payload.get("host", {})),
        scale=float(payload.get("scale", 0.0)),
        cases=list(payload.get("cases", [])),
        min_speedups={
            str(k): float(v)
            for k, v in payload.get("min_speedups", {}).items()
        },
    )


def compare_reports(
    current: BenchReport,
    baseline: BenchReport,
    threshold: float = 0.5,
    wall: bool = False,
) -> List[str]:
    """Regressions of *current* against *baseline* (empty list = clean).

    *threshold* is the tolerated fractional slack on both the relative
    ratio check and the opt-in wall-clock check; the ``min_speedup``
    floors are absolute and get no slack.
    """
    if threshold <= 0:
        raise HarnessError(f"threshold must be > 0, got {threshold}")
    regressions: List[str] = []
    for base_case in baseline.cases:
        name = base_case["name"]
        case = current.case(name)
        if case is None:
            regressions.append(f"{name}: present in baseline but not run")
            continue
        speedup = case.get("speedup")
        floor = baseline.min_speedups.get(name)
        if floor is not None:
            if speedup is None:
                regressions.append(
                    f"{name}: baseline demands >= {floor:.2f}x over the "
                    f"scalar path but no ratio was measured"
                )
            elif speedup < floor:
                regressions.append(
                    f"{name}: vectorized path only {speedup:.2f}x over "
                    f"scalar (floor {floor:.2f}x)"
                )
        base_speedup = base_case.get("speedup")
        if speedup is not None and base_speedup is not None:
            if speedup < base_speedup * (1.0 - threshold):
                regressions.append(
                    f"{name}: speedup {speedup:.2f}x fell more than "
                    f"{threshold:.0%} below baseline {base_speedup:.2f}x"
                )
        if wall:
            seconds = current.best_seconds(name)
            base_seconds = baseline.best_seconds(name)
            if seconds is not None and base_seconds is not None:
                if seconds > base_seconds * (1.0 + threshold):
                    regressions.append(
                        f"{name}: best {seconds:.6f}s exceeds baseline "
                        f"{base_seconds:.6f}s by more than {threshold:.0%}"
                    )
    return regressions
