"""The declarative microbenchmark suite.

Each :class:`BenchCase` names a setup (run once, outside timing), a
payload-consuming kernel, and the analysis backends it is measured
under.  Cases that exercise the backend-switchable analysis kernels run
under both ``vectorized`` and ``scalar`` so the runner can report their
speedup ratio — the host-portable number CI asserts on.  Cases whose
cost lives outside the analysis layer (the detailed-timing segment
loop) run vectorized-only and contribute wall-clock trend data.

Kernel-shaped cases (k-means sweep, signature build) use fixed synthetic
inputs modelled on SimPoint's real shapes — projected 15-dim BBVs, 4
temporal sub-chunks per signature — so their cost is independent of
``--scale``; pipeline-shaped cases (two-level planning, detailed timing)
run on the real gzip trace at the requested scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from functools import lru_cache
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from ..analysis import cluster_with_bic, concat_signatures, project_bbvs
from ..analysis.backend import use_backend
from ..config import CONFIG_A, DEFAULT_SAMPLING, SamplingConfig
from ..detailed.timing import TimingSimulator
from ..engine.functional import FunctionalSimulator
from ..engine.trace import Trace, TraceBuilder
from ..errors import HarnessError
from ..sampling.coasts import Coasts
from ..sampling.multilevel import MultiLevelSampler
from ..sampling.ranked_set import RankedSetSampler
from ..sampling.stratified import StratifiedSampler
from ..workloads.registry import load_trace, load_workload

#: Default workload scale for the trace-backed cases (``repro bench
#: --scale``); small enough for CI, large enough to dominate overheads.
DEFAULT_BENCH_SCALE = 0.25

#: Default benchmark the trace-backed cases profile.
BENCH_WORKLOAD = "gzip"

_workload = BENCH_WORKLOAD


def bench_workload() -> str:
    """The benchmark the trace-backed cases currently profile."""
    return _workload


def set_bench_workload(name: str) -> None:
    """Point the trace-backed cases at *name* (``repro bench --benchmark``).

    Accepts any registry-resolvable name — a suite benchmark, a
    ``fam:<family>[i]`` member or an ``import:<path>`` trace.  Traces are
    cached per (name, scale), so switching back and forth is cheap.
    """
    global _workload
    _workload = name


@dataclass(frozen=True)
class BenchCase:
    """One microbenchmark: setup once, run repeatedly per backend."""

    name: str
    description: str
    #: Backends the timed kernel is measured under; a ("vectorized",)
    #: case has no scalar reference (its cost is outside the analysis
    #: layer) and therefore no speedup ratio.
    backends: Tuple[str, ...]
    setup: Callable[[float], Any]
    run: Callable[[Any, str], Any]
    #: Which backend switch the case exercises ("analysis" kernels or
    #: the "engine" trace builder/profilers) — reported by ``--list``.
    layer: str = "analysis"


@lru_cache(maxsize=4)
def _cached_trace(name: str, scale: float) -> Trace:
    return load_trace(name, scale=scale)


def _bench_trace(scale: float) -> Trace:
    return _cached_trace(_workload, scale)


def _bench_sampling(trace: Trace) -> SamplingConfig:
    """The default sampling knobs, with the fine grid capped for speed.

    At small bench scales the paper-default fine interval can produce a
    huge interval count; cap the grid at ~2000 intervals so the bench
    measures kernel throughput, not an unrepresentative input size.
    """
    fine = max(
        DEFAULT_SAMPLING.fine_interval_size,
        trace.total_instructions // 2000,
    )
    return SamplingConfig(
        fine_interval_size=fine,
        resample_threshold=fine * DEFAULT_SAMPLING.fine_kmax,
        kmeans_seeds=2,
    )


# ----------------------------------------------------------------------
# kmeans sweep: the BIC model-selection sweep over projected signatures,
# SimPoint's clustering hot loop.

def _setup_kmeans(scale: float) -> np.ndarray:
    rng = np.random.default_rng(1234)
    raw = rng.random((300, 256))
    return project_bbvs(raw, DEFAULT_SAMPLING.projection_dim, seed=0)


def _run_kmeans(payload: np.ndarray, backend: str) -> None:
    cluster_with_bic(payload, kmax=8, seed=0, n_seeds=2, backend=backend)


# ----------------------------------------------------------------------
# signature build: COASTS's normalise-project-concatenate pipeline.

def _setup_signatures(scale: float) -> np.ndarray:
    rng = np.random.default_rng(99)
    return rng.random((64, DEFAULT_SAMPLING.signature_segments, 256))


def _run_signatures(payload: np.ndarray, backend: str) -> None:
    concat_signatures(
        payload, dim=DEFAULT_SAMPLING.projection_dim, seed=0, backend=backend
    )


# ----------------------------------------------------------------------
# two-level plan: COASTS coarse clustering plus the multi-level
# re-sampling pass — the paper's Section IV pipeline end to end.

def _setup_two_level(scale: float) -> Trace:
    return _bench_trace(scale)


def _run_two_level(trace: Trace, backend: str) -> None:
    sampling = _bench_sampling(trace)
    with use_backend(backend):
        coarse = Coasts(sampling).sample(trace, benchmark=_workload)
        MultiLevelSampler(sampling).sample(
            trace, benchmark=_workload, coarse_plan=coarse
        )


# ----------------------------------------------------------------------
# registry samplers: the stratified allocation pipeline and the
# ranked-set repeated-subsampling pipeline, from an already-built fine
# profile (profiling cost is the engine cases' business, not these).
# The BIC sweep is capped at kmax 8 — kmeans_sweep already measures the
# full-width sweep; these cases target the allocation/ranking stages.

def _setup_fine_plan(scale: float):
    trace = _bench_trace(scale)
    sampling = replace(_bench_sampling(trace), fine_kmax=8)
    profile = FunctionalSimulator(trace).profile_fixed_intervals(
        sampling.fine_interval_size
    )
    return sampling, profile


def _run_stratified(payload, backend: str) -> None:
    sampling, profile = payload
    with use_backend(backend):
        StratifiedSampler(sampling).sample(profile, benchmark=_workload)


def _run_ranked_set(payload, backend: str) -> None:
    sampling, profile = payload
    with use_backend(backend):
        RankedSetSampler(sampling).sample(profile, benchmark=_workload)


# ----------------------------------------------------------------------
# detailed timing: the block-level OoO segment loop over the whole
# trace (the "original sim-outorder" cost every speedup is quoted
# against).  Backend-independent: measured vectorized-only.

def _setup_detailed(scale: float) -> Trace:
    return _bench_trace(scale)


def _run_detailed(trace: Trace, backend: str) -> None:
    TimingSimulator(trace, CONFIG_A).simulate_full()


# ----------------------------------------------------------------------
# engine cases: the trace unroll and the functional profiling passes,
# measured per-call under both engine backends (``repro.engine.backend``
# is independent of the analysis switch; the ``backend=`` keyword wins
# over the process-global selection, so the suite needs no context
# manager here).

def _setup_trace_build(scale: float):
    return load_workload(_workload, scale=scale)


def _run_trace_build(workload, backend: str) -> None:
    TraceBuilder(workload).build(backend=backend)


def _setup_functional(scale: float) -> FunctionalSimulator:
    return FunctionalSimulator(_bench_trace(scale))


def _run_coarse(sim: FunctionalSimulator, backend: str) -> None:
    sim.profile_coarse_intervals(backend=backend)


def _run_structures(sim: FunctionalSimulator, backend: str) -> None:
    sim.profile_structures(backend=backend)


def _run_functional(sim: FunctionalSimulator, backend: str) -> None:
    sim.run(backend=backend)


#: The suite, in reporting order.
BENCH_SUITE: Tuple[BenchCase, ...] = (
    BenchCase(
        name="kmeans_sweep",
        description="BIC k-sweep over 300x15 projected BBVs (kmax 8)",
        backends=("vectorized", "scalar"),
        setup=_setup_kmeans,
        run=_run_kmeans,
    ),
    BenchCase(
        name="signature_build",
        description="COASTS signature build, 64 instances x 4 chunks x 256 blocks",
        backends=("vectorized", "scalar"),
        setup=_setup_signatures,
        run=_run_signatures,
    ),
    BenchCase(
        name="two_level_plan",
        description="coarse + fine two-level sampling plan on gzip",
        backends=("vectorized", "scalar"),
        setup=_setup_two_level,
        run=_run_two_level,
    ),
    BenchCase(
        name="plan_stratified",
        description="stratified plan (cluster + Neyman allocation) on gzip",
        backends=("vectorized", "scalar"),
        setup=_setup_fine_plan,
        run=_run_stratified,
    ),
    BenchCase(
        name="plan_ranked_set",
        description="ranked-set plan (proxy rank + repeated subsampling) "
                    "on gzip",
        backends=("vectorized", "scalar"),
        setup=_setup_fine_plan,
        run=_run_ranked_set,
    ),
    BenchCase(
        name="detailed_timing",
        description="detailed timing segment loop, full gzip trace",
        backends=("vectorized",),
        setup=_setup_detailed,
        run=_run_detailed,
        layer="detailed",
    ),
    BenchCase(
        name="trace_build",
        description="trace unroll from workload schedule (gzip)",
        backends=("vectorized", "scalar"),
        setup=_setup_trace_build,
        run=_run_trace_build,
        layer="engine",
    ),
    BenchCase(
        name="coarse_profile",
        description="per-outer-iteration coarse BBV profile (gzip)",
        backends=("vectorized", "scalar"),
        setup=_setup_functional,
        run=_run_coarse,
        layer="engine",
    ),
    BenchCase(
        name="structure_profile",
        description="per-loop dynamic coverage profile (gzip)",
        backends=("vectorized", "scalar"),
        setup=_setup_functional,
        run=_run_structures,
        layer="engine",
    ),
    BenchCase(
        name="functional_run",
        description="whole-trace functional block counts (gzip)",
        backends=("vectorized", "scalar"),
        setup=_setup_functional,
        run=_run_functional,
        layer="engine",
    ),
)


def _case_matches(case: BenchCase, pattern: str) -> bool:
    """A pattern selects by layer name (exact), glob, or substring."""
    if pattern == case.layer:
        return True
    if any(ch in pattern for ch in "*?["):
        return fnmatchcase(case.name, pattern)
    return pattern in case.name


def select_cases(
    pattern: Optional[str] = None,
    suite: Tuple[BenchCase, ...] = BENCH_SUITE,
) -> List[BenchCase]:
    """Cases matching *pattern* (all of them when None).

    A plain pattern matches as a substring of the case name; one with
    glob metacharacters (``trace_*``) matches the whole name via
    :func:`fnmatch.fnmatchcase`; a layer name (``engine``,
    ``analysis``) selects that layer's cases.
    """
    if pattern is None:
        return list(suite)
    chosen = [case for case in suite if _case_matches(case, pattern)]
    if not chosen:
        raise HarnessError(
            f"no bench case matches {pattern!r} (have "
            f"{', '.join(case.name for case in suite)})"
        )
    return chosen
