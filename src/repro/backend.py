"""Process-global kernel backend selection, shared by every layer.

Hot kernels in this codebase come in two implementations: a batched
``vectorized`` numpy path (the production default) and a ``scalar``
Python-loop path kept as the bit-identical reference the vectorized
kernels are differentially tested against.  Each layer that follows the
pattern (the analysis kernels, the engine's trace builder and
profilers) owns one :class:`BackendControl` instance, giving it an
independent process-global flag, its own environment variable and its
own error type — while the selection semantics (env override at first
use, ``set``/``use``/per-call ``resolve``) stay identical everywhere.

See :mod:`repro.analysis.backend` for the bit-identity construction
rules the vectorized kernels obey.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple, Type

from .errors import ReproError

#: Recognised backend names, fastest first; index 0 is the default.
BACKENDS: Tuple[str, ...] = ("vectorized", "scalar")


class BackendControl:
    """One layer's process-global vectorized/scalar switch.

    *env_var* overrides the default at first use (import-time semantics
    without an import-time ``os.environ`` read); *error_cls* is the
    layer's own error type, so an unknown name raises e.g.
    ``ClusteringError`` from the analysis layer and ``TraceError`` from
    the engine.
    """

    def __init__(
        self,
        env_var: str,
        error_cls: Type[ReproError],
        backends: Tuple[str, ...] = BACKENDS,
    ) -> None:
        self.env_var = env_var
        self.error_cls = error_cls
        self.backends = backends
        self._active: Optional[str] = None

    # ------------------------------------------------------------------
    def validate(self, name: str) -> str:
        """*name* itself when recognised; the layer's error otherwise."""
        if name not in self.backends:
            raise self.error_cls(
                f"unknown backend {name!r} (choose from "
                f"{', '.join(self.backends)})"
            )
        return name

    def get(self) -> str:
        """The active backend name (env var consulted on first use)."""
        if self._active is None:
            self._active = self.validate(
                os.environ.get(self.env_var, self.backends[0])
            )
        return self._active

    def set(self, name: str) -> str:
        """Select the backend; returns the previously active one."""
        previous = self.get()
        self._active = self.validate(name)
        return previous

    def resolve(self, name: Optional[str]) -> str:
        """*name* itself if given (validated), else the active backend.

        Kernels call this on their ``backend=`` keyword so an explicit
        argument always wins over the process-global selection.
        """
        if name is None:
            return self.get()
        return self.validate(name)

    @contextmanager
    def use(self, name: str) -> Iterator[str]:
        """Context manager: run a block under *name*, then restore."""
        previous = self.set(name)
        try:
            yield name
        finally:
            self.set(previous)
