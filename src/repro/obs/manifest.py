"""Run manifests: what ran, under what inputs, with what outcome.

A :class:`RunManifest` is the provenance record of one harness
invocation — enough to answer, months later, *which code, configuration,
seeds and fault spec produced this table*:

* tool versions (repro, Python, numpy, platform);
* a content digest of every result-affecting input (machine config,
  sampling config, scale, methods — the same inputs the result cache
  and suite journal fingerprint), plus the per-benchmark workload seeds;
* the execution knobs that do *not* affect results but do affect cost
  (jobs, fault policy) and the active ``$REPRO_FAULTS`` spec;
* the outcome: completed/failed run counts, failure one-liners, wall
  clock, cache traffic.

Manifests serialise to a flat JSON dict; ``--trace-out`` embeds one as
the JSONL header record and ``--manifest-out`` writes one standalone.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..config import MachineConfig
    from ..harness.recovery import SuiteOutcome
    from ..harness.runner import ExperimentRunner

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def host_fingerprint() -> Dict[str, str]:
    """Tool-version and platform facts shared by every provenance record.

    Used both by :meth:`RunManifest.collect` and by the ``repro bench``
    report, so a benchmark result always names the code and host that
    produced it.
    """
    import numpy

    from .. import __version__

    return {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "python_version": sys.version.split()[0],
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
    }


@dataclass
class RunManifest:
    """Provenance record of one ``run``/``suite``/``experiment`` call."""

    version: int = MANIFEST_VERSION
    created: str = ""
    repro_version: str = ""
    python_version: str = ""
    numpy_version: str = ""
    platform: str = ""
    config_name: str = ""
    config_digest: str = ""
    sampling_digest: str = ""
    workload_scale: float = 1.0
    methods: List[str] = field(default_factory=list)
    benchmarks: List[str] = field(default_factory=list)
    seeds: Dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    fault_spec: str = ""
    policy: Dict[str, object] = field(default_factory=dict)
    outcome: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @staticmethod
    def collect(
        runner: "ExperimentRunner",
        config: Optional["MachineConfig"] = None,
        names: Sequence[str] = (),
        outcome: Optional["SuiteOutcome"] = None,
    ) -> "RunManifest":
        """Snapshot *runner*'s invocation (call after the work finished)."""
        from ..harness.faults import FAULTS_ENV
        from ..workloads.registry import get_spec

        names = list(names)
        seeds: Dict[str, int] = {}
        for name in names:
            try:
                seeds[name] = get_spec(name).seed
            except Exception:  # unknown name: leave it out of the seeds
                pass
        outcome_payload: Dict[str, object] = {
            "completed": len(outcome.runs) if outcome is not None else 0,
            "failed": len(outcome.failures) if outcome is not None else 0,
            "failures": (
                [f.describe() for f in outcome.failures]
                if outcome is not None else []
            ),
            "wall_seconds": runner.timing.wall_seconds,
            "cache_hits": runner.timing.cache_hits,
            "cache_misses": runner.timing.cache_misses,
        }
        host = host_fingerprint()
        return RunManifest(
            created=host["created"],
            repro_version=host["repro_version"],
            python_version=host["python_version"],
            numpy_version=host["numpy_version"],
            platform=host["platform"],
            config_name=config.name if config is not None else "",
            config_digest=_digest(repr(config)) if config is not None else "",
            sampling_digest=_digest(
                f"{runner.sampling!r}:{runner.cost_model!r}"
            ),
            workload_scale=runner.workload_scale,
            methods=list(runner.methods),
            benchmarks=names,
            seeds=seeds,
            jobs=runner.timing.jobs,
            fault_spec=os.environ.get(FAULTS_ENV, ""),
            policy={
                "max_retries": runner.policy.max_retries,
                "timeout": runner.policy.timeout,
                "fail_fast": runner.policy.fail_fast,
            },
            outcome=outcome_payload,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return asdict(self)

    @staticmethod
    def from_dict(payload: dict) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f for f in RunManifest.__dataclass_fields__}
        return RunManifest(
            **{k: v for k, v in payload.items() if k in known}
        )

    def write(self, path) -> None:
        """Write the manifest as indented JSON to *path*."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @staticmethod
    def load(path) -> "RunManifest":
        """Read a manifest written by :meth:`write`."""
        return RunManifest.from_dict(json.loads(Path(path).read_text()))
