"""The per-process observability context: one tracer + one registry.

Every :class:`~repro.harness.runner.ExperimentRunner` owns an
:class:`ObsContext`; the timing shim, the cache, the recovery drivers
and the simulators all record into it.  Parallel workers serialise their
context (:meth:`to_dict`) alongside each result and the suite driver
folds it back in (:meth:`merge_dict`) — span trees re-parent under the
driver's current span, metrics merge per-instrument — so one context
ends up describing the whole campaign regardless of process layout.
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import MetricsRegistry
from .spans import CURRENT, Tracer


class ObsContext:
    """Aggregates one process's spans and metrics."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def to_dict(self) -> dict:
        """Serialise spans + metrics (worker -> suite driver)."""
        return {
            "spans": self.tracer.to_payload(),
            "metrics": self.metrics.to_dict(),
        }

    def merge_dict(self, payload: Optional[dict], parent: Any = CURRENT) -> None:
        """Fold a serialised context into this one.

        Incoming span roots attach under *parent* (default: the tracer's
        innermost active span — the suite span, during a suite).
        """
        if not payload:
            return
        self.tracer.merge_payload(payload.get("spans"), parent=parent)
        self.metrics.merge_dict(payload.get("metrics"))
