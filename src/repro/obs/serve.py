"""Live HTTP endpoints for a running campaign (stdlib only).

:class:`TelemetryServer` runs a ``ThreadingHTTPServer`` on a daemon
thread next to the suite driver and exposes:

* ``/metrics`` — Prometheus text rendered from the live registry
  (authoritative state plus in-flight streamed deltas), scrapeable
  mid-run;
* ``/healthz`` — ``{"status": "ok", "phase": running|done}``;
* ``/progress`` — runs done/total, per-worker lease state, and the
  headline retry/reclaim/steal counters as JSON;
* ``/events`` — the flight-recorder tail as JSON (``?limit=``,
  ``?kind=`` filters).

The server binds 127.0.0.1 by default — this is an operator window,
not a public API — and port 0 asks the OS for an ephemeral port (the
chosen port is reported by :meth:`TelemetryServer.start`).  Handlers
only ever *read* telemetry state, so a scrape can never perturb
results.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from ..errors import ObservabilityError
from .export import render_prometheus
from .metrics import (
    CACHE_HITS,
    CACHE_MISSES,
    DISPATCH_LEASES,
    DISPATCH_RECLAIMS,
    DISPATCH_STALE_COMMITS,
    DISPATCH_STEALS,
    RUN_FAILURES,
    RUN_RETRIES,
    RUNS_COMPLETED,
    TELEMETRY_DELTAS,
    TELEMETRY_DROPPED,
)
from .stream import TelemetryPlane

#: The counters surfaced inline on ``/progress``.
PROGRESS_COUNTERS = {
    "runs_completed": RUNS_COMPLETED,
    "run_retries": RUN_RETRIES,
    "run_failures": RUN_FAILURES,
    "cache_hits": CACHE_HITS,
    "cache_misses": CACHE_MISSES,
    "leases": DISPATCH_LEASES,
    "reclaims": DISPATCH_RECLAIMS,
    "steals": DISPATCH_STEALS,
    "stale_commits": DISPATCH_STALE_COMMITS,
    "telemetry_deltas": TELEMETRY_DELTAS,
    "telemetry_dropped": TELEMETRY_DROPPED,
}


class _Handler(BaseHTTPRequestHandler):
    """Routes one GET; the plane hangs off the server object."""

    server_version = "repro-telemetry/1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # telemetry must not spam the driver's stderr

    def _send(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, payload: dict, status: int = 200) -> None:
        self._send(
            status, "application/json",
            json.dumps(payload, sort_keys=True) + "\n",
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        plane: TelemetryPlane = self.server.plane  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                self._send(
                    200, "text/plain; version=0.0.4",
                    render_prometheus(plane.live.snapshot()),
                )
            elif route == "/healthz":
                self._send_json({
                    "status": "ok",
                    "phase": self.server.phase,  # type: ignore[attr-defined]
                })
            elif route == "/progress":
                snapshot = plane.live.snapshot()
                payload = plane.progress.to_dict()
                payload["counters"] = {
                    short: snapshot.value(name)
                    for short, name in sorted(PROGRESS_COUNTERS.items())
                }
                payload["pending_streams"] = plane.live.pending_streams()
                self._send_json(payload)
            elif route == "/events":
                query = parse_qs(parsed.query)
                limit = int(query.get("limit", ["100"])[0])
                filters = {}
                if "kind" in query:
                    filters["kind"] = query["kind"][0]
                self._send_json({
                    "events": plane.events.tail(limit=limit,
                                                filters=filters),
                })
            else:
                self._send_json({"error": f"no route {route}"}, status=404)
        except BrokenPipeError:  # scraper went away mid-response
            pass


class TelemetryServer:
    """The live-telemetry HTTP endpoint, on a daemon thread."""

    def __init__(
        self,
        plane: TelemetryPlane,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.plane = plane
        self.host = host
        self.requested_port = int(port)
        self.port: Optional[int] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind and serve; returns the actual port."""
        if self._server is not None:
            raise ObservabilityError("telemetry server already started")
        try:
            server = ThreadingHTTPServer(
                (self.host, self.requested_port), _Handler
            )
        except OSError as error:
            raise ObservabilityError(
                f"cannot bind telemetry server on "
                f"{self.host}:{self.requested_port}: {error}"
            )
        server.daemon_threads = True
        server.plane = self.plane  # type: ignore[attr-defined]
        server.phase = "running"  # type: ignore[attr-defined]
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        if self.port is None:
            raise ObservabilityError("telemetry server not started")
        return f"http://{self.host}:{self.port}"

    def mark_done(self) -> None:
        """Flip ``/healthz`` to ``phase: done`` — the run is complete
        and every subsequent ``/metrics`` scrape is final."""
        if self._server is not None:
            self._server.phase = "done"  # type: ignore[attr-defined]

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
