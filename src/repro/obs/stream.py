"""Live metrics streaming: delta encoding, exactly-once folding.

Post-hoc observability (PR 3/5) ships each worker's whole registry in
its final ``result`` message.  This module adds the in-flight view:

* :class:`MetricsDeltaEncoder` — worker side.  Walks the worker's
  registry and emits the *change* since the previous snapshot as a
  sequence-numbered delta (counters and histograms as arithmetic diffs,
  gauges as full current state).  Deltas piggyback on the dispatch
  ``heartbeat`` message or the local pool's progress queue.
* :class:`LiveRegistry` — driver side.  Folds deltas into a per-stream
  *pending* registry, gated on monotonic sequence numbers so a
  duplicated or re-ordered delta is applied exactly once (a gap marks
  the stream broken and stops folding — the committed final payload
  reconciles the totals).  When a task's final payload arrives the
  stream is *resolved*: under one lock the pending deltas are dropped
  and the authoritative payload merged, so a killed worker's partial
  deltas never double-count against its committed result and scraped
  counters stay monotone.  At suite completion every stream has been
  resolved or discarded, so ``snapshot()`` equals the post-hoc merged
  registry exactly.
* :class:`ProgressBoard` — the ``/progress`` state: runs done/total and
  per-worker lease state, maintained by the pool drivers.
* :class:`TelemetryPlane` — the bundle a runner carries when live
  telemetry is enabled (``--serve`` / ``--events-out``): live registry,
  progress board, flight recorder.

Telemetry is strictly out-of-band: nothing here may influence results,
and every entry point is a no-op when no plane is attached.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from .context import ObsContext
from .events import EventLog
from .metrics import (
    TELEMETRY_DELTAS,
    TELEMETRY_DROPPED,
    LabelItems,
    MetricsRegistry,
)

#: Seconds between streamed snapshots (heartbeat piggyback / queue push).
DEFAULT_STREAM_INTERVAL = 0.25


def copy_registry(registry: MetricsRegistry, retries: int = 8) -> MetricsRegistry:
    """A deep copy of *registry*, tolerant of concurrent writers.

    The worker's main thread mutates its registry while the streaming
    thread serialises it; ``dict`` iteration during an insert raises
    ``RuntimeError``, so retry — instrument updates are tiny and a
    quiet window always arrives.
    """
    for _ in range(retries):
        try:
            return MetricsRegistry.from_dict(registry.to_dict())
        except RuntimeError:
            continue
    return MetricsRegistry.from_dict(registry.to_dict())


class MetricsDeltaEncoder:
    """Worker-side incremental snapshots of one registry.

    Each call to :meth:`next_delta` returns ``{"seq": n, "metrics":
    [...]}`` describing only what changed since the previous call (or
    ``None`` when nothing did).  Sequence numbers start at 1 and
    increase by exactly 1 — the driver's :class:`LiveRegistry` uses
    them to apply each delta exactly once.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._seq = 0
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._hists: Dict[Tuple[str, LabelItems], Tuple[List[int], float, int]] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Tuple[float, bool]] = {}

    @property
    def seq(self) -> int:
        return self._seq

    def next_delta(self) -> Optional[dict]:
        """The change since the last call, or ``None`` if quiescent."""
        snapshot = copy_registry(self._registry)
        items: List[dict] = []
        for name, labels, metric in snapshot.samples():
            key = (name, labels)
            if metric.kind == "counter":
                prev = self._counters.get(key, 0.0)
                if metric.value != prev:
                    items.append({
                        "name": name, "kind": "counter",
                        "labels": dict(labels),
                        "value": metric.value - prev,
                    })
                    self._counters[key] = metric.value
            elif metric.kind == "histogram":
                prev_counts, prev_sum, prev_count = self._hists.get(
                    key, ([0] * len(metric.counts), 0.0, 0)
                )
                if metric.count != prev_count:
                    items.append({
                        "name": name, "kind": "histogram",
                        "labels": dict(labels),
                        "bounds": list(metric.bounds),
                        "counts": [a - b for a, b in
                                   zip(metric.counts, prev_counts)],
                        "sum": metric.sum - prev_sum,
                        "count": metric.count - prev_count,
                    })
                    self._hists[key] = (
                        list(metric.counts), metric.sum, metric.count
                    )
            else:  # gauge: ship full state, the fold replaces
                state = (metric.value, metric.updated)
                if self._gauges.get(key) != state:
                    items.append({
                        "name": name, "kind": "gauge",
                        "labels": dict(labels), "agg": metric.agg,
                        "value": metric.value, "updated": metric.updated,
                    })
                    self._gauges[key] = state
        if not items:
            return None
        self._seq += 1
        return {"seq": self._seq, "metrics": items}


class _Stream:
    """One in-flight delta stream (a lease / a pool submission)."""

    __slots__ = ("pending", "last_seq", "broken")

    def __init__(self) -> None:
        self.pending = MetricsRegistry()
        self.last_seq = 0
        self.broken = False


class LiveRegistry:
    """Driver-side fold of the authoritative registry plus in-flight
    streamed deltas; the source behind a live ``/metrics`` scrape."""

    def __init__(self, base: MetricsRegistry) -> None:
        #: The runner's own registry — only committed payloads land
        #: here (via the pools' existing merge paths).
        self.base = base
        self._lock = threading.RLock()
        self._streams: Dict[str, _Stream] = {}
        #: Streams already settled — a straggler delta that was still in
        #: flight when its task committed must not resurrect the stream
        #: (its content is covered by the committed payload).
        self._closed: set = set()
        self.deltas_folded = 0
        self.deltas_dropped = 0

    # ------------------------------------------------------------------
    def fold(self, stream_id: str, payload: dict) -> bool:
        """Apply one streamed delta; returns True if it was folded.

        Exactly-once: a delta is applied iff its ``seq`` is exactly one
        past the stream's last applied sequence number.  Duplicates and
        re-ordered deltas are dropped; a gap poisons the stream (its
        pending state is cleared and further deltas ignored) because
        partial sums would be wrong — the committed final payload
        restores exactness at :meth:`resolve` time.
        """
        try:
            seq = int(payload["seq"])
            metrics = payload.get("metrics") or ()
        except (KeyError, TypeError, ValueError):
            self._dropped()
            return False
        with self._lock:
            if stream_id in self._closed:
                self._dropped()
                return False
            stream = self._streams.setdefault(stream_id, _Stream())
            if seq <= stream.last_seq:
                self._dropped()
                return False
            if seq != stream.last_seq + 1:
                stream.broken = True
                stream.pending = MetricsRegistry()
            stream.last_seq = seq
            if stream.broken:
                self._dropped()
                return False
            self._fold_items(stream.pending, metrics)
            self.deltas_folded += 1
            self.base.counter(TELEMETRY_DELTAS).inc()
            return True

    def _dropped(self) -> None:
        self.deltas_dropped += 1
        self.base.counter(TELEMETRY_DROPPED).inc()

    @staticmethod
    def _fold_items(pending: MetricsRegistry, items) -> None:
        for item in items:
            name, labels = item["name"], item.get("labels", {})
            kind = item.get("kind", "counter")
            if kind == "counter":
                pending.counter(name, **labels).inc(float(item["value"]))
            elif kind == "gauge":
                gauge = pending.gauge(
                    name, agg=item.get("agg", "last"), **labels
                )
                gauge.load(item)
            else:
                hist = pending.histogram(
                    name, buckets=tuple(item["bounds"]), **labels
                )
                hist.counts = [
                    a + b for a, b in zip(hist.counts, item["counts"])
                ]
                hist.sum += float(item["sum"])
                hist.count += int(item["count"])

    # ------------------------------------------------------------------
    def resolve(
        self, stream_id: str, merge: Optional[Callable[[], Any]] = None
    ) -> None:
        """Settle a stream against its committed final payload.

        Atomically (w.r.t. :meth:`snapshot`) drops the stream's pending
        deltas and runs *merge* — the pool's existing fold of the final
        obs payload into the base registry.  The final payload is a
        superset of the streamed deltas, so a scrape never observes a
        counter going backwards.
        """
        with self._lock:
            self._streams.pop(stream_id, None)
            self._closed.add(stream_id)
            if merge is not None:
                merge()

    def discard(self, stream_id: str) -> None:
        """Drop a stream's partial deltas (reclaimed lease, dead
        worker) — the retried attempt streams under a fresh id."""
        with self._lock:
            self._streams.pop(stream_id, None)
            self._closed.add(stream_id)

    def pending_streams(self) -> List[str]:
        with self._lock:
            return sorted(self._streams)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsRegistry:
        """Authoritative state plus all in-flight deltas, as a fresh
        registry (safe to render off-thread)."""
        with self._lock:
            snap = copy_registry(self.base)
            for stream in self._streams.values():
                snap.merge(stream.pending)
            return snap


class ProgressBoard:
    """Thread-safe run/worker progress behind ``/progress``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0
        self.done = 0
        self.failed = 0
        self.resumed = 0
        self.phase = "idle"
        self._workers: Dict[str, Dict[str, Any]] = {}

    def begin_suite(self, total: int, resumed: int = 0) -> None:
        with self._lock:
            self.total = int(total)
            self.resumed = int(resumed)
            self.done = 0
            self.failed = 0
            self.phase = "running"

    def end_suite(self) -> None:
        with self._lock:
            self.phase = "done"

    def run_done(self, benchmark: str) -> None:
        with self._lock:
            self.done += 1

    def run_failed(self, benchmark: str) -> None:
        with self._lock:
            self.failed += 1

    def note_worker(
        self,
        worker: Any,
        state: str,
        benchmark: Optional[str] = None,
        lease: Optional[str] = None,
    ) -> None:
        with self._lock:
            self._workers[str(worker)] = {
                "state": state,
                "benchmark": benchmark,
                "lease": lease,
            }

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "phase": self.phase,
                "runs": {
                    "total": self.total,
                    "done": self.done,
                    "failed": self.failed,
                    "resumed": self.resumed,
                },
                "workers": {
                    wid: dict(info)
                    for wid, info in sorted(self._workers.items())
                },
            }


class TelemetryPlane:
    """Everything live telemetry needs, hanging off one runner."""

    def __init__(
        self, obs: ObsContext, events: Optional[EventLog] = None
    ) -> None:
        self.obs = obs
        self.live = LiveRegistry(obs.metrics)
        self.progress = ProgressBoard()
        self.events = events if events is not None else EventLog()

    def close(self) -> None:
        self.events.close()
