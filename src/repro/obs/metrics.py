"""Metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` lives on each process's observability
context.  Instruments are identified by ``(name, sorted labels)``;
asking for the same identity twice returns the same instrument, so call
sites never pre-register anything.  Registries from parallel workers are
serialised (:meth:`MetricsRegistry.to_dict`) and folded into the suite
driver's registry with well-defined merge semantics:

* **counters** add;
* **histograms** add bucket counts and sums (bucket bounds must match —
  a mismatch is a programming error and raises);
* **gauges** merge per their declared aggregation: ``last`` (an updated
  incoming value wins), ``sum``, ``max`` or ``min``.

Names follow the Prometheus conventions the text exposition
(:func:`repro.obs.export.render_prometheus`) expects: counters end in
``_total``, histograms are base names that expand to ``_bucket`` /
``_sum`` / ``_count`` series.  The harness's well-known metric names are
defined here so instrumentation sites and tests cannot drift apart.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..errors import ObservabilityError

# ----------------------------------------------------------------------
# well-known harness metric names
# ----------------------------------------------------------------------
CACHE_HITS = "repro_cache_hits_total"
CACHE_MISSES = "repro_cache_misses_total"
CACHE_CORRUPT = "repro_cache_corrupt_total"
RUNS_COMPLETED = "repro_runs_completed_total"
RUN_RETRIES = "repro_run_retries_total"
RUN_FAILURES = "repro_run_failures_total"
RUN_TIMEOUTS = "repro_run_timeouts_total"
WORKER_CRASHES = "repro_worker_crashes_total"
POOL_RESPAWNS = "repro_pool_respawns_total"
FAULTS_INJECTED = "repro_faults_injected_total"
STAGE_SECONDS = "repro_stage_seconds"
RUN_SECONDS = "repro_run_seconds"
DETAILED_INSTRUCTIONS = "repro_detailed_instructions_total"
DETAILED_CALLS = "repro_detailed_calls_total"
FUNCTIONAL_INSTRUCTIONS = "repro_functional_instructions_total"
PROFILE_PASSES = "repro_profile_passes_total"
TRACE_SHM_SHARED = "repro_trace_shm_shared_total"
TRACE_SHM_ATTACHED = "repro_trace_shm_attached_total"
TRACE_SHM_FALLBACKS = "repro_trace_shm_fallbacks_total"
TRACE_SHM_BYTES = "repro_trace_shm_bytes_total"
DISPATCH_LEASES = "repro_dispatch_leases_total"
DISPATCH_HEARTBEATS = "repro_dispatch_heartbeats_total"
DISPATCH_MISSED = "repro_dispatch_missed_total"
DISPATCH_RECLAIMS = "repro_dispatch_reclaims_total"
DISPATCH_STEALS = "repro_dispatch_steals_total"
DISPATCH_STALE_COMMITS = "repro_dispatch_stale_commits_total"
DISPATCH_LEASE_SECONDS = "repro_dispatch_lease_seconds"
JOURNAL_TORN = "repro_journal_torn_total"
TRACE_IMPORT_REJECTED = "repro_trace_import_rejected_total"
RETRY_BACKOFF_SECONDS = "repro_retry_backoff_seconds"
TELEMETRY_DELTAS = "repro_telemetry_deltas_total"
TELEMETRY_DROPPED = "repro_telemetry_dropped_total"

# ----------------------------------------------------------------------
# Prometheus HELP text, registered next to the names so the exposition
# (`render_prometheus`) can emit `# HELP` before every `# TYPE`.
# Modules that define their own metric families (diag, bench) register
# theirs via :func:`register_help` at import time.
# ----------------------------------------------------------------------
_METRIC_HELP: Dict[str, str] = {
    CACHE_HITS: "Result-cache lookups served from a committed entry.",
    CACHE_MISSES: "Result-cache lookups that fell through to a real run.",
    CACHE_CORRUPT: "Result-cache entries rejected as corrupt and evicted.",
    RUNS_COMPLETED: "Pipeline runs that finished and committed a result.",
    RUN_RETRIES: "Run attempts retried after a failure.",
    RUN_FAILURES: "Runs abandoned after exhausting their retry budget.",
    RUN_TIMEOUTS: "Run attempts killed by the per-run deadline.",
    WORKER_CRASHES: "Worker processes that died mid-task.",
    POOL_RESPAWNS: "Process-pool rebuilds after a broken pool.",
    FAULTS_INJECTED: "Faults fired by the $REPRO_FAULTS injection plan.",
    STAGE_SECONDS: "Wall seconds per pipeline stage.",
    RUN_SECONDS: "Wall seconds per pipeline run (all stages).",
    DETAILED_INSTRUCTIONS: "Instructions executed in detailed simulation.",
    DETAILED_CALLS: "Detailed-simulation invocations.",
    FUNCTIONAL_INSTRUCTIONS: "Instructions executed functionally.",
    PROFILE_PASSES: "Profiling passes over the instruction trace.",
    TRACE_SHM_SHARED: "Traces published to shared memory by the driver.",
    TRACE_SHM_ATTACHED: "Worker attachments to a shared-memory trace.",
    TRACE_SHM_FALLBACKS: "Workers that rebuilt a trace after shm fallback.",
    TRACE_SHM_BYTES: "Bytes of trace data published to shared memory.",
    DISPATCH_LEASES: "Task leases granted by the dispatcher.",
    DISPATCH_HEARTBEATS: "Worker heartbeats accepted by the dispatcher.",
    DISPATCH_MISSED: "Heartbeat deadlines missed by leased tasks.",
    DISPATCH_RECLAIMS: "Leases reclaimed from unresponsive workers.",
    DISPATCH_STEALS: "Reclaimed tasks re-granted to a different worker.",
    DISPATCH_STALE_COMMITS: "Results rejected because their lease was stale.",
    DISPATCH_LEASE_SECONDS: "Lease lifetime from grant to settle.",
    JOURNAL_TORN: "Torn trailing journal lines healed during resume.",
    TRACE_IMPORT_REJECTED: "External trace records rejected by the importer.",
    RETRY_BACKOFF_SECONDS: "Backoff slept between retry attempts.",
    TELEMETRY_DELTAS: "Streamed metrics deltas folded into the live registry.",
    TELEMETRY_DROPPED: "Streamed metrics deltas discarded (duplicate, gap, "
                       "or stale stream).",
}


def register_help(name: str, text: str) -> None:
    """Register Prometheus ``# HELP`` text for a metric family."""
    _METRIC_HELP[name] = " ".join(text.split())


def help_text(name: str) -> str:
    """The registered help for *name* (a neutral default when unset)."""
    return _METRIC_HELP.get(name, f"Metric {name} recorded by the repro "
                                  f"harness (no help registered).")

#: Default histogram bucket upper bounds (seconds) — spans pipeline
#: stages from sub-millisecond cache hits to multi-minute baselines.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0,
)

#: Gauge aggregations accepted by :class:`Gauge`.
GAUGE_AGGS = ("last", "sum", "max", "min")

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter increment must be >= 0, got {amount}"
            )
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> dict:
        return {"value": self.value}

    def load(self, payload: dict) -> None:
        self.value = payload["value"]


class Gauge:
    """Point-in-time value with a declared multi-process aggregation."""

    kind = "gauge"
    __slots__ = ("value", "agg", "updated")

    def __init__(self, agg: str = "last") -> None:
        if agg not in GAUGE_AGGS:
            raise ObservabilityError(
                f"unknown gauge aggregation {agg!r} (expected one of "
                f"{GAUGE_AGGS})"
            )
        self.value = 0.0
        self.agg = agg
        self.updated = False

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated = True

    def merge(self, other: "Gauge") -> None:
        if other.agg != self.agg:
            raise ObservabilityError(
                f"gauge aggregation mismatch: {self.agg!r} vs {other.agg!r}"
            )
        if not other.updated:
            return
        if not self.updated:
            self.value = other.value
        elif self.agg == "sum":
            self.value += other.value
        elif self.agg == "max":
            self.value = max(self.value, other.value)
        elif self.agg == "min":
            self.value = min(self.value, other.value)
        else:  # "last": the incoming (more recent) value wins
            self.value = other.value
        self.updated = True

    def to_dict(self) -> dict:
        return {"value": self.value, "agg": self.agg,
                "updated": self.updated}

    def load(self, payload: dict) -> None:
        self.value = payload["value"]
        self.agg = payload.get("agg", "last")
        self.updated = payload.get("updated", True)


class Histogram:
    """Fixed-bucket histogram (cumulative export, Prometheus-style).

    ``bounds`` are inclusive upper bucket bounds; one implicit ``+Inf``
    bucket catches the overflow.  ``counts`` are per-bucket (not yet
    cumulative — the exporter accumulates).
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram bounds must be strictly increasing and "
                f"non-empty, got {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"histogram bucket mismatch: {self.bounds} vs {other.bounds}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def load(self, payload: dict) -> None:
        self.bounds = tuple(payload["bounds"])
        self.counts = list(payload["counts"])
        self.sum = payload["sum"]
        self.count = payload["count"]


class MetricsRegistry:
    """Get-or-create home of every instrument in one process."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _label_items(labels: Dict[str, Any]) -> LabelItems:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get(self, name: str, labels: Dict[str, Any], factory, kind: str):
        key = (name, self._label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter ``name{labels}`` (created on first use)."""
        return self._get(name, labels, Counter, "counter")

    def gauge(self, name: str, agg: str = "last", **labels: Any) -> Gauge:
        """The gauge ``name{labels}`` (created on first use)."""
        return self._get(name, labels, lambda: Gauge(agg), "gauge")

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram ``name{labels}`` (created on first use)."""
        return self._get(name, labels, lambda: Histogram(buckets),
                         "histogram")

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> float:
        """Convenience: a counter/gauge's value, 0.0 when absent."""
        metric = self._metrics.get((name, self._label_items(labels)))
        if metric is None:
            return 0.0
        if metric.kind == "histogram":
            raise ObservabilityError(
                f"metric {name!r} is a histogram; read .sum/.count instead"
            )
        return metric.value

    def samples(self) -> Iterator[Tuple[str, LabelItems, Any]]:
        """Every instrument, sorted by (name, labels) for stable export."""
        for (name, labels) in sorted(self._metrics):
            yield name, labels, self._metrics[(name, labels)]

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry."""
        for (name, labels), metric in other._metrics.items():
            labels_dict = dict(labels)
            if metric.kind == "counter":
                self.counter(name, **labels_dict).merge(metric)
            elif metric.kind == "gauge":
                self.gauge(name, agg=metric.agg, **labels_dict).merge(metric)
            else:
                self.histogram(
                    name, buckets=metric.bounds, **labels_dict
                ).merge(metric)

    def to_dict(self) -> dict:
        """JSON-serialisable form (worker -> driver, ``--trace-out``)."""
        items: List[dict] = []
        for name, labels, metric in self.samples():
            items.append({
                "name": name,
                "kind": metric.kind,
                "labels": dict(labels),
                **metric.to_dict(),
            })
        return {"metrics": items}

    @staticmethod
    def from_dict(payload: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = MetricsRegistry()
        registry.merge_dict(payload)
        return registry

    def merge_dict(self, payload: Optional[dict]) -> None:
        """Merge a serialised registry into this one."""
        if not payload:
            return
        incoming = MetricsRegistry()
        for item in payload.get("metrics", ()):
            name, labels = item["name"], item.get("labels", {})
            kind = item.get("kind", "counter")
            if kind == "counter":
                incoming.counter(name, **labels).load(item)
            elif kind == "gauge":
                incoming.gauge(name, agg=item.get("agg", "last"),
                               **labels).load(item)
            elif kind == "histogram":
                incoming.histogram(
                    name, buckets=tuple(item["bounds"]), **labels
                ).load(item)
            else:
                raise ObservabilityError(f"unknown metric kind {kind!r}")
        self.merge(incoming)
