"""Folded-stack flamegraph export from span trees.

Converts a trace dump into the classic ``stack;frames value`` folded
format consumed by ``flamegraph.pl``, speedscope, and friends — one
line per unique root-to-span path, value = the span's *self* time in
integer microseconds (duration minus time attributed to its children,
clamped at zero so re-parented worker trees whose children overlap
their parent never go negative).  Identical stacks are summed, output
is sorted, so the export is deterministic for a given trace.

Frame names carry the benchmark attribute when present
(``run[gzip]``), which keeps per-benchmark towers separate in the
rendered graph without exploding the frame alphabet.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List

from .export import TraceDump
from .spans import Span

#: Span attributes appended to a frame name, in order, as ``[value]``.
FRAME_QUALIFIERS = ("benchmark",)


def _frame_name(span: Span) -> str:
    name = span.name.replace(";", ",")
    for key in FRAME_QUALIFIERS:
        if key in span.attributes:
            name += f"[{span.attributes[key]}]"
    return name


def _self_micros(span: Span) -> int:
    total = span.duration if span.duration is not None else 0.0
    children = sum(
        c.duration for c in span.children if c.duration is not None
    )
    return max(int(round((total - children) * 1_000_000)), 0)


def folded_stacks(roots: Iterable[Span]) -> List[str]:
    """``stack;of;frames value`` lines, sorted, identical stacks summed."""
    weights: Dict[str, int] = {}

    def walk(span: Span, stack: List[str]) -> None:
        stack = stack + [_frame_name(span)]
        micros = _self_micros(span)
        if micros > 0 or not span.children:
            key = ";".join(stack)
            weights[key] = weights.get(key, 0) + micros
        for child in span.children:
            walk(child, stack)

    for root in roots:
        walk(root, [])
    return [f"{stack} {value}" for stack, value in sorted(weights.items())]


def render_folded(dump: TraceDump) -> str:
    """The full folded-stack document for a parsed trace dump."""
    lines = folded_stacks(dump.roots)
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded(path, dump: TraceDump) -> int:
    """Write folded stacks to *path*; returns the line count."""
    text = render_folded(dump)
    Path(path).write_text(text)
    return len([line for line in text.splitlines() if line])
