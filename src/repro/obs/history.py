"""Append-only cross-run history and the ``repro obs diff`` engine.

Every ``run``/``suite``/``bench`` invocation appends one compact
:class:`HistoryRecord` to a JSONL store (``.repro_history/history.jsonl``
by default, ``$REPRO_HISTORY_DIR`` relocates it).  A record carries the
provenance keys of :class:`~repro.obs.manifest.RunManifest` — config,
sampling and cost-model digests, workload scale, host fingerprint — plus
the *numbers* worth tracking across commits: per-benchmark per-method
accuracy (CPI/L1/L2 deviations), headline counters, and bench speedup
ratios.

:func:`diff_records` compares two records metric by metric and renders
thresholded PASS / REGRESSED / IMPROVED verdicts; the CLI's
``repro obs diff`` exits nonzero when anything regressed, which is what
CI's no-regression smoke leans on.  Records whose provenance keys differ
(different config digest, scale, methods...) still diff, but every
mismatched key is called out so an apples-to-oranges comparison cannot
masquerade as a regression signal.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..errors import HarnessError, ObservabilityError
from .manifest import RunManifest
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bench.report import BenchReport
    from ..harness.runner import BenchmarkRun

#: Bump when the record layout changes incompatibly.
HISTORY_VERSION = 1

#: Environment variable relocating the history directory.
HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"

#: File name inside the history directory.
HISTORY_FILE = "history.jsonl"

#: Provenance keys two records must share to be apples-to-apples.
COMPARABLE_KEYS = (
    "kind",
    "config_name",
    "config_digest",
    "sampling_digest",
    "workload_scale",
    "methods",
)

#: Fractional speedup drop treated as a bench regression.
SPEEDUP_DROP_THRESHOLD = 0.10


def default_history_dir() -> Path:
    """``$REPRO_HISTORY_DIR`` or ``.repro_history/`` under the cwd."""
    env = os.environ.get(HISTORY_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro_history"


@dataclass
class HistoryRecord:
    """One invocation's tracked numbers plus the keys to compare them by."""

    version: int = HISTORY_VERSION
    run_id: str = ""
    kind: str = "run"
    created: str = ""
    config_name: str = ""
    config_digest: str = ""
    sampling_digest: str = ""
    workload_scale: float = 1.0
    methods: List[str] = field(default_factory=list)
    benchmarks: List[str] = field(default_factory=list)
    host: Dict[str, str] = field(default_factory=dict)
    outcome: Dict[str, object] = field(default_factory=dict)
    #: ``{benchmark: {method: {cpi_dev, l1_dev, l2_dev, baseline_cpi,
    #: estimate_cpi}}}`` — the accuracy surface ``obs diff`` guards.
    accuracy: Dict[str, Dict[str, Dict[str, float]]] = field(
        default_factory=dict
    )
    #: Headline counters, keyed ``name`` or ``name{k=v,...}``.
    counters: Dict[str, float] = field(default_factory=dict)
    #: Bench speedup ratios per case (``kind == "bench"`` records).
    speedups: Dict[str, float] = field(default_factory=dict)
    #: Aggregate leaderboard rank per method, 1 = best
    #: (``kind == "leaderboard"`` records; see ``repro leaderboard``).
    ranks: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def comparable_key(self) -> Dict[str, object]:
        """The provenance facts a fair comparison must agree on."""
        return {
            "kind": self.kind,
            "config_name": self.config_name,
            "config_digest": self.config_digest,
            "sampling_digest": self.sampling_digest,
            "workload_scale": self.workload_scale,
            "methods": list(self.methods),
        }

    def seal(self) -> "HistoryRecord":
        """Assign the content-derived ``run_id`` (idempotent)."""
        if not self.run_id:
            body = dict(self.to_dict())
            body.pop("run_id", None)
            digest = hashlib.sha256(
                json.dumps(body, sort_keys=True).encode()
            ).hexdigest()
            self.run_id = digest[:12]
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "version": self.version,
            "run_id": self.run_id,
            "kind": self.kind,
            "created": self.created,
            "config_name": self.config_name,
            "config_digest": self.config_digest,
            "sampling_digest": self.sampling_digest,
            "workload_scale": self.workload_scale,
            "methods": list(self.methods),
            "benchmarks": list(self.benchmarks),
            "host": dict(self.host),
            "outcome": dict(self.outcome),
            "accuracy": {
                bench: {
                    method: dict(values)
                    for method, values in per_method.items()
                }
                for bench, per_method in self.accuracy.items()
            },
            "counters": dict(self.counters),
            "speedups": dict(self.speedups),
            "ranks": dict(self.ranks),
        }

    @staticmethod
    def from_dict(payload: dict) -> "HistoryRecord":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = set(HistoryRecord.__dataclass_fields__)
        return HistoryRecord(
            **{k: v for k, v in payload.items() if k in known}
        )


# ----------------------------------------------------------------------
def record_from_manifest(
    manifest: RunManifest,
    runs: Sequence["BenchmarkRun"] = (),
    kind: str = "suite",
    registry: Optional[MetricsRegistry] = None,
) -> HistoryRecord:
    """Build a history record out of a finished run/suite invocation.

    *runs* supply the accuracy surface; *registry* (the runner's metrics)
    supplies the headline counters — gauges and histograms are left to
    ``--trace-out``, the history tracks scalars that diff meaningfully.
    """
    accuracy: Dict[str, Dict[str, Dict[str, float]]] = {}
    for run in runs:
        per_method: Dict[str, Dict[str, float]] = {}
        for name, result in run.methods.items():
            per_method[name] = {
                "cpi_dev": result.deviation.cpi,
                "l1_dev": result.deviation.l1_hit_rate,
                "l2_dev": result.deviation.l2_hit_rate,
                "baseline_cpi": run.baseline.cpi,
                "estimate_cpi": result.estimate.cpi,
            }
        accuracy[run.benchmark] = per_method
    counters: Dict[str, float] = {}
    if registry is not None:
        for name, label_items, metric in registry.samples():
            if getattr(metric, "kind", "") != "counter":
                continue
            key = name
            if label_items:
                inner = ",".join(f"{k}={v}" for k, v in label_items)
                key = f"{name}{{{inner}}}"
            counters[key] = metric.value
    host = {
        k: v
        for k, v in {
            "repro_version": manifest.repro_version,
            "python_version": manifest.python_version,
            "numpy_version": manifest.numpy_version,
            "platform": manifest.platform,
        }.items()
        if v
    }
    return HistoryRecord(
        kind=kind,
        created=manifest.created,
        config_name=manifest.config_name,
        config_digest=manifest.config_digest,
        sampling_digest=manifest.sampling_digest,
        workload_scale=manifest.workload_scale,
        methods=list(manifest.methods),
        benchmarks=list(manifest.benchmarks),
        host=host,
        outcome=dict(manifest.outcome),
        accuracy=accuracy,
        counters=counters,
    ).seal()


def record_from_bench(report: "BenchReport") -> HistoryRecord:
    """Build a history record out of a ``repro bench`` report."""
    speedups: Dict[str, float] = {}
    for case in report.cases:
        speedup = case.get("speedup")
        if speedup is not None:
            speedups[case["name"]] = float(speedup)
    return HistoryRecord(
        kind="bench",
        created=report.host.get("created", ""),
        workload_scale=report.scale,
        benchmarks=sorted(speedups),
        host={
            k: v for k, v in report.host.items() if k != "created"
        },
        speedups=speedups,
    ).seal()


# ----------------------------------------------------------------------
class RunHistory:
    """The append-only JSONL store plus reference resolution.

    References accepted by :meth:`resolve`:

    * ``last`` — the most recent record; ``prev`` — the one before it;
    * ``~N`` — N records back from the end (``~0`` is ``last``);
    * any unambiguous ``run_id`` prefix.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_history_dir()
        )

    @property
    def path(self) -> Path:
        """The JSONL file records append to."""
        return self.directory / HISTORY_FILE

    # ------------------------------------------------------------------
    def append(self, record: HistoryRecord) -> HistoryRecord:
        """Seal *record* and append it to the store."""
        record.seal()
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return record

    def load(self) -> List[HistoryRecord]:
        """All records, oldest first (empty when the store is absent)."""
        if not self.path.exists():
            return []
        records: List[HistoryRecord] = []
        try:
            text = self.path.read_text()
        except OSError as error:
            raise ObservabilityError(
                f"cannot read history {self.path}: {error}"
            )
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ObservabilityError(
                    f"corrupt history record at {self.path}:{lineno}: {error}"
                )
            if not isinstance(payload, dict):
                raise ObservabilityError(
                    f"corrupt history record at {self.path}:{lineno}: "
                    f"expected an object, got {type(payload).__name__}"
                )
            records.append(HistoryRecord.from_dict(payload))
        return records

    def resolve(
        self, ref: str, records: Optional[List[HistoryRecord]] = None
    ) -> HistoryRecord:
        """The record *ref* names (see class docstring for the forms)."""
        if records is None:
            records = self.load()
        if not records:
            raise HarnessError(
                f"history is empty ({self.path}); run a suite first"
            )
        if ref == "last":
            return records[-1]
        if ref == "prev":
            if len(records) < 2:
                raise HarnessError(
                    "history has only one record; 'prev' needs two"
                )
            return records[-2]
        if ref.startswith("~"):
            try:
                back = int(ref[1:])
            except ValueError:
                raise HarnessError(f"bad history reference {ref!r}")
            if back < 0 or back >= len(records):
                raise HarnessError(
                    f"history reference {ref} out of range "
                    f"({len(records)} record(s))"
                )
            return records[-1 - back]
        matches = [r for r in records if r.run_id.startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise HarnessError(
                f"history reference {ref!r} is ambiguous "
                f"({len(matches)} matches)"
            )
        raise HarnessError(f"unknown history reference {ref!r}")


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffEntry:
    """One compared number: old value, new value, signed delta, verdict."""

    name: str
    a: Optional[float]
    b: Optional[float]
    delta: Optional[float]
    verdict: str  # PASS | REGRESSED | IMPROVED | INFO


@dataclass
class HistoryDiff:
    """The full comparison of two history records."""

    a: HistoryRecord
    b: HistoryRecord
    threshold: float
    entries: List[DiffEntry] = field(default_factory=list)
    #: Comparability caveats (mismatched provenance keys, missing sides).
    notes: List[str] = field(default_factory=list)

    @property
    def regressed(self) -> List[DiffEntry]:
        """The entries that regressed (empty means the diff passes)."""
        return [e for e in self.entries if e.verdict == "REGRESSED"]

    @property
    def verdict(self) -> str:
        """Overall verdict: REGRESSED if anything did, else PASS."""
        return "REGRESSED" if self.regressed else "PASS"


def diff_records(
    a: HistoryRecord,
    b: HistoryRecord,
    threshold: float = 1e-9,
) -> HistoryDiff:
    """Compare record *b* (newer) against *a* (older).

    Accuracy deviations are judged against *threshold*: a deviation that
    grew by more than it REGRESSED, shrank by more than it IMPROVED,
    anything else PASSes.  Baseline/estimate CPIs and counters are
    informational.  Bench speedups regress when the ratio drops more
    than :data:`SPEEDUP_DROP_THRESHOLD` fractionally.
    """
    diff = HistoryDiff(a=a, b=b, threshold=threshold)
    key_a, key_b = a.comparable_key(), b.comparable_key()
    for key in COMPARABLE_KEYS:
        if key_a[key] != key_b[key]:
            diff.notes.append(
                f"records differ in {key}: {key_a[key]!r} vs {key_b[key]!r}"
            )

    benches = sorted(set(a.accuracy) | set(b.accuracy))
    for bench in benches:
        methods_a = a.accuracy.get(bench)
        methods_b = b.accuracy.get(bench)
        if methods_a is None or methods_b is None:
            side = "first" if methods_a is None else "second"
            diff.notes.append(f"{bench}: absent from the {side} record")
            continue
        for method in sorted(set(methods_a) | set(methods_b)):
            values_a = methods_a.get(method)
            values_b = methods_b.get(method)
            if values_a is None or values_b is None:
                side = "first" if values_a is None else "second"
                diff.notes.append(
                    f"{bench}/{method}: absent from the {side} record"
                )
                continue
            for metric in ("cpi_dev", "l1_dev", "l2_dev"):
                va, vb = values_a.get(metric), values_b.get(metric)
                if va is None or vb is None:
                    continue
                delta = vb - va
                if delta > threshold:
                    verdict = "REGRESSED"
                elif delta < -threshold:
                    verdict = "IMPROVED"
                else:
                    verdict = "PASS"
                diff.entries.append(DiffEntry(
                    name=f"{bench}/{method}/{metric}",
                    a=va, b=vb, delta=delta, verdict=verdict,
                ))
            for metric in ("baseline_cpi", "estimate_cpi"):
                va, vb = values_a.get(metric), values_b.get(metric)
                if va is None or vb is None:
                    continue
                diff.entries.append(DiffEntry(
                    name=f"{bench}/{method}/{metric}",
                    a=va, b=vb, delta=vb - va, verdict="INFO",
                ))

    for name in sorted(set(a.counters) | set(b.counters)):
        va, vb = a.counters.get(name), b.counters.get(name)
        delta = (vb - va) if va is not None and vb is not None else None
        diff.entries.append(DiffEntry(
            name=f"counter:{name}", a=va, b=vb, delta=delta, verdict="INFO",
        ))

    for case in sorted(set(a.speedups) | set(b.speedups)):
        va, vb = a.speedups.get(case), b.speedups.get(case)
        if va is None or vb is None:
            side = "first" if va is None else "second"
            diff.notes.append(
                f"speedup {case}: absent from the {side} record"
            )
            continue
        delta = vb - va
        if va > 0 and vb < va * (1.0 - SPEEDUP_DROP_THRESHOLD):
            verdict = "REGRESSED"
        elif va > 0 and vb > va * (1.0 + SPEEDUP_DROP_THRESHOLD):
            verdict = "IMPROVED"
        else:
            verdict = "PASS"
        diff.entries.append(DiffEntry(
            name=f"speedup:{case}", a=va, b=vb, delta=delta, verdict=verdict,
        ))

    # Leaderboard ranks: a method sliding down the table (rank number
    # grew) is a regression — the signal CI's leaderboard smoke guards.
    for method in sorted(set(a.ranks) | set(b.ranks)):
        va, vb = a.ranks.get(method), b.ranks.get(method)
        if va is None or vb is None:
            side = "first" if va is None else "second"
            diff.notes.append(
                f"rank {method}: absent from the {side} record"
            )
            continue
        delta = vb - va
        if vb > va:
            verdict = "REGRESSED"
        elif vb < va:
            verdict = "IMPROVED"
        else:
            verdict = "PASS"
        diff.entries.append(DiffEntry(
            name=f"rank:{method}", a=va, b=vb, delta=delta, verdict=verdict,
        ))
    return diff


# ----------------------------------------------------------------------
def format_history(
    records: Sequence[HistoryRecord], limit: int = 0
) -> str:
    """Human-readable listing, newest last (``repro obs history``)."""
    if not records:
        return "history is empty"
    chosen = list(records)
    if limit > 0:
        chosen = chosen[-limit:]
    lines = [
        f"{'run_id':<14}{'kind':<13}{'created':<26}{'config':<10}"
        f"{'scale':>7}  benchmarks"
    ]
    for record in chosen:
        benches = ",".join(record.benchmarks)
        if len(benches) > 40:
            benches = benches[:37] + "..."
        lines.append(
            f"{record.run_id:<14}{record.kind:<13}{record.created:<26}"
            f"{(record.config_name or '-'):<10}"
            f"{record.workload_scale:>7.3g}  {benches}"
        )
    if limit > 0 and len(records) > limit:
        lines.append(f"({len(records) - limit} older record(s) not shown)")
    return "\n".join(lines)


def format_diff(diff: HistoryDiff, verbose: bool = False) -> str:
    """Render a :class:`HistoryDiff` (``repro obs diff``'s output).

    Non-PASS entries always print; PASS and INFO detail appears with
    *verbose* (the summary line still counts everything).
    """
    lines = [
        f"diff {diff.a.run_id} ({diff.a.created or 'unknown'}) -> "
        f"{diff.b.run_id} ({diff.b.created or 'unknown'})",
    ]
    for note in diff.notes:
        lines.append(f"note: {note}")
    counts: Dict[str, int] = {}
    for entry in diff.entries:
        counts[entry.verdict] = counts.get(entry.verdict, 0) + 1
    shown = [
        e for e in diff.entries
        if verbose or e.verdict in ("REGRESSED", "IMPROVED")
    ]
    if shown:
        width = max(len(e.name) for e in shown)
        for entry in shown:
            fmt = lambda v: "-" if v is None else f"{v:+.6g}"
            lines.append(
                f"  {entry.verdict:<10}{entry.name:<{width}}  "
                f"{fmt(entry.a)} -> {fmt(entry.b)}"
                + (
                    f"  (delta {entry.delta:+.3g})"
                    if entry.delta is not None else ""
                )
            )
    summary = ", ".join(
        f"{counts.get(v, 0)} {v.lower()}"
        for v in ("PASS", "REGRESSED", "IMPROVED", "INFO")
        if counts.get(v, 0)
    ) or "nothing compared"
    lines.append(f"verdict: {diff.verdict} ({summary})")
    return "\n".join(lines)
