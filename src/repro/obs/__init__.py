"""Observability: span tracing, metrics, exporters, run manifests.

The measurement substrate under every performance claim the harness
makes.  Four pieces:

* :mod:`repro.obs.spans` — hierarchical span tracer (context-manager /
  decorator API, monotonic clocks, parent/child nesting, cross-process
  serialisation);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with multi-process merge semantics;
* :mod:`repro.obs.export` — JSONL event log (``--trace-out``),
  Prometheus text exposition (``--metrics-out``), and the human
  ``repro obs report`` tree/table view;
* :mod:`repro.obs.manifest` — per-invocation provenance records.

See the "Observability" section of DESIGN.md for the span model and
merge semantics.
"""

from .context import ObsContext
from .export import (
    TraceDump,
    format_trace_report,
    read_trace_jsonl,
    render_prometheus,
    trace_records,
    write_prometheus,
    write_trace_jsonl,
)
from .manifest import MANIFEST_VERSION, RunManifest, host_fingerprint
from .metrics import (
    CACHE_CORRUPT,
    CACHE_HITS,
    CACHE_MISSES,
    DEFAULT_BUCKETS,
    DETAILED_CALLS,
    DETAILED_INSTRUCTIONS,
    FAULTS_INJECTED,
    FUNCTIONAL_INSTRUCTIONS,
    POOL_RESPAWNS,
    PROFILE_PASSES,
    RUN_FAILURES,
    RUN_RETRIES,
    RUN_SECONDS,
    RUN_TIMEOUTS,
    RUNS_COMPLETED,
    STAGE_SECONDS,
    WORKER_CRASHES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, Tracer, traced

__all__ = [
    "CACHE_CORRUPT",
    "CACHE_HITS",
    "CACHE_MISSES",
    "Counter",
    "DEFAULT_BUCKETS",
    "DETAILED_CALLS",
    "DETAILED_INSTRUCTIONS",
    "FAULTS_INJECTED",
    "FUNCTIONAL_INSTRUCTIONS",
    "Gauge",
    "Histogram",
    "MANIFEST_VERSION",
    "MetricsRegistry",
    "ObsContext",
    "POOL_RESPAWNS",
    "PROFILE_PASSES",
    "RUN_FAILURES",
    "RUN_RETRIES",
    "RUN_SECONDS",
    "RUN_TIMEOUTS",
    "RUNS_COMPLETED",
    "RunManifest",
    "STAGE_SECONDS",
    "Span",
    "TraceDump",
    "Tracer",
    "WORKER_CRASHES",
    "format_trace_report",
    "host_fingerprint",
    "read_trace_jsonl",
    "render_prometheus",
    "trace_records",
    "traced",
    "write_prometheus",
    "write_trace_jsonl",
]
