"""Observability: span tracing, metrics, exporters, run manifests.

The measurement substrate under every performance claim the harness
makes.  Four pieces:

* :mod:`repro.obs.spans` — hierarchical span tracer (context-manager /
  decorator API, monotonic clocks, parent/child nesting, cross-process
  serialisation);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with multi-process merge semantics;
* :mod:`repro.obs.export` — JSONL event log (``--trace-out``),
  Prometheus text exposition (``--metrics-out``), and the human
  ``repro obs report`` tree/table view;
* :mod:`repro.obs.manifest` — per-invocation provenance records.

See the "Observability" section of DESIGN.md for the span model and
merge semantics.
"""

from .context import ObsContext
from .diag import (
    MethodDiag,
    PhaseDiag,
    build_method_diag,
    diag_views,
    format_diag_report,
    record_diag_metrics,
)
from .export import (
    TraceDump,
    format_trace_report,
    read_trace_jsonl,
    render_prometheus,
    trace_records,
    write_prometheus,
    write_trace_jsonl,
)
from .history import (
    HISTORY_VERSION,
    HistoryDiff,
    HistoryRecord,
    RunHistory,
    diff_records,
    format_diff,
    format_history,
    record_from_bench,
    record_from_manifest,
)
from .manifest import MANIFEST_VERSION, RunManifest, host_fingerprint
from .metrics import (
    CACHE_CORRUPT,
    CACHE_HITS,
    CACHE_MISSES,
    DEFAULT_BUCKETS,
    DETAILED_CALLS,
    DETAILED_INSTRUCTIONS,
    DISPATCH_HEARTBEATS,
    DISPATCH_LEASE_SECONDS,
    DISPATCH_LEASES,
    DISPATCH_MISSED,
    DISPATCH_RECLAIMS,
    DISPATCH_STALE_COMMITS,
    DISPATCH_STEALS,
    FAULTS_INJECTED,
    FUNCTIONAL_INSTRUCTIONS,
    JOURNAL_TORN,
    POOL_RESPAWNS,
    PROFILE_PASSES,
    RETRY_BACKOFF_SECONDS,
    RUN_FAILURES,
    RUN_RETRIES,
    RUN_SECONDS,
    RUN_TIMEOUTS,
    RUNS_COMPLETED,
    STAGE_SECONDS,
    TRACE_SHM_ATTACHED,
    TRACE_SHM_BYTES,
    TRACE_SHM_FALLBACKS,
    TRACE_SHM_SHARED,
    WORKER_CRASHES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, Tracer, traced

__all__ = [
    "CACHE_CORRUPT",
    "CACHE_HITS",
    "CACHE_MISSES",
    "Counter",
    "DEFAULT_BUCKETS",
    "DETAILED_CALLS",
    "DETAILED_INSTRUCTIONS",
    "DISPATCH_HEARTBEATS",
    "DISPATCH_LEASE_SECONDS",
    "DISPATCH_LEASES",
    "DISPATCH_MISSED",
    "DISPATCH_RECLAIMS",
    "DISPATCH_STALE_COMMITS",
    "DISPATCH_STEALS",
    "FAULTS_INJECTED",
    "FUNCTIONAL_INSTRUCTIONS",
    "Gauge",
    "HISTORY_VERSION",
    "Histogram",
    "HistoryDiff",
    "HistoryRecord",
    "JOURNAL_TORN",
    "MANIFEST_VERSION",
    "MethodDiag",
    "MetricsRegistry",
    "ObsContext",
    "PhaseDiag",
    "POOL_RESPAWNS",
    "PROFILE_PASSES",
    "RETRY_BACKOFF_SECONDS",
    "RUN_FAILURES",
    "RUN_RETRIES",
    "RUN_SECONDS",
    "RUN_TIMEOUTS",
    "RUNS_COMPLETED",
    "RunHistory",
    "RunManifest",
    "STAGE_SECONDS",
    "Span",
    "TRACE_SHM_ATTACHED",
    "TRACE_SHM_BYTES",
    "TRACE_SHM_FALLBACKS",
    "TRACE_SHM_SHARED",
    "TraceDump",
    "Tracer",
    "WORKER_CRASHES",
    "build_method_diag",
    "diag_views",
    "diff_records",
    "format_diag_report",
    "format_diff",
    "format_history",
    "format_trace_report",
    "host_fingerprint",
    "read_trace_jsonl",
    "record_diag_metrics",
    "record_from_bench",
    "record_from_manifest",
    "render_prometheus",
    "trace_records",
    "traced",
    "write_prometheus",
    "write_trace_jsonl",
]
