"""Observability: span tracing, metrics, exporters, run manifests.

The measurement substrate under every performance claim the harness
makes.  Four pieces:

* :mod:`repro.obs.spans` — hierarchical span tracer (context-manager /
  decorator API, monotonic clocks, parent/child nesting, cross-process
  serialisation);
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms with multi-process merge semantics;
* :mod:`repro.obs.export` — JSONL event log (``--trace-out``),
  Prometheus text exposition (``--metrics-out``), and the human
  ``repro obs report`` tree/table view;
* :mod:`repro.obs.manifest` — per-invocation provenance records.

The live telemetry plane (PR 10) adds four more:

* :mod:`repro.obs.stream` — delta-encoded metrics streaming with
  exactly-once folding (:class:`LiveRegistry`) plus the progress board
  and the :class:`TelemetryPlane` bundle;
* :mod:`repro.obs.serve` — the ``/metrics`` / ``/healthz`` /
  ``/progress`` / ``/events`` HTTP endpoints behind ``--serve``;
* :mod:`repro.obs.events` — the bounded flight-recorder ring behind
  ``repro obs events``;
* :mod:`repro.obs.flame` — folded-stack flamegraph export behind
  ``repro obs flame``.

See the "Observability" section of DESIGN.md for the span model and
merge semantics.
"""

from .context import ObsContext
from .diag import (
    MethodDiag,
    PhaseDiag,
    build_method_diag,
    diag_views,
    format_diag_report,
    record_diag_metrics,
)
from .events import (
    EventLog,
    follow_events,
    format_event,
    match_event,
    parse_filters,
    read_events,
)
from .export import (
    TraceDump,
    format_trace_report,
    read_trace_jsonl,
    render_prometheus,
    trace_records,
    trace_report_json,
    write_prometheus,
    write_trace_jsonl,
)
from .flame import folded_stacks, render_folded, write_folded
from .history import (
    HISTORY_VERSION,
    HistoryDiff,
    HistoryRecord,
    RunHistory,
    diff_records,
    format_diff,
    format_history,
    record_from_bench,
    record_from_manifest,
)
from .manifest import MANIFEST_VERSION, RunManifest, host_fingerprint
from .metrics import (
    CACHE_CORRUPT,
    CACHE_HITS,
    CACHE_MISSES,
    DEFAULT_BUCKETS,
    DETAILED_CALLS,
    DETAILED_INSTRUCTIONS,
    DISPATCH_HEARTBEATS,
    DISPATCH_LEASE_SECONDS,
    DISPATCH_LEASES,
    DISPATCH_MISSED,
    DISPATCH_RECLAIMS,
    DISPATCH_STALE_COMMITS,
    DISPATCH_STEALS,
    FAULTS_INJECTED,
    FUNCTIONAL_INSTRUCTIONS,
    JOURNAL_TORN,
    POOL_RESPAWNS,
    PROFILE_PASSES,
    RETRY_BACKOFF_SECONDS,
    RUN_FAILURES,
    RUN_RETRIES,
    RUN_SECONDS,
    RUN_TIMEOUTS,
    RUNS_COMPLETED,
    STAGE_SECONDS,
    TELEMETRY_DELTAS,
    TELEMETRY_DROPPED,
    TRACE_SHM_ATTACHED,
    TRACE_SHM_BYTES,
    TRACE_SHM_FALLBACKS,
    TRACE_SHM_SHARED,
    WORKER_CRASHES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    help_text,
    register_help,
)
from .serve import TelemetryServer
from .spans import Span, Tracer, traced
from .stream import (
    DEFAULT_STREAM_INTERVAL,
    LiveRegistry,
    MetricsDeltaEncoder,
    ProgressBoard,
    TelemetryPlane,
    copy_registry,
)

__all__ = [
    "CACHE_CORRUPT",
    "CACHE_HITS",
    "CACHE_MISSES",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_STREAM_INTERVAL",
    "DETAILED_CALLS",
    "DETAILED_INSTRUCTIONS",
    "DISPATCH_HEARTBEATS",
    "DISPATCH_LEASE_SECONDS",
    "DISPATCH_LEASES",
    "DISPATCH_MISSED",
    "DISPATCH_RECLAIMS",
    "DISPATCH_STALE_COMMITS",
    "DISPATCH_STEALS",
    "EventLog",
    "FAULTS_INJECTED",
    "FUNCTIONAL_INSTRUCTIONS",
    "Gauge",
    "HISTORY_VERSION",
    "Histogram",
    "HistoryDiff",
    "HistoryRecord",
    "JOURNAL_TORN",
    "LiveRegistry",
    "MANIFEST_VERSION",
    "MethodDiag",
    "MetricsDeltaEncoder",
    "MetricsRegistry",
    "ObsContext",
    "PhaseDiag",
    "ProgressBoard",
    "POOL_RESPAWNS",
    "PROFILE_PASSES",
    "RETRY_BACKOFF_SECONDS",
    "RUN_FAILURES",
    "RUN_RETRIES",
    "RUN_SECONDS",
    "RUN_TIMEOUTS",
    "RUNS_COMPLETED",
    "RunHistory",
    "RunManifest",
    "STAGE_SECONDS",
    "Span",
    "TELEMETRY_DELTAS",
    "TELEMETRY_DROPPED",
    "TRACE_SHM_ATTACHED",
    "TRACE_SHM_BYTES",
    "TRACE_SHM_FALLBACKS",
    "TRACE_SHM_SHARED",
    "TelemetryPlane",
    "TelemetryServer",
    "TraceDump",
    "Tracer",
    "WORKER_CRASHES",
    "build_method_diag",
    "copy_registry",
    "diag_views",
    "diff_records",
    "folded_stacks",
    "follow_events",
    "format_diag_report",
    "format_diff",
    "format_event",
    "format_history",
    "format_trace_report",
    "help_text",
    "host_fingerprint",
    "match_event",
    "parse_filters",
    "read_events",
    "read_trace_jsonl",
    "record_diag_metrics",
    "record_from_bench",
    "record_from_manifest",
    "register_help",
    "render_folded",
    "render_prometheus",
    "trace_records",
    "trace_report_json",
    "traced",
    "write_folded",
    "write_prometheus",
    "write_trace_jsonl",
]
