"""Flight recorder: a bounded ring of harness lifecycle events.

Metrics say *how much*; the flight recorder says *what happened, in
order*: lease grants/reclaims/steals, retries, cache hits and misses,
commits, worker lifecycle.  Events live in a fixed-capacity in-memory
ring (old events fall off — this is a black box, not an audit log) and,
when a sink path is given (``--events-out``), are also appended as
JSONL so ``repro obs events --follow`` can tail a running campaign and
CI can archive the log as an artefact.

Emission is thread-safe and deliberately cheap; like all telemetry it
is out-of-band and must never influence results.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

#: Known event kinds (a convention, not a straitjacket — emitters may
#: add new kinds without touching this module).
EVENT_KINDS = (
    "suite_begin", "suite_end",
    "run_done", "run_failed", "retry",
    "cache_hit", "cache_miss",
    "lease_grant", "lease_reclaim", "lease_steal", "lease_commit",
    "stale_commit",
    "worker_spawn", "worker_dead", "pool_respawn",
)

#: Default ring capacity — enough for a full campaign's lifecycle
#: events without unbounded growth under pathological retry storms.
DEFAULT_CAPACITY = 4096


class EventLog:
    """Bounded in-memory event ring with an optional JSONL sink."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: Optional[Any] = None,
    ) -> None:
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=int(capacity))
        self._seq = 0
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_handle = None

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def sink_path(self) -> Optional[Path]:
        return self._sink_path

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> dict:
        """Record one event; returns the stored record."""
        with self._lock:
            self._seq += 1
            record = {"seq": self._seq, "ts": time.time(), "kind": kind}
            record.update(fields)
            self._ring.append(record)
            if self._sink_path is not None:
                if self._sink_handle is None:
                    self._sink_handle = open(self._sink_path, "a")
                self._sink_handle.write(json.dumps(record) + "\n")
                self._sink_handle.flush()
        return record

    def tail(
        self,
        limit: Optional[int] = None,
        filters: Optional[Dict[str, str]] = None,
    ) -> List[dict]:
        """The most recent events (oldest first), optionally filtered."""
        with self._lock:
            records = list(self._ring)
        if filters:
            records = [r for r in records if match_event(r, filters)]
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def close(self) -> None:
        with self._lock:
            if self._sink_handle is not None:
                self._sink_handle.close()
                self._sink_handle = None


# ----------------------------------------------------------------------
# reading / filtering / rendering (repro obs events)
# ----------------------------------------------------------------------
def parse_filters(expressions) -> Dict[str, str]:
    """``key=value`` filter expressions; a bare word filters ``kind``."""
    filters: Dict[str, str] = {}
    for expression in expressions or ():
        if "=" in expression:
            key, _, value = expression.partition("=")
            filters[key.strip()] = value.strip()
        else:
            filters["kind"] = expression.strip()
    return filters


def match_event(record: dict, filters: Dict[str, str]) -> bool:
    """Every filter key must be present and stringify-equal."""
    for key, expected in filters.items():
        if key not in record or str(record[key]) != expected:
            return False
    return True


def read_events(path) -> List[dict]:
    """Parse an events JSONL file (a torn trailing line is skipped —
    the writer may still be mid-append)."""
    records: List[dict] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def format_event(record: dict) -> str:
    """One human line: ``#seq HH:MM:SS kind key=value ...``."""
    seq = record.get("seq", "?")
    ts = record.get("ts")
    clock = (
        time.strftime("%H:%M:%S", time.localtime(ts))
        if isinstance(ts, (int, float)) else "--:--:--"
    )
    kind = record.get("kind", "?")
    detail = " ".join(
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in ("seq", "ts", "kind")
    )
    return f"#{seq:>5} {clock} {kind:<14} {detail}".rstrip()


def follow_events(
    path,
    poll_interval: float = 0.25,
    stop: Optional[threading.Event] = None,
    duration: Optional[float] = None,
) -> Iterator[dict]:
    """Yield events appended to *path*, tail -f style.

    Stops when *stop* is set or *duration* seconds have elapsed; a
    missing file is waited for, not an error.
    """
    deadline = (
        time.monotonic() + duration if duration is not None else None
    )
    path = Path(path)
    offset = 0
    buffer = ""
    while True:
        if path.exists():
            with open(path, "r") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            buffer += chunk
            while "\n" in buffer:
                line, _, buffer = buffer.partition("\n")
                if not line.strip():
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue
        if stop is not None and stop.is_set():
            return
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll_interval)
