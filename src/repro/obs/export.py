"""Observability sinks: JSONL trace log, Prometheus text, report view.

Three consumers, three formats, one source of truth:

* :func:`write_trace_jsonl` — the machine-readable event log behind
  ``--trace-out``.  One JSON object per line: an optional ``manifest``
  record first, then flattened ``span`` records (depth-first, with
  ``id``/``parent`` links assigned at export time) and ``metric``
  records, so the file is self-contained and greppable.
* :func:`render_prometheus` — the text exposition behind
  ``--metrics-out``: ``# TYPE`` headers, ``_total`` counters, gauges,
  and cumulative ``_bucket``/``_sum``/``_count`` histogram series.
* :func:`format_trace_report` — the human tree/table view behind
  ``repro obs report``: the span forest with durations, a per-name
  aggregate table, and the headline counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ObservabilityError
from .metrics import MetricsRegistry, help_text
from .spans import Span, Tracer

#: Format marker on the manifest/first record; bump on layout changes.
TRACE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def _span_records(
    span: Span, parent_id: Optional[int], next_id: List[int]
) -> Iterator[dict]:
    span_id = next_id[0]
    next_id[0] += 1
    record = {
        "type": "span",
        "id": span_id,
        "parent": parent_id,
        "name": span.name,
        "started_at": span.started_at,
        "duration": span.duration,
        "status": span.status,
    }
    if span.error is not None:
        record["error"] = span.error
    # Stable distributed-trace identity, alongside the export-time
    # integer links that keep old readers working.
    if span.span_id is not None:
        record["span_id"] = span.span_id
    if span.parent_id is not None:
        record["parent_span_id"] = span.parent_id
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
    if span.attributes:
        record["attributes"] = dict(span.attributes)
    yield record
    for child in span.children:
        yield from _span_records(child, span_id, next_id)


def trace_records(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    manifest: Optional[dict] = None,
) -> Iterator[dict]:
    """Every JSONL record of one trace dump, in file order."""
    if manifest is not None:
        yield {
            "type": "manifest",
            "format": TRACE_FORMAT_VERSION,
            **manifest,
        }
    next_id = [1]
    for root in tracer.roots:
        yield from _span_records(root, None, next_id)
    if metrics is not None:
        for item in metrics.to_dict()["metrics"]:
            yield {"type": "metric", **item}


def write_trace_jsonl(
    path,
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    manifest: Optional[dict] = None,
) -> int:
    """Write the JSONL event log to *path*; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        for record in trace_records(tracer, metrics, manifest):
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


@dataclass
class TraceDump:
    """A parsed ``--trace-out`` file."""

    manifest: Optional[dict] = None
    roots: List[Span] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()


def read_trace_jsonl(path) -> TraceDump:
    """Parse a JSONL trace back into spans + metrics + manifest."""
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise ObservabilityError(f"cannot read trace {path}: {error}")
    dump = TraceDump()
    by_id: Dict[int, Span] = {}
    for number, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ObservabilityError(
                f"{path}:{number}: not valid JSON ({error})"
            )
        kind = record.get("type")
        if kind == "manifest":
            dump.manifest = record
        elif kind == "span":
            span = Span(record["name"], record.get("attributes"))
            span.started_at = record.get("started_at", 0.0)
            span.duration = record.get("duration")
            span.status = record.get("status", "ok")
            span.error = record.get("error")
            span.span_id = record.get("span_id")
            span.parent_id = record.get("parent_span_id")
            span.trace_id = record.get("trace_id")
            by_id[record["id"]] = span
            parent = record.get("parent")
            if parent is None:
                dump.roots.append(span)
            elif parent in by_id:
                by_id[parent].children.append(span)
            else:
                raise ObservabilityError(
                    f"{path}:{number}: span parent {parent} not yet seen"
                )
        elif kind == "metric":
            dump.metrics.merge_dict({"metrics": [record]})
        else:
            raise ObservabilityError(
                f"{path}:{number}: unknown record type {kind!r}"
            )
    return dump


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _label_text(labels: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus/OpenMetrics-style text exposition of *registry*."""
    lines: List[str] = []
    typed = set()
    for name, labels, metric in registry.samples():
        if name not in typed:
            lines.append(f"# HELP {name} {help_text(name)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            typed.add(name)
        if metric.kind in ("counter", "gauge"):
            lines.append(
                f"{name}{_label_text(labels)} {_format_value(metric.value)}"
            )
            continue
        cumulative = 0
        for bound, count in zip(metric.bounds, metric.counts):
            cumulative += count
            le = 'le="%s"' % _format_value(bound)
            lines.append(
                f"{name}_bucket{_label_text(labels, le)} {cumulative}"
            )
        inf = 'le="+Inf"'
        lines.append(
            f"{name}_bucket{_label_text(labels, inf)} {metric.count}"
        )
        lines.append(
            f"{name}_sum{_label_text(labels)} {_format_value(metric.sum)}"
        )
        lines.append(f"{name}_count{_label_text(labels)} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path, registry: MetricsRegistry) -> None:
    """Write :func:`render_prometheus` output to *path*."""
    Path(path).write_text(render_prometheus(registry))


# ----------------------------------------------------------------------
# human report (repro obs report)
# ----------------------------------------------------------------------
def _seconds(span: Span) -> float:
    return span.duration if span.duration is not None else 0.0


def trace_report_json(dump: TraceDump) -> dict:
    """One JSON document per trace: manifest + span forest + metrics +
    the per-name aggregates the human report tabulates.

    This is the machine-readable face of ``repro obs report`` (the
    ``--json`` flag) so CI and dashboards stop scraping the tree
    renderer.
    """
    totals: Dict[str, List[float]] = {}
    for span in dump.spans():
        entry = totals.setdefault(span.name, [0, 0.0])
        entry[0] += 1
        entry[1] += _seconds(span)
    return {
        "format": TRACE_FORMAT_VERSION,
        "manifest": dump.manifest,
        "spans": [root.to_dict() for root in dump.roots],
        "span_totals": {
            name: {"count": int(count), "seconds": seconds}
            for name, (count, seconds) in sorted(totals.items())
        },
        "metrics": dump.metrics.to_dict()["metrics"],
    }


def _tree_lines(
    span: Span, lines: List[str], prefix: str, last: bool, depth: int,
    max_depth: Optional[int],
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    connector = "" if not prefix and depth == 0 else ("`- " if last else "|- ")
    label_bits = []
    for key in ("benchmark", "config", "attempt"):
        if key in span.attributes:
            label_bits.append(f"{key}={span.attributes[key]}")
    status = "" if span.status == "ok" else f"  [{span.status}: {span.error}]"
    label = f" ({', '.join(label_bits)})" if label_bits else ""
    lines.append(
        f"{prefix}{connector}{span.name}{label}  {_seconds(span):.3f}s"
        f"{status}"
    )
    child_prefix = prefix + ("   " if last else "|  ") if depth > 0 else prefix
    for index, child in enumerate(span.children):
        _tree_lines(
            child, lines, child_prefix, index == len(span.children) - 1,
            depth + 1, max_depth,
        )


def format_trace_report(
    dump: TraceDump, max_depth: Optional[int] = None
) -> str:
    """Render a parsed trace as the ``obs report`` tree + tables."""
    lines: List[str] = []
    if dump.manifest is not None:
        m = dump.manifest
        outcome = m.get("outcome", {})
        lines.append(
            f"manifest: repro {m.get('repro_version', '?')} | "
            f"config {m.get('config_name', '?')} "
            f"(digest {m.get('config_digest', '?')[:12]}) | "
            f"scale {m.get('workload_scale', '?')} | "
            f"jobs {m.get('jobs', '?')}"
        )
        if outcome:
            lines.append(
                f"outcome: {outcome.get('completed', 0)} completed, "
                f"{outcome.get('failed', 0)} failed, "
                f"wall {outcome.get('wall_seconds', 0.0):.2f}s"
            )
        lines.append("")

    n_spans = sum(1 for _ in dump.spans())
    lines.append(f"trace: {len(dump.roots)} root span(s), {n_spans} total")
    for root in dump.roots:
        _tree_lines(root, lines, "", True, 0, max_depth)

    # Aggregate table: every span name with count / total / share.
    totals: Dict[str, Tuple[int, float]] = {}
    for span in dump.spans():
        count, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, seconds + _seconds(span))
    # Shares against the leaf total (roots double-count their children).
    leaf_total = sum(
        _seconds(s) for s in dump.spans() if not s.children
    ) or 1.0
    if totals:
        lines.append("")
        width = max(len(name) for name in totals)
        lines.append(
            f"{'span':<{width}}  {'count':>5}  {'total':>9}  {'share':>6}"
        )
        for name, (count, seconds) in sorted(
            totals.items(), key=lambda kv: -kv[1][1]
        ):
            lines.append(
                f"{name:<{width}}  {count:>5}  {seconds:>8.3f}s  "
                f"{100.0 * seconds / leaf_total:>5.1f}%"
            )

    counters = [
        (name, labels, metric)
        for name, labels, metric in dump.metrics.samples()
        if metric.kind == "counter"
    ]
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, labels, metric in counters:
            label_text = _label_text(labels)
            lines.append(
                f"  {name}{label_text} = {_format_value(metric.value)}"
            )

    # Gauges come in wide families (one series per benchmark/method/
    # phase — the diag instruments alone are hundreds), so the report
    # aggregates per name; `repro obs diag` renders the detail.
    gauges: Dict[str, List[float]] = {}
    for name, labels, metric in dump.metrics.samples():
        if metric.kind == "gauge":
            gauges.setdefault(name, []).append(metric.value)
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            values = gauges[name]
            if len(values) == 1:
                lines.append(f"  {name} = {_format_value(values[0])}")
            else:
                lines.append(
                    f"  {name}: {len(values)} series, "
                    f"min {_format_value(min(values))}, "
                    f"max {_format_value(max(values))}"
                )

    histograms = [
        (name, labels, metric)
        for name, labels, metric in dump.metrics.samples()
        if metric.kind == "histogram"
    ]
    if histograms:
        lines.append("")
        lines.append("histograms:")
        for name, labels, metric in histograms:
            lines.append(
                f"  {name}{_label_text(labels)}: count {metric.count}, "
                f"sum {_format_value(metric.sum)}"
            )
    return "\n".join(lines)
