"""Accuracy diagnostics: per-phase error attribution + clustering quality.

The paper's claim is an accuracy claim (Table II), so the observability
stack must answer not just *where time went* (spans) but *where error
came from*.  This module is the schema and math for that:

* **Per-phase error attribution.**  A sampling estimate is the weighted
  mean of representative metrics, ``est = (1/W) * sum_p w_p * rep_p``,
  and the covered truth decomposes the same way over per-phase means,
  so the signed deviation splits exactly into per-phase contributions::

      est - base = sum_p c_p + residual
      c_p        = (rep_term_p - w_p * phase_mean_p) / W

  where ``rep_term_p`` sums the phase's detail-simulated leaves
  (``w_leaf * metric_leaf``) and the *residual* collects everything the
  phase rows cannot explain: coverage discarded by the <1% rule,
  rate-aggregation bias, and weight normalisation.  CPI contributions
  are relative to the baseline CPI and hit-rate contributions are
  absolute — the same units as :class:`repro.detailed.results.Deviation`
  — so the signed rows sum to the Table II number for each benchmark.

* **Clustering-quality telemetry.**  Per-phase intra-cluster variance,
  simplified silhouette, representative-to-centroid distance, coarse
  point size vs. the 300M (scaled) re-sampling threshold, and the
  coverage the boundary filter discarded.  These are the SimPoint-style
  predictors of sampling error; gcc's pathological giant coarse point
  (EXPERIMENTS.md) lights up here as an ``oversized`` flag.

Everything is recorded as ``repro_diag_*`` gauges on the run's metrics
registry, so a ``--trace-out`` file is self-contained:
``repro obs diag trace.jsonl`` rebuilds the error-budget tables from the
metric records alone.

This module deliberately imports nothing from the sampling or harness
layers (they import *it*); the samplers construct :class:`MethodDiag`
records and the harness fills in the attribution after detail
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import register_help

# ----------------------------------------------------------------------
# well-known diagnostic metric names (all gauges: re-recording a run's
# diagnostics must be idempotent, so counters are wrong here)
# ----------------------------------------------------------------------
DIAG_PHASE_ERROR = "repro_diag_phase_error"
DIAG_RESIDUAL = "repro_diag_residual"
DIAG_TOTAL_ERROR = "repro_diag_total_error"
DIAG_PHASE_WEIGHT = "repro_diag_phase_weight"
DIAG_PHASE_INSTRUCTIONS = "repro_diag_phase_instructions"
DIAG_PHASE_MEMBERS = "repro_diag_phase_members"
DIAG_POINT_SIZE = "repro_diag_point_size"
DIAG_REP_DISTANCE = "repro_diag_rep_distance"
DIAG_MEAN_DISTANCE = "repro_diag_mean_distance"
DIAG_CLUSTER_VARIANCE = "repro_diag_cluster_variance"
DIAG_SILHOUETTE = "repro_diag_silhouette"
DIAG_REP_VALUE = "repro_diag_rep_value"
DIAG_PHASE_VALUE = "repro_diag_phase_value"
DIAG_OVERSIZED = "repro_diag_oversized"
DIAG_RESAMPLED = "repro_diag_resampled"
DIAG_COVERAGE_DISCARDED = "repro_diag_coverage_discarded"
DIAG_RESAMPLE_THRESHOLD = "repro_diag_resample_threshold"
DIAG_N_CLUSTERS = "repro_diag_n_clusters"
DIAG_N_INTERVALS = "repro_diag_n_intervals"

for _name, _help in (
    (DIAG_PHASE_ERROR, "Per-phase absolute error vs the baseline."),
    (DIAG_RESIDUAL, "Total error minus attributed per-phase error."),
    (DIAG_TOTAL_ERROR, "Whole-run absolute error vs the baseline."),
    (DIAG_PHASE_WEIGHT, "Fraction of intervals assigned to the phase."),
    (DIAG_PHASE_INSTRUCTIONS, "Instructions attributed to the phase."),
    (DIAG_PHASE_MEMBERS, "Interval count of the phase's cluster."),
    (DIAG_POINT_SIZE, "Representative point size in instructions."),
    (DIAG_REP_DISTANCE, "Representative-to-centroid distance."),
    (DIAG_MEAN_DISTANCE, "Mean member-to-centroid distance."),
    (DIAG_CLUSTER_VARIANCE, "Signature variance within the cluster."),
    (DIAG_SILHOUETTE, "Silhouette score of the clustering."),
    (DIAG_REP_VALUE, "Metric value measured at the representative."),
    (DIAG_PHASE_VALUE, "Metric value attributed to the whole phase."),
    (DIAG_OVERSIZED, "Phases whose point exceeded the size budget."),
    (DIAG_RESAMPLED, "Phases re-sampled after a coverage check."),
    (DIAG_COVERAGE_DISCARDED, "Intervals discarded by coverage checks."),
    (DIAG_RESAMPLE_THRESHOLD, "Coverage threshold that triggers resampling."),
    (DIAG_N_CLUSTERS, "Clusters in the sampling plan."),
    (DIAG_N_INTERVALS, "Intervals in the profiled trace."),
):
    register_help(_name, _help)
del _name, _help

#: The accuracy metrics attribution covers, in reporting order.
DIAG_METRICS: Tuple[str, ...] = ("cpi", "l1", "l2")

#: A representative farther than this multiple of the cluster's mean
#: member-to-centroid distance is flagged ``FAR-REP`` in reports.
FAR_REP_FACTOR = 2.0


@dataclass
class PhaseDiag:
    """Diagnostics of one phase (cluster) of one sampling plan."""

    phase: int
    weight: float
    n_members: int
    instructions: int
    #: Size of the phase's coarse/representative point, in instructions.
    point_size: int
    rep_index: int
    #: Euclidean distance of the representative's signature to its
    #: centroid, and the cluster's mean member distance next to it.
    rep_distance: float
    mean_distance: float
    #: Intra-cluster variance: mean squared member-to-centroid distance.
    variance: float
    #: Mean simplified (centroid-based) silhouette of the members.
    silhouette: float
    resampled: bool = False
    #: True when the point exceeds the re-sampling threshold — the
    #: paper's "giant coarse point" pathology (gcc).
    oversized: bool = False
    #: Filled by the harness after detail simulation: representative
    #: and phase-mean metric values, and the signed error contribution
    #: per metric (Deviation units; see the module docstring).
    rep_values: Dict[str, float] = field(default_factory=dict)
    phase_values: Dict[str, float] = field(default_factory=dict)
    contributions: Dict[str, float] = field(default_factory=dict)

    @property
    def far_representative(self) -> bool:
        """Is the representative unusually far from its centroid?"""
        return (
            self.n_members > 1
            and self.mean_distance > 0.0
            and self.rep_distance > FAR_REP_FACTOR * self.mean_distance
        )

    def flags(self) -> List[str]:
        """Human-readable anomaly flags for the report table."""
        out: List[str] = []
        if self.oversized:
            out.append("GIANT-COARSE-POINT")
        if self.far_representative:
            out.append("FAR-REP")
        if self.n_members > 1 and self.silhouette < 0.0:
            out.append("LOW-SEPARATION")
        if self.resampled:
            out.append("resampled")
        return out

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "weight": self.weight,
            "n_members": self.n_members,
            "instructions": self.instructions,
            "point_size": self.point_size,
            "rep_index": self.rep_index,
            "rep_distance": self.rep_distance,
            "mean_distance": self.mean_distance,
            "variance": self.variance,
            "silhouette": self.silhouette,
            "resampled": self.resampled,
            "oversized": self.oversized,
            "rep_values": dict(self.rep_values),
            "phase_values": dict(self.phase_values),
            "contributions": dict(self.contributions),
        }

    @staticmethod
    def from_dict(payload: dict) -> "PhaseDiag":
        return PhaseDiag(
            phase=int(payload["phase"]),
            weight=float(payload["weight"]),
            n_members=int(payload["n_members"]),
            instructions=int(payload["instructions"]),
            point_size=int(payload["point_size"]),
            rep_index=int(payload["rep_index"]),
            rep_distance=float(payload["rep_distance"]),
            mean_distance=float(payload["mean_distance"]),
            variance=float(payload["variance"]),
            silhouette=float(payload["silhouette"]),
            resampled=bool(payload.get("resampled", False)),
            oversized=bool(payload.get("oversized", False)),
            rep_values=dict(payload.get("rep_values", {})),
            phase_values=dict(payload.get("phase_values", {})),
            contributions=dict(payload.get("contributions", {})),
        )


@dataclass
class MethodDiag:
    """Diagnostics of one sampling method on one benchmark.

    Built in two steps: the sampler fills the clustering-quality fields
    (and the transient per-phase member bounds); the harness fills the
    attribution fields after detail simulation.  ``members`` never
    serialises — it is only needed to aggregate per-phase truth.
    """

    method: str
    benchmark: str
    n_clusters: int
    n_intervals: int
    coverage_discarded: float
    resample_threshold: int
    phases: List[PhaseDiag] = field(default_factory=list)
    #: Signed residual per metric: total minus the phase contributions
    #: (coverage, rate-aggregation bias, weight normalisation).
    residual: Dict[str, float] = field(default_factory=dict)
    #: Signed total deviation per metric (Deviation units).
    total_error: Dict[str, float] = field(default_factory=dict)
    #: Transient: phase -> [(start, end), ...] member interval bounds.
    members: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict, repr=False,
    )

    # ------------------------------------------------------------------
    def phase_by_id(self, phase: int) -> Optional[PhaseDiag]:
        """The diagnostics row of *phase*, if present."""
        for row in self.phases:
            if row.phase == phase:
                return row
        return None

    @property
    def n_oversized(self) -> int:
        """Phases whose point exceeds the re-sampling threshold."""
        return sum(1 for row in self.phases if row.oversized)

    def sorted_phases(self) -> List[PhaseDiag]:
        """Phases ordered worst-first by absolute CPI contribution."""
        return sorted(
            self.phases,
            key=lambda row: -abs(row.contributions.get("cpi", 0.0)),
        )

    # ------------------------------------------------------------------
    def attribute(
        self,
        baseline: Dict[str, float],
        estimate: Dict[str, float],
        rep_terms: Dict[int, Dict[str, float]],
        phase_values: Dict[int, Dict[str, float]],
        weight_total: float,
    ) -> None:
        """Fill the attribution fields (harness-side, post-simulation).

        *rep_terms* maps phase -> unnormalised representative terms
        (``sum over the phase's leaves of w_leaf * metric``);
        *phase_values* maps phase -> the phase's true per-metric means
        (aggregated over every member interval); *weight_total* is the
        plan's total leaf weight ``W``.  CPI rows are divided by the
        baseline CPI so contributions line up with Table II's relative
        CPI deviation; hit-rate rows stay absolute.
        """
        base_cpi = baseline["cpi"]
        self.total_error = {
            "cpi": (estimate["cpi"] - baseline["cpi"]) / base_cpi,
            "l1": estimate["l1"] - baseline["l1"],
            "l2": estimate["l2"] - baseline["l2"],
        }
        sums = {name: 0.0 for name in DIAG_METRICS}
        for row in self.phases:
            term = rep_terms.get(row.phase)
            truth = phase_values.get(row.phase)
            if term is None or truth is None:
                continue
            row.phase_values = dict(truth)
            row.rep_values = {
                name: (term[name] / row.weight if row.weight > 0 else 0.0)
                for name in DIAG_METRICS
            }
            row.contributions = {}
            for name in DIAG_METRICS:
                contribution = (
                    term[name] - row.weight * truth[name]
                ) / weight_total
                if name == "cpi":
                    contribution /= base_cpi
                row.contributions[name] = contribution
                sums[name] += contribution
        self.residual = {
            name: self.total_error[name] - sums[name]
            for name in DIAG_METRICS
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "benchmark": self.benchmark,
            "n_clusters": self.n_clusters,
            "n_intervals": self.n_intervals,
            "coverage_discarded": self.coverage_discarded,
            "resample_threshold": self.resample_threshold,
            "phases": [row.to_dict() for row in self.phases],
            "residual": dict(self.residual),
            "total_error": dict(self.total_error),
        }

    @staticmethod
    def from_dict(payload: dict) -> "MethodDiag":
        return MethodDiag(
            method=payload["method"],
            benchmark=payload["benchmark"],
            n_clusters=int(payload["n_clusters"]),
            n_intervals=int(payload["n_intervals"]),
            coverage_discarded=float(payload["coverage_discarded"]),
            resample_threshold=int(payload["resample_threshold"]),
            phases=[PhaseDiag.from_dict(p) for p in payload.get("phases", [])],
            residual=dict(payload.get("residual", {})),
            total_error=dict(payload.get("total_error", {})),
        )


# ----------------------------------------------------------------------
# sampler-side construction
# ----------------------------------------------------------------------
def build_method_diag(
    method: str,
    benchmark: str,
    labels: Sequence[int],
    picks: Sequence[int],
    weights: Sequence[float],
    bounds: Sequence[Tuple[int, int]],
    instructions: Sequence[int],
    quality,
    resample_threshold: int,
    coverage_discarded: float = 0.0,
) -> MethodDiag:
    """Assemble a :class:`MethodDiag` from one clustering's raw pieces.

    *labels*, *bounds* and *instructions* are per interval; *picks* and
    *weights* per phase (``picks[p] < 0`` marks an empty phase, skipped
    exactly like the samplers skip it when building the plan).  *quality*
    is duck-typed (``variances``/``silhouettes`` per cluster,
    ``member_distances`` per interval) so this module needs no import
    from the analysis layer — the samplers pass
    :class:`repro.analysis.kmeans.ClusterQuality`.
    """
    diag = MethodDiag(
        method=method,
        benchmark=benchmark,
        n_clusters=len(picks),
        n_intervals=len(labels),
        coverage_discarded=coverage_discarded,
        resample_threshold=int(resample_threshold),
    )
    for phase, pick in enumerate(picks):
        pick = int(pick)
        if pick < 0:
            continue
        members = [i for i, label in enumerate(labels) if label == phase]
        member_bounds = [
            (int(bounds[i][0]), int(bounds[i][1])) for i in members
        ]
        distances = [float(quality.member_distances[i]) for i in members]
        point_size = int(bounds[pick][1]) - int(bounds[pick][0])
        diag.phases.append(PhaseDiag(
            phase=phase,
            weight=float(weights[phase]),
            n_members=len(members),
            instructions=int(sum(instructions[i] for i in members)),
            point_size=point_size,
            rep_index=pick,
            rep_distance=float(quality.member_distances[pick]),
            mean_distance=(
                sum(distances) / len(distances) if distances else 0.0
            ),
            variance=float(quality.variances[phase]),
            silhouette=float(quality.silhouettes[phase]),
            oversized=point_size > resample_threshold,
        ))
        diag.members[phase] = member_bounds
    return diag


# ----------------------------------------------------------------------
# registry recording and reconstruction
# ----------------------------------------------------------------------
def record_diag_metrics(registry, diags: Dict[str, MethodDiag]) -> None:
    """Write one benchmark's diagnostics as ``repro_diag_*`` gauges.

    *registry* is a :class:`~repro.obs.metrics.MetricsRegistry` (duck
    typed to avoid an import cycle with callers).  All instruments are
    gauges, so recording the same run twice (cache hits, retries) is
    idempotent.
    """
    for diag in diags.values():
        ident = {"benchmark": diag.benchmark, "method": diag.method}
        registry.gauge(DIAG_N_CLUSTERS, **ident).set(diag.n_clusters)
        registry.gauge(DIAG_N_INTERVALS, **ident).set(diag.n_intervals)
        registry.gauge(DIAG_COVERAGE_DISCARDED, **ident).set(
            diag.coverage_discarded
        )
        registry.gauge(DIAG_RESAMPLE_THRESHOLD, **ident).set(
            diag.resample_threshold
        )
        for name in DIAG_METRICS:
            if name in diag.total_error:
                registry.gauge(DIAG_TOTAL_ERROR, metric=name, **ident).set(
                    diag.total_error[name]
                )
            if name in diag.residual:
                registry.gauge(DIAG_RESIDUAL, metric=name, **ident).set(
                    diag.residual[name]
                )
        for row in diag.phases:
            labels = dict(ident, phase=row.phase)
            registry.gauge(DIAG_PHASE_WEIGHT, **labels).set(row.weight)
            registry.gauge(DIAG_PHASE_MEMBERS, **labels).set(row.n_members)
            registry.gauge(DIAG_PHASE_INSTRUCTIONS, **labels).set(
                row.instructions
            )
            registry.gauge(DIAG_POINT_SIZE, **labels).set(row.point_size)
            registry.gauge(DIAG_REP_DISTANCE, **labels).set(row.rep_distance)
            registry.gauge(DIAG_MEAN_DISTANCE, **labels).set(
                row.mean_distance
            )
            registry.gauge(DIAG_CLUSTER_VARIANCE, **labels).set(row.variance)
            registry.gauge(DIAG_SILHOUETTE, **labels).set(row.silhouette)
            registry.gauge(DIAG_OVERSIZED, **labels).set(
                1.0 if row.oversized else 0.0
            )
            registry.gauge(DIAG_RESAMPLED, **labels).set(
                1.0 if row.resampled else 0.0
            )
            for name in DIAG_METRICS:
                if name in row.contributions:
                    registry.gauge(
                        DIAG_PHASE_ERROR, metric=name, **labels
                    ).set(row.contributions[name])
                if name in row.rep_values:
                    registry.gauge(
                        DIAG_REP_VALUE, metric=name, **labels
                    ).set(row.rep_values[name])
                if name in row.phase_values:
                    registry.gauge(
                        DIAG_PHASE_VALUE, metric=name, **labels
                    ).set(row.phase_values[name])


def diag_views(registry) -> Dict[str, Dict[str, MethodDiag]]:
    """Rebuild ``{benchmark: {method: MethodDiag}}`` from recorded gauges.

    The inverse of :func:`record_diag_metrics`, up to the transient
    ``members`` field.  Accepts anything with a ``samples()`` iterator
    (a live registry or a parsed :class:`~repro.obs.export.TraceDump`'s
    ``metrics``).
    """
    views: Dict[str, Dict[str, MethodDiag]] = {}

    def method_of(labels: Dict[str, str]) -> Optional[MethodDiag]:
        benchmark = labels.get("benchmark")
        method = labels.get("method")
        if benchmark is None or method is None:
            return None
        per_bench = views.setdefault(benchmark, {})
        if method not in per_bench:
            per_bench[method] = MethodDiag(
                method=method, benchmark=benchmark, n_clusters=0,
                n_intervals=0, coverage_discarded=0.0, resample_threshold=0,
            )
        return per_bench[method]

    def phase_of(diag: MethodDiag, labels: Dict[str, str]) -> PhaseDiag:
        phase = int(labels["phase"])
        row = diag.phase_by_id(phase)
        if row is None:
            row = PhaseDiag(
                phase=phase, weight=0.0, n_members=0, instructions=0,
                point_size=0, rep_index=-1, rep_distance=0.0,
                mean_distance=0.0, variance=0.0, silhouette=0.0,
            )
            diag.phases.append(row)
        return row

    per_phase_scalar = {
        DIAG_PHASE_WEIGHT: "weight",
        DIAG_REP_DISTANCE: "rep_distance",
        DIAG_MEAN_DISTANCE: "mean_distance",
        DIAG_CLUSTER_VARIANCE: "variance",
        DIAG_SILHOUETTE: "silhouette",
    }
    per_phase_int = {
        DIAG_PHASE_MEMBERS: "n_members",
        DIAG_PHASE_INSTRUCTIONS: "instructions",
        DIAG_POINT_SIZE: "point_size",
    }
    per_phase_flag = {
        DIAG_OVERSIZED: "oversized",
        DIAG_RESAMPLED: "resampled",
    }
    per_phase_metric = {
        DIAG_PHASE_ERROR: "contributions",
        DIAG_REP_VALUE: "rep_values",
        DIAG_PHASE_VALUE: "phase_values",
    }
    per_method_int = {
        DIAG_N_CLUSTERS: "n_clusters",
        DIAG_N_INTERVALS: "n_intervals",
        DIAG_RESAMPLE_THRESHOLD: "resample_threshold",
    }
    per_method_metric = {
        DIAG_TOTAL_ERROR: "total_error",
        DIAG_RESIDUAL: "residual",
    }

    for name, label_items, metric in registry.samples():
        if not name.startswith("repro_diag_"):
            continue
        labels = dict(label_items)
        diag = method_of(labels)
        if diag is None:
            continue
        value = metric.value
        if name in per_method_int:
            setattr(diag, per_method_int[name], int(value))
        elif name == DIAG_COVERAGE_DISCARDED:
            diag.coverage_discarded = value
        elif name in per_method_metric:
            getattr(diag, per_method_metric[name])[labels["metric"]] = value
        elif name in per_phase_scalar:
            setattr(phase_of(diag, labels), per_phase_scalar[name], value)
        elif name in per_phase_int:
            setattr(phase_of(diag, labels), per_phase_int[name], int(value))
        elif name in per_phase_flag:
            setattr(
                phase_of(diag, labels), per_phase_flag[name], value > 0.5
            )
        elif name in per_phase_metric:
            getattr(phase_of(diag, labels), per_phase_metric[name])[
                labels["metric"]
            ] = value
    for per_bench in views.values():
        for diag in per_bench.values():
            diag.phases.sort(key=lambda row: row.phase)
    return views


# ----------------------------------------------------------------------
# human report (repro obs diag)
# ----------------------------------------------------------------------
def _pct(value: float) -> str:
    return f"{100.0 * value:+.3f}%"


def format_diag_report(
    views: Dict[str, Dict[str, MethodDiag]],
    benchmark: Optional[str] = None,
    method: Optional[str] = None,
) -> str:
    """Render per-benchmark error-budget tables, worst phase first."""
    lines: List[str] = []
    benchmarks = sorted(views) if benchmark is None else [benchmark]
    for bench in benchmarks:
        methods = views.get(bench, {})
        names = sorted(methods) if method is None else [method]
        for name in names:
            diag = methods.get(name)
            if diag is None:
                continue
            if lines:
                lines.append("")
            lines.extend(_format_method(diag))
    if not lines:
        lines.append("no repro_diag_* metrics found (run the suite with "
                     "--trace-out and diagnostics enabled)")
    return "\n".join(lines)


def _format_method(diag: MethodDiag) -> List[str]:
    lines = [
        f"{diag.benchmark} / {diag.method}: {diag.n_clusters} phase(s) over "
        f"{diag.n_intervals} interval(s), "
        f"coverage discarded {diag.coverage_discarded:.2%}, "
        f"re-sample threshold {diag.resample_threshold}",
    ]
    total = diag.total_error
    if total:
        lines.append(
            "total signed deviation: "
            f"CPI {_pct(total.get('cpi', 0.0))}, "
            f"L1 {_pct(total.get('l1', 0.0))}, "
            f"L2 {_pct(total.get('l2', 0.0))}"
        )
    header = (
        f"{'phase':>5}  {'weight':>7}  {'size':>9}  {'members':>7}  "
        f"{'rep/mean':>9}  {'silh':>6}  {'dCPI':>9}  {'dL1':>9}  "
        f"{'dL2':>9}  flags"
    )
    lines.append(header)
    for row in diag.sorted_phases():
        ratio = (
            row.rep_distance / row.mean_distance
            if row.mean_distance > 0 else 0.0
        )
        lines.append(
            f"{row.phase:>5}  {row.weight:>7.4f}  {row.point_size:>9}  "
            f"{row.n_members:>7}  {ratio:>9.2f}  {row.silhouette:>6.2f}  "
            f"{_pct(row.contributions.get('cpi', 0.0)):>9}  "
            f"{_pct(row.contributions.get('l1', 0.0)):>9}  "
            f"{_pct(row.contributions.get('l2', 0.0)):>9}  "
            f"{' '.join(row.flags())}"
        )
    if diag.residual:
        lines.append(
            f"{'resid':>5}  {'':>7}  {'':>9}  {'':>7}  {'':>9}  {'':>6}  "
            f"{_pct(diag.residual.get('cpi', 0.0)):>9}  "
            f"{_pct(diag.residual.get('l1', 0.0)):>9}  "
            f"{_pct(diag.residual.get('l2', 0.0)):>9}  "
            f"coverage/aggregation"
        )
    return lines
