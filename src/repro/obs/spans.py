"""Hierarchical span tracing.

A *span* is one timed operation — a whole suite, one pipeline run, one
pipeline stage, one parallel drive — with a name, key/value attributes,
a parent, and children.  Spans form trees; a :class:`Tracer` collects
the roots.  Durations come from :func:`time.perf_counter` (monotonic),
so they are immune to wall-clock steps; each span also records a
``time.time()`` start timestamp so trees from different processes can be
ordered coarsely in reports.

The tracer is deliberately tiny and dependency-free:

* ``with tracer.span("baseline", benchmark="gzip"):`` times a block and
  nests it under the innermost active ``span()`` context;
* :meth:`Tracer.start_span` opens a span *without* entering a context —
  callers that cannot use ``with`` (the timing shim's run records) end
  it explicitly via :meth:`Span.end`;
* :func:`traced` wraps a function in a span;
* span trees serialise to plain dicts (:meth:`Span.to_dict`) and back,
  which is how parallel workers ship their trees to the suite driver —
  :meth:`Tracer.merge_payload` re-attaches them under the driver's
  current span, so a merged trace reads ``suite -> run -> stages`` no
  matter which process executed the run.

An exception escaping a span context marks the span ``status="error"``
with the exception class recorded, and still propagates.

Spans also carry a stable identity — ``span_id`` / ``parent_id`` /
``trace_id`` — assigned by the tracer from a deterministic per-tracer
counter (``origin:serial``), never from randomness, so two runs of the
same suite produce the same ids.  The driver hands workers a *trace
context* (:meth:`Tracer.export_context`) inside the task payload; the
worker adopts it (:meth:`Tracer.adopt_context`) so the root spans it
ships back already point at the owning ``suite``/``run`` span, stitching
one coherent cross-process trace per campaign.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Sentinel meaning "parent is the innermost active span context".
CURRENT = object()


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name", "attributes", "children", "started_at", "duration",
        "status", "error", "span_id", "parent_id", "trace_id", "_began",
    )

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        #: Wall-clock start (``time.time()``), for cross-process ordering.
        self.started_at = time.time()
        #: Seconds from start to :meth:`end`; None while the span is open.
        self.duration: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        #: Stable identity, assigned by the owning :class:`Tracer`; a
        #: bare ``Span()`` (e.g. rebuilt from a legacy dump) has none.
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self._began = time.perf_counter()

    # ------------------------------------------------------------------
    @property
    def ended(self) -> bool:
        """Has :meth:`end` been called?"""
        return self.duration is not None

    def end(self, error: Optional[BaseException] = None) -> None:
        """Close the span (idempotent); *error* marks it failed."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._began
        if error is not None:
            self.status = "error"
            self.error = type(error).__name__

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    @property
    def elapsed(self) -> float:
        """Seconds booked so far: the duration, or time-since-start."""
        if self.duration is not None:
            return self.duration
        return time.perf_counter() - self._began

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.ended else "open"
        return f"Span({self.name!r}, {state}, {len(self.children)} children)"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable nested form (children recurse)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "started_at": self.started_at,
            "duration": self.duration,
            "status": self.status,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "Span":
        """Rebuild a (closed) span tree from :meth:`to_dict` output."""
        span = Span(payload["name"], payload.get("attributes"))
        span.started_at = payload.get("started_at", 0.0)
        span.duration = payload.get("duration")
        span.status = payload.get("status", "ok")
        span.error = payload.get("error")
        span.span_id = payload.get("span_id")
        span.parent_id = payload.get("parent_id")
        span.trace_id = payload.get("trace_id")
        span.children = [
            Span.from_dict(c) for c in payload.get("children", ())
        ]
        return span


class Tracer:
    """Collector of span trees for one process.

    Thread-compatibility note: the active-context stack is plain instance
    state.  The suite drivers are single-threaded per process (parallelism
    is process-based), which is exactly the regime this supports.
    """

    def __init__(
        self, origin: str = "main", trace_id: Optional[str] = None
    ) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        #: Prefix of every span id this tracer assigns; unique per
        #: process role (the driver is ``main``, workers derive theirs
        #: from the task identity) so merged trees never collide.
        self.origin = origin
        self.trace_id = trace_id if trace_id is not None else f"T-{origin}"
        self._serial = 0
        #: ``parent_id`` stamped on new roots — the driver-side span a
        #: worker's trees will re-attach under (from adopt_context).
        self._context_parent: Optional[str] = None

    # ------------------------------------------------------------------
    def current(self) -> Optional[Span]:
        """The innermost active ``span()`` context, if any."""
        return self._stack[-1] if self._stack else None

    def adopt_context(
        self,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        origin: Optional[str] = None,
    ) -> None:
        """Join a distributed trace started elsewhere.

        Workers call this with the context the driver put in the task
        payload: subsequent spans carry the campaign's ``trace_id``, ids
        are minted under *origin*, and new roots point their
        ``parent_id`` at the driver-side owning span.
        """
        if origin is not None:
            self.origin = origin
        if trace_id is not None:
            self.trace_id = trace_id
        self._context_parent = parent_id

    def export_context(self, origin: str) -> dict:
        """The trace context to embed in a task payload for a worker
        whose tracer should mint ids under *origin*."""
        parent = self.current()
        return {
            "trace_id": self.trace_id,
            "parent_id": parent.span_id if parent is not None else None,
            "origin": origin,
        }

    def start_span(
        self, name: str, parent: Any = CURRENT, **attributes: Any
    ) -> Span:
        """Open a span without entering a context (end it explicitly).

        *parent* defaults to the innermost active context; pass ``None``
        to force a root, or an explicit :class:`Span` to attach elsewhere
        (the timing shim parents stage spans under their run span this
        way).
        """
        if parent is CURRENT:
            parent = self.current()
        span = Span(name, attributes)
        self._serial += 1
        span.span_id = f"{self.origin}:{self._serial}"
        span.trace_id = self.trace_id
        if parent is not None:
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            span.parent_id = self._context_parent
            self.roots.append(span)
        return span

    @contextmanager
    def span(
        self, name: str, parent: Any = CURRENT, **attributes: Any
    ) -> Iterator[Span]:
        """Context manager: time the block as a span, nest children."""
        span = self.start_span(name, parent=parent, **attributes)
        self._stack.append(span)
        try:
            yield span
        except BaseException as error:
            span.end(error=error)
            raise
        else:
            span.end()
        finally:
            self._stack.pop()

    # ------------------------------------------------------------------
    def spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across roots."""
        for root in self.roots:
            yield from root.walk()

    def to_payload(self) -> List[dict]:
        """Serialise all root trees (worker -> driver)."""
        return [root.to_dict() for root in self.roots]

    def merge_payload(
        self, payload: Optional[List[dict]], parent: Any = CURRENT
    ) -> None:
        """Attach serialised root trees under *parent* (default: the
        innermost active span, or as new roots outside any context)."""
        if not payload:
            return
        if parent is CURRENT:
            parent = self.current()
        for item in payload:
            span = Span.from_dict(item)
            if parent is not None:
                # Stitch id-less legacy trees under their new parent;
                # trees that travelled with a trace context already
                # point at the right driver-side span.
                if span.parent_id is None:
                    span.parent_id = parent.span_id
                if span.trace_id is None:
                    span.trace_id = parent.trace_id
                parent.children.append(span)
            else:
                self.roots.append(span)


def traced(
    tracer_of: Callable[..., Tracer], name: Optional[str] = None
) -> Callable:
    """Decorator: run the wrapped method inside a span.

    *tracer_of* maps the call's ``self`` to its :class:`Tracer` (methods
    carry their tracer on the instance; free functions can close over
    one)::

        @traced(lambda self: self.obs.tracer, "rebalance")
        def rebalance(self): ...
    """

    def decorate(function: Callable) -> Callable:
        span_name = name if name is not None else function.__name__

        @functools.wraps(function)
        def wrapper(self, *args: Any, **kwargs: Any):
            with tracer_of(self).span(span_name):
                return function(self, *args, **kwargs)

        return wrapper

    return decorate
