"""Section III-B motivation statistics: coarse phase counts and positions.

Paper facts: with coarse-grained (outer-loop iteration) phase analysis, the
average number of phases across SPEC2000 is three — only gzip (4), equake
(6) and fma3d (5) exceed it — and the position of the last coarse
simulation point averages ~17%, with only gcc (86%), art (47%) and bzip2
(36%) above 30%.
"""

from repro.harness import format_table, motivation_experiment


def test_motivation_phase_statistics(benchmark, runner, save_output):
    rows = benchmark(motivation_experiment, runner, 10)
    by_name = {row.benchmark: row for row in rows}

    rendered = [
        [row.benchmark, row.phase_count,
         f"{100 * row.last_point_position:.1f}%", row.n_intervals]
        for row in rows
    ]
    average_phases = sum(r.phase_count for r in rows) / len(rows)
    average_position = sum(r.last_point_position for r in rows) / len(rows)
    rendered.append(["AVERAGE", f"{average_phases:.1f}",
                     f"{100 * average_position:.1f}%", ""])
    save_output(
        "motivation_stats",
        format_table(
            ["benchmark", "coarse phases", "last point position",
             "iterations"],
            rendered,
            title="Section III-B: coarse phase statistics "
                  "(paper: avg 3 phases / 17% position; gzip 4, equake 6, "
                  "fma3d 5; gcc 86%, art 47%, bzip2 36%)",
        ),
    )

    # phase-count facts
    assert by_name["gzip"].phase_count >= 4
    assert by_name["equake"].phase_count >= 5
    assert by_name["fma3d"].phase_count >= 4
    assert 2.0 <= average_phases <= 5.0

    # last-point-position facts
    assert by_name["gcc"].last_point_position > 0.7
    assert 0.35 < by_name["art"].last_point_position < 0.6
    assert 0.25 < by_name["bzip2"].last_point_position < 0.45
    late = [r.benchmark for r in rows if r.last_point_position > 0.30]
    assert set(late) <= {"gcc", "art", "bzip2"}
    assert 0.05 < average_position < 0.30
