"""Table III: simulation-point statistics per method.

Paper result (geometric means): COASTS 444M mean interval / 1.6 points /
0.37% detail / 2.21% functional; 10M SimPoint 10M / 20.1 / 0.09% / 93.76%;
multi-level 16M / 7.3 / 0.05% / 5.06%.  The shape to hold: COASTS has
few, huge, early points (functional collapses, detail grows); multi-level
keeps the functional win while shrinking detail below COASTS.
"""

from repro.config import SCALE
from repro.harness import format_table, statistics_experiment


def test_table3_point_statistics(benchmark, runner, save_output):
    rows = benchmark(statistics_experiment, runner)
    by_method = {row.method: row for row in rows}

    rendered = []
    for row in rows:
        rendered.append([
            row.method,
            f"{row.mean_interval_size / SCALE:.1f}M",
            f"{row.mean_sample_number:.1f}",
            f"{100 * row.mean_detail_fraction:.3f}%",
            f"{100 * row.mean_functional_fraction:.2f}%",
        ])
    save_output(
        "table3_statistics",
        format_table(
            ["method", "mean interval (paper-M)", "mean samples",
             "detail %", "functional %"],
            rendered,
            title="Table III: simulation point statistics "
                  "(paper: COASTS 444M/1.6/0.37%/2.21%, "
                  "SimPoint 10M/20.1/0.09%/93.76%, "
                  "multilevel 16M/7.3/0.05%/5.06%)",
        ),
    )

    coasts = by_method["coasts"]
    simpoint = by_method["simpoint"]
    multilevel = by_method["multilevel"]

    # SimPoint: fixed 10M intervals, ~20 points, functional-dominated.
    assert abs(simpoint.mean_interval_size - 10 * SCALE) < 1.0
    assert 10 <= simpoint.mean_sample_number <= 35
    assert simpoint.mean_functional_fraction > 0.7
    assert simpoint.mean_detail_fraction < 0.005

    # COASTS: far coarser intervals, very few points, tiny functional.
    assert coasts.mean_interval_size > 30 * simpoint.mean_interval_size
    assert coasts.mean_sample_number < 4
    assert coasts.mean_functional_fraction < 0.15
    assert coasts.mean_detail_fraction > simpoint.mean_detail_fraction

    # Multi-level: detail below COASTS, functional stays collapsed.
    assert multilevel.mean_detail_fraction < 0.5 * coasts.mean_detail_fraction
    assert multilevel.mean_functional_fraction < 0.15
    assert multilevel.mean_sample_number > coasts.mean_sample_number
