"""Ablation: the multi-level re-sampling threshold.

The paper sets it to fine-interval x Kmax = 10M x 30 = 300M: coarse points
larger than that are re-sampled.  Sweeping it shows the trade-off the
default balances: tiny thresholds re-sample everything (least detail, most
second-level error), huge thresholds degenerate to plain COASTS.
"""

from repro.config import RESAMPLE_THRESHOLD, SCALE
from repro.harness import ablation_resample_threshold, format_table

THRESHOLDS = (
    10 * SCALE,            # re-sample everything above one fine interval
    100 * SCALE,
    RESAMPLE_THRESHOLD,    # paper default (300M)
    2000 * SCALE,          # effectively never re-sample
)


def test_ablation_resample_threshold(benchmark, runner, save_output):
    def sweep():
        return ablation_resample_threshold(
            runner, "swim", thresholds=THRESHOLDS
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output(
        "ablation_threshold",
        format_table(
            ["setting", "leaves", "detail %", "CPI deviation"],
            [[r.setting, int(r.values["leaves"]),
              f"{100 * r.values['detail_fraction']:.3f}%",
              f"{100 * r.values['cpi_deviation']:.2f}%"] for r in rows],
            title="Ablation: multi-level re-sampling threshold on swim "
                  "(paper default: 10M x 30 = 300M)",
        ),
    )

    detail = [r.values["detail_fraction"] for r in rows]
    leaves = [r.values["leaves"] for r in rows]
    # smaller thresholds re-sample more coarse points -> more leaves,
    # monotonically less detail as the threshold shrinks
    assert leaves[0] >= leaves[-1]
    assert detail[0] <= detail[-1]
    # the degenerate huge threshold equals plain COASTS (few leaves)
    assert leaves[-1] <= 3
