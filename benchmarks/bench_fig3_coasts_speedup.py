"""Figure 3: per-benchmark speedup of COASTS over 10M SimPoint.

Paper result: geometric-mean speedup 6.78x across SPEC2000, with gcc the
pathological outlier (slower than SimPoint).  Expected shape here: most
benchmarks several-fold faster, gcc far below 1x, art/bzip2 modest.
"""

from repro.harness import format_table, speedup_experiment


def test_fig3_coasts_speedup(benchmark, runner, save_output):
    series = benchmark(speedup_experiment, runner, "coasts")

    rows = [[name, value] for name, value in series.speedups.items()]
    rows.append(["GEOMEAN", series.geomean])
    save_output(
        "fig3_coasts_speedup",
        format_table(
            ["benchmark", "speedup over SimPoint"], rows,
            title="Figure 3: COASTS speedup over 10M SimPoint "
                  "(paper geomean: 6.78x)",
        ),
    )

    # shape assertions (see EXPERIMENTS.md)
    assert 2.0 < series.geomean < 12.0
    assert series.speedups["gcc"] < 1.0          # Section V-A pathology
    assert series.speedups["art"] < 3.0          # late phase limits gains
    assert series.speedups["bzip2"] < 4.0
    fast = [v for n, v in series.speedups.items()
            if n not in ("gcc", "art", "bzip2")]
    assert min(fast) > 2.0
