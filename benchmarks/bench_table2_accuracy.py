"""Table II: CPI / L1 / L2 deviation of each method under both configs.

Paper result (config A): CPI average deviations COASTS 0.93%, SimPoint
1.43%, multi-level 1.88% — all small, multi-level slightly worse (two-level
sampling accumulates error); hit-rate deviations tiny on average with
isolated large worst cases (SimPoint L2 worst 23.32%).  Config B behaves
comparably (the framework is not architecture-sensitive).
"""

from repro.harness import accuracy_experiment, format_table
from repro.harness.runner import BOTH_CONFIGS

_LABELS = {"cpi": "CPI", "l1_hit_rate": "L1 hit", "l2_hit_rate": "L2 hit"}


def test_table2_deviations(benchmark, runner, save_output):
    table = benchmark(accuracy_experiment, runner, BOTH_CONFIGS)

    rows = []
    for metric in table.METRICS:
        for method in table.methods:
            row = [_LABELS[metric], method]
            for config_name in table.config_names:
                cell = table.cells[(metric, method, config_name)]
                row.append(f"{100 * cell.average:.2f}%")
                row.append(f"{100 * cell.worst:.2f}% ({cell.worst_benchmark})")
            rows.append(row)
    save_output(
        "table2_accuracy",
        format_table(
            ["metric", "method", "A avg", "A worst", "B avg", "B worst"],
            rows,
            title="Table II: deviation vs full detailed run "
                  "(paper: CPI avg 0.93-2.35%, worst 4.8-17.9%)",
        ),
    )

    for config_name in table.config_names:
        for method in table.methods:
            cpi = table.cells[("cpi", method, config_name)]
            # averages stay in the small-deviation regime
            assert cpi.average < 0.12, (method, config_name)
            assert cpi.worst < 0.45, (method, config_name)
            for metric in ("l1_hit_rate", "l2_hit_rate"):
                cell = table.cells[(metric, method, config_name)]
                assert cell.average < 0.06, (metric, method, config_name)

    # multi-level accumulates a little more error than single-level COASTS
    a = table.config_names[0]
    assert table.cells[("cpi", "multilevel", a)].average >= \
        0.8 * table.cells[("cpi", "coasts", a)].average
