"""Throughput micro-benchmarks of the core components.

Not a paper table — these track the performance of the substrate pieces the
experiments lean on (trace unrolling, BBV profiling, detailed simulation,
clustering), so regressions show up in `pytest benchmarks/ --benchmark-only`
next to the experiment regenerations.
"""

import numpy as np
import pytest

from repro.analysis import cluster_with_bic
from repro.config import CONFIG_A, DEFAULT_SAMPLING
from repro.detailed import TimingSimulator
from repro.engine import FunctionalSimulator, build_trace
from repro.workloads import load_workload


@pytest.fixture(scope="module")
def gzip_trace():
    return build_trace(load_workload("gzip"))


def test_perf_trace_unrolling(benchmark):
    workload = load_workload("gzip")
    trace = benchmark(build_trace, workload)
    assert trace.total_instructions > 10_000_000


def test_perf_fine_profile(benchmark, gzip_trace):
    functional = FunctionalSimulator(gzip_trace)
    profile = benchmark(
        functional.profile_fixed_intervals, DEFAULT_SAMPLING.fine_interval_size
    )
    assert profile.n_intervals > 1000


def test_perf_coarse_profile(benchmark, gzip_trace):
    functional = FunctionalSimulator(gzip_trace)
    profile = benchmark(functional.profile_coarse_intervals, 4)
    assert profile.n_instances == gzip_trace.spec.n_outer_iterations


def test_perf_full_detailed_simulation(benchmark, gzip_trace):
    simulator = TimingSimulator(gzip_trace, CONFIG_A)
    result = benchmark.pedantic(simulator.simulate_full, rounds=1,
                                iterations=1)
    assert result.instructions == gzip_trace.total_instructions


def test_perf_point_simulation(benchmark, gzip_trace):
    simulator = TimingSimulator(gzip_trace, CONFIG_A)
    total = gzip_trace.total_instructions

    def simulate():
        return simulator.simulate_point(total // 2, total // 2 + 2500,
                                        warmup=7500)

    result = benchmark(simulate)
    assert result.instructions >= 2500


def test_perf_kmeans_bic(benchmark):
    rng = np.random.default_rng(0)
    data = np.vstack([
        rng.normal(i * 3.0, 0.3, size=(800, 15)) for i in range(4)
    ])

    def cluster():
        return cluster_with_bic(data, kmax=10, seed=0, n_seeds=2)

    result, _ = benchmark(cluster)
    assert result.k >= 2
