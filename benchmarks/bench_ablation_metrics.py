"""Ablation: phase-classification metrics (paper Section II).

The paper chooses BBVs citing two comparisons: BBVs beat working-set
signatures (Dhodapkar & Smith, MICRO 2003), and loop frequency vectors
perform almost as well while often finding fewer phases (Lau et al.,
ISPASS 2004).  This bench runs fixed-length SimPoint with each metric on
two benchmarks and checks the cited ordering.
"""

from repro.harness import ablation_metric, format_table


def test_ablation_phase_metrics(benchmark, runner, save_output):
    def sweep():
        return {
            name: ablation_metric(runner, name)
            for name in ("gzip", "crafty")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    blocks = []
    for name, rows in results.items():
        blocks.append(format_table(
            ["metric", "points", "CPI deviation", "L2 deviation"],
            [[r.setting, int(r.values["points"]),
              f"{100 * r.values['cpi_deviation']:.2f}%",
              f"{100 * r.values['l2_deviation']:.2f}%"] for r in rows],
            title=f"Phase metrics on {name}",
        ))
    save_output("ablation_metrics", "\n\n".join(blocks))

    for name, rows in results.items():
        by_metric = {r.setting: r.values for r in rows}
        # every metric yields a usable clustering
        for values in by_metric.values():
            assert 1 <= values["points"] <= 35
            assert values["cpi_deviation"] < 0.5
        # Dhodapkar & Smith: BBVs at least roughly match working sets
        assert by_metric["bbv"]["cpi_deviation"] <= \
            by_metric["working_set"]["cpi_deviation"] + 0.05
        # Lau et al.: loop frequency vectors are competitive with BBVs
        assert by_metric["loop_frequency"]["cpi_deviation"] <= \
            by_metric["bbv"]["cpi_deviation"] + 0.10
