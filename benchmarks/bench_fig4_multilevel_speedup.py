"""Figure 4: per-benchmark speedup of multi-level sampling over SimPoint.

Paper result: geometric-mean speedup 14.04x; even gcc reaches ~97% of
SimPoint's speed (the second-level re-sampling rescues the giant coarse
point that sinks COASTS).
"""

from repro.harness import format_table, speedup_experiment


def test_fig4_multilevel_speedup(benchmark, runner, save_output):
    series = benchmark(speedup_experiment, runner, "multilevel")
    coasts = speedup_experiment(runner, "coasts")

    rows = [[name, value, coasts.speedups[name]]
            for name, value in series.speedups.items()]
    rows.append(["GEOMEAN", series.geomean, coasts.geomean])
    save_output(
        "fig4_multilevel_speedup",
        format_table(
            ["benchmark", "multilevel", "coasts"], rows,
            title="Figure 4: multi-level speedup over 10M SimPoint "
                  "(paper geomean: 14.04x vs 6.78x for COASTS)",
        ),
    )

    # shape assertions
    assert 7.0 < series.geomean < 25.0
    assert series.geomean > coasts.geomean          # second level helps
    # gcc recovers: multi-level is at least ~1x SimPoint (paper: 0.97x)
    assert series.speedups["gcc"] > 0.8
    assert series.speedups["gcc"] > 10 * coasts.speedups["gcc"]
    # multi-level never loses badly to COASTS anywhere
    for name, value in series.speedups.items():
        assert value > 0.8 * coasts.speedups[name]
