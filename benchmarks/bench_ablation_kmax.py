"""Ablation: COASTS' Kmax (the paper fixes it at 3).

Sweeps the maximum coarse cluster count on gzip (4 true regimes) and
equake (6 true regimes): small Kmax under-segments (cheaper, less detail),
large Kmax discovers the natural phase count and then saturates — the
paper's default of 3 sits at the knee for the average benchmark.
"""

from repro.harness import ablation_coarse_kmax, format_table


def _render(name, rows):
    return format_table(
        ["setting", "phases", "last position", "detail %", "CPI deviation"],
        [[r.setting, int(r.values["phases"]),
          f"{100 * r.values['last_position']:.1f}%",
          f"{100 * r.values['detail_fraction']:.3f}%",
          f"{100 * r.values['cpi_deviation']:.2f}%"] for r in rows],
        title=f"Ablation: COASTS Kmax sweep on {name}",
    )


def test_ablation_coarse_kmax(benchmark, runner, save_output):
    def sweep():
        return {
            name: ablation_coarse_kmax(runner, name, kmaxes=(1, 2, 3, 4, 6, 8))
            for name in ("gzip", "equake")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n\n".join(_render(name, rows) for name, rows in results.items())
    save_output("ablation_kmax", text)

    for name, true_phases in (("gzip", 4), ("equake", 6)):
        rows = results[name]
        phases = {r.setting: r.values["phases"] for r in rows}
        detail = {r.setting: r.values["detail_fraction"] for r in rows}
        # phase count is monotone in Kmax and saturates at the true count
        assert phases["kmax=1"] == 1
        assert phases["kmax=8"] <= true_phases + 1
        assert phases["kmax=8"] >= true_phases - 1
        # more phases -> more detail-simulated instructions
        assert detail["kmax=8"] >= detail["kmax=1"]
