"""Table I: the two machine configurations.

Regenerates the configuration table and benchmarks config construction +
validation (the cheapest sanity bench in the set).
"""

from repro.config import CONFIG_A, CONFIG_B, make_config_a, make_config_b
from repro.harness import format_table


def _cache_str(cache) -> str:
    assoc = "direct" if cache.assoc == 1 else f"{cache.assoc}-way"
    return (f"{cache.size // 1024}K {assoc}, {cache.line_size}B blocks, "
            f"{cache.latency} cycle")


def _render() -> str:
    rows = []
    for field, extract in (
        ("Issue width", lambda c: c.issue_width),
        ("ROB/LSQ", lambda c: f"{c.rob_entries}/{c.lsq_entries}"),
        ("Int ALUs", lambda c: c.functional_units.int_alu),
        ("Load/store units", lambda c: c.functional_units.load_store),
        ("FP adders", lambda c: c.functional_units.fp_add),
        ("Int mult/div", lambda c: c.functional_units.int_mult_div),
        ("FP mult/div", lambda c: c.functional_units.fp_mult_div),
        ("I-cache", lambda c: _cache_str(c.icache)),
        ("D-cache", lambda c: _cache_str(c.dcache)),
        ("L2 cache", lambda c: _cache_str(c.l2cache)),
        ("Branch predictor", lambda c: f"{c.branch.kind}, "
                                       f"{c.branch.bht_entries} BHT"),
        ("Memory latency", lambda c: f"{c.mem_latency_first}, "
                                     f"{c.mem_latency_next} cycles"),
    ):
        rows.append([field, extract(CONFIG_A), extract(CONFIG_B)])
    return format_table(
        ["Parameter", "Config A (base)", "Config B (sensitivity)"], rows,
        title="Table I: machine configurations",
    )


def test_table1_configurations(benchmark, save_output):
    def build():
        return make_config_a(), make_config_b()

    a, b = benchmark(build)
    assert a == CONFIG_A and b == CONFIG_B
    save_output("table1_configs", _render())
