"""Ablation: BBV random-projection dimensionality (paper: 15).

The projection trades clustering cost for fidelity; the paper (following
SimPoint) uses 15 dimensions.  Sweeping 2..60 shows accuracy saturating
around the default — very low dimensions conflate phases.
"""

from repro.harness import ablation_projection_dim, format_table

DIMS = (2, 5, 15, 30, 60)


def test_ablation_projection_dim(benchmark, runner, save_output):
    def sweep():
        return ablation_projection_dim(runner, "equake", dims=DIMS)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output(
        "ablation_projection",
        format_table(
            ["setting", "points", "CPI deviation", "L2 deviation"],
            [[r.setting, int(r.values["points"]),
              f"{100 * r.values['cpi_deviation']:.2f}%",
              f"{100 * r.values['l2_deviation']:.2f}%"] for r in rows],
            title="Ablation: projection dimension sweep on equake "
                  "(paper/SimPoint default: 15)",
        ),
    )

    by_dim = {r.setting: r.values for r in rows}
    # sane clustering at every dimension
    for r in rows:
        assert 1 <= r.values["points"] <= 30
    # the default is not materially worse than the largest projection
    assert by_dim["dim=15"]["cpi_deviation"] <= \
        by_dim["dim=60"]["cpi_deviation"] + 0.10
