"""Figure 1: how granularity shapes the BBV curve and point selection.

Paper figure: for lucas, the first PCA component of per-interval BBVs is
chaotic at 10M fixed intervals (many points, some near the end) and smooth
at coarse (outer-loop iteration) intervals (two early points).
"""

import numpy as np

from repro.harness import format_table, granularity_experiment


def test_fig1_lucas_granularity(benchmark, runner, save_output):
    series = benchmark(granularity_experiment, runner, "lucas")

    fine_last = max(series.fine_selected) / len(series.fine_values)
    coarse_last = max(series.coarse_selected) / len(series.coarse_values)
    text = format_table(
        ["curve", "intervals", "selected points", "roughness",
         "last point position"],
        [
            ["fine (10M)", len(series.fine_values),
             len(series.fine_selected), series.fine_variation,
             f"{100 * fine_last:.1f}%"],
            ["coarse (COASTS)", len(series.coarse_values),
             len(series.coarse_selected), series.coarse_variation,
             f"{100 * coarse_last:.1f}%"],
        ],
        title="Figure 1 (lucas): fine vs coarse first-PCA-component curves",
    )
    # Down-sampled curve data for plotting/inspection.
    step = max(1, len(series.fine_values) // 60)
    sampled = np.round(series.fine_values[::step], 3).tolist()
    coarse = np.round(series.coarse_values[: 60], 3).tolist()
    text += (
        f"\nfine curve (every {step}th interval): {sampled}"
        f"\ncoarse curve (first 60 instances): {coarse}"
    )
    save_output("fig1_granularity", text)

    # Figure 1's claims:
    assert series.fine_variation > 2 * series.coarse_variation
    assert len(series.fine_selected) > 3 * len(series.coarse_selected)
    assert coarse_last < 0.2            # coarse points sit early
    assert fine_last > coarse_last      # fine selection reaches further out
