"""Shared fixtures for the experiment benches.

Each bench regenerates one of the paper's tables or figures at full scale.
Results are written to ``benchmarks/out/*.txt`` (and printed) so they
survive pytest's output capture; heavy artefacts (baselines, point
simulations) are disk-cached in ``.repro_cache``, so the first invocation
pays the compute (~10 minutes for the whole set) and subsequent ones are
fast.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import ExperimentRunner, ResultCache

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner():
    """Full-scale runner with the paper-default sampling configuration.

    ``REPRO_JOBS`` fans per-benchmark pipelines out over worker processes
    (0 = one per CPU); every bench that drives a whole suite benefits.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    return ExperimentRunner(cache=ResultCache(), jobs=jobs)


@pytest.fixture(scope="session")
def save_output():
    """Persist a bench's regenerated table under benchmarks/out/."""

    def save(name: str, text: str) -> None:
        OUT_DIR.mkdir(parents=True, exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save
