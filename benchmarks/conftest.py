"""Shared fixtures for the experiment benches.

Each bench regenerates one of the paper's tables or figures at full scale.
Results are written to ``benchmarks/out/*.txt`` (and printed) so they
survive pytest's output capture; heavy artefacts (baselines, point
simulations) are disk-cached in ``.repro_cache``, so the first invocation
pays the compute (~10 minutes for the whole set) and subsequent ones are
fast.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness import ExperimentRunner, ResultCache

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def runner():
    """Full-scale runner with the paper-default sampling configuration."""
    return ExperimentRunner(cache=ResultCache())


@pytest.fixture(scope="session")
def save_output():
    """Persist a bench's regenerated table under benchmarks/out/."""

    def save(name: str, text: str) -> None:
        OUT_DIR.mkdir(parents=True, exist_ok=True)
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save
