"""Ablation: fixed SimPoint interval size (Section III's granularity study).

The paper's motivation: finer intervals expose more behaviour changes, so
more simulation points are selected and some land near the program's end,
inflating the functional fast-forward.  Sweeping the interval size from
4M to 100M (paper units) on gzip shows points shrinking and the last-point
position staying stubbornly late — granularity alone cannot fix the
functional-time problem, which is why COASTS changes the interval *shape*
instead.
"""

from repro.config import SCALE
from repro.harness import ablation_fine_interval, format_table

#: Paper-unit interval sizes to sweep (4M .. 100M).
SIZES = tuple(int(m * SCALE) for m in (4, 10, 40, 100))


def test_ablation_interval_size(benchmark, runner, save_output):
    def sweep():
        return ablation_fine_interval(runner, "gzip", sizes=SIZES)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_output(
        "ablation_interval",
        format_table(
            ["setting", "points", "last position", "detail %",
             "functional %", "CPI deviation"],
            [[r.setting, int(r.values["points"]),
              f"{100 * r.values['last_position']:.1f}%",
              f"{100 * r.values['detail_fraction']:.3f}%",
              f"{100 * r.values['functional_fraction']:.1f}%",
              f"{100 * r.values['cpi_deviation']:.2f}%"] for r in rows],
            title="Ablation: SimPoint interval-size sweep on gzip "
                  "(paper sections I/III)",
        ),
    )

    by_size = {r.setting: r.values for r in rows}
    smallest = by_size[f"interval={SIZES[0]}"]
    largest = by_size[f"interval={SIZES[-1]}"]
    # finer granularity selects more points...
    assert smallest["points"] >= largest["points"]
    # ...but the functional fraction stays high at every granularity
    for r in rows:
        assert r.values["functional_fraction"] > 0.5
    # detail fraction grows with the interval size
    assert largest["detail_fraction"] > smallest["detail_fraction"]
