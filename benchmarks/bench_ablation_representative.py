"""Ablation: earliest-instance vs centroid-nearest representatives.

COASTS picks the *earliest* instance of each coarse phase (the paper's
choice) rather than SimPoint's centroid-nearest pick.  This bench
quantifies DESIGN.md decision 4: earliest instances slash the position of
the last simulation point (and with it the functional fast-forward) at a
bounded accuracy cost.
"""

from repro.harness import ablation_representative_policy, format_table


def test_ablation_representative_policy(benchmark, runner, save_output):
    def sweep():
        return {
            name: ablation_representative_policy(runner, name)
            for name in ("gzip", "twolf", "mesa")
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    blocks = []
    for name, rows in results.items():
        blocks.append(format_table(
            ["policy", "last position", "functional %", "CPI deviation"],
            [[r.setting, f"{100 * r.values['last_position']:.1f}%",
              f"{100 * r.values['functional_fraction']:.1f}%",
              f"{100 * r.values['cpi_deviation']:.2f}%"] for r in rows],
            title=f"Representative policy on {name}",
        ))
    save_output("ablation_representative", "\n\n".join(blocks))

    for name, rows in results.items():
        by_policy = {r.setting: r.values for r in rows}
        # the earliest-instance policy never fast-forwards more than the
        # centroid policy, and usually far less
        assert by_policy["earliest"]["functional_fraction"] <= \
            by_policy["centroid"]["functional_fraction"] + 1e-9
        # both estimate CPI within a sane band
        for values in by_policy.values():
            assert values["cpi_deviation"] < 0.5
