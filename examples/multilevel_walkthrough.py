#!/usr/bin/env python
"""Figure 2 walkthrough: how the multi-level framework selects points.

Narrates, step by step, what the framework does on one benchmark:

1. COASTS boundary collection — which cyclic structures survive the 1%
   coverage floor;
2. coarse phase classification — signatures, clusters, earliest-instance
   representatives;
3. second-level re-sampling — which coarse points exceed the threshold and
   what fine points replace them;
4. the final nested plan with composed weights.

Usage::

    python examples/multilevel_walkthrough.py [benchmark] [scale]

defaults: equake (6 coarse phases) at full (paper) scale.
"""

import sys

from repro import (
    Coasts,
    DEFAULT_SAMPLING,
    MultiLevelSampler,
    build_trace,
    load_workload,
)
from repro.engine import FunctionalSimulator


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "equake"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    workload = load_workload(benchmark, scale=scale)
    trace = build_trace(workload)
    total = trace.total_instructions
    print(f"== multi-level sampling walkthrough: {benchmark} "
          f"({total:,} instructions) ==\n")

    # --- step 1: boundary collection ---------------------------------
    coasts = Coasts(DEFAULT_SAMPLING)
    boundaries = coasts.collect_boundaries(trace)
    structures = FunctionalSimulator(trace).profile_structures()
    print("step 1 - boundary collection (top-level cyclic structures):")
    for loop in trace.program.loops.top_level:
        profile = structures[loop.loop_id]
        verdict = ("kept" if loop.loop_id in boundaries.kept_loops
                   else "discarded (< 1% coverage)")
        print(f"  loop {loop.loop_id}: coverage {profile.coverage:.2%}, "
              f"{profile.instances} instances -> {verdict}")
    print(f"  -> {boundaries.n_intervals} coarse intervals "
          f"(variable-length outer-loop iterations)\n")

    # --- step 2: coarse phase classification ---------------------------
    plan = coasts.sample(trace, benchmark=benchmark)
    print(f"step 2 - coarse clustering (Kmax = "
          f"{DEFAULT_SAMPLING.coarse_kmax}): {plan.n_clusters} phases")
    for point in plan.points:
        print(f"  phase {point.phase}: earliest instance at "
              f"[{point.start:,}, {point.end:,}) "
              f"(position {point.start / total:.1%}), "
              f"weight {point.weight:.3f}, size {point.size:,}")
    print(f"  last point ends at {plan.last_point_position:.1%} of the "
          f"program -> only {plan.functional_fraction:.1%} needs "
          "functional fast-forward\n")

    # --- step 3: second-level re-sampling ------------------------------
    threshold = DEFAULT_SAMPLING.resample_threshold
    print(f"step 3 - re-sample coarse points larger than {threshold:,} "
          f"instructions (fine interval x Kmax):")
    multilevel = MultiLevelSampler(DEFAULT_SAMPLING).sample(
        trace, coarse_plan=plan
    )
    for point in multilevel.points:
        if point.is_resampled:
            print(f"  phase {point.phase} ({point.size:,} insts > "
                  f"{threshold:,}): re-sampled into "
                  f"{len(point.children)} fine points:")
            for child in point.children:
                print(f"      [{child.start:,}, {child.end:,}) "
                      f"weight {child.weight:.4f}")
        else:
            print(f"  phase {point.phase} ({point.size:,} insts): kept "
                  "whole (below threshold)")

    # --- step 4: the resulting plan ------------------------------------
    print(f"\nstep 4 - final plan: {multilevel.describe()}")
    ratio = plan.detail_instructions / multilevel.detail_instructions
    print(f"  detailed-simulation instructions cut {ratio:.1f}x vs "
          "first-level COASTS, with the same functional fast-forward — "
          "the best of both granularities (paper Section IV).")


if __name__ == "__main__":
    main()
