#!/usr/bin/env python
"""Architecture sensitivity: are the sampling plans portable across configs?

A key property of SimPoint-style sampling (and Table II's config A vs B
comparison): simulation points are chosen from *architecture-independent*
BBV profiles, so the same plan can be simulated on any machine.  This
example builds each method's plan once, then evaluates it under both
Table I configurations, printing baselines, estimates and deviations side
by side.

Usage::

    python examples/architecture_sensitivity.py [benchmark] [scale]

defaults: mcf (memory-bound, the most config-sensitive) at full scale.
"""

import sys

from repro import (
    CONFIG_A,
    CONFIG_B,
    Coasts,
    DEFAULT_SAMPLING,
    FunctionalSimulator,
    MultiLevelSampler,
    SimPoint,
    TimingSimulator,
    build_trace,
    evaluate_plan,
    load_workload,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    trace = build_trace(load_workload(benchmark, scale=scale))
    functional = FunctionalSimulator(trace)
    profile = functional.profile_fixed_intervals(
        DEFAULT_SAMPLING.fine_interval_size
    )

    # Plans are built once, from architecture-independent profiles.
    coasts = Coasts().sample(trace)
    plans = {
        "simpoint": SimPoint().sample(profile, benchmark=benchmark),
        "coasts": coasts,
        "multilevel": MultiLevelSampler().sample(trace, coarse_plan=coasts),
    }
    print(f"== {benchmark}: one set of plans, two machines ==")
    for name, plan in plans.items():
        print(f"  {plan.describe()}")

    for config in (CONFIG_A, CONFIG_B):
        simulator = TimingSimulator(trace, config)
        baseline = simulator.simulate_full().metrics()
        print(f"\n-- {config.name}: D$ {config.dcache.size // 1024}K, "
              f"L2 {config.l2cache.size // 1024}K, "
              f"memory {config.mem_latency_first} cycles --")
        print(f"baseline: CPI {baseline.cpi:.3f}, "
              f"L1 {baseline.l1_hit_rate:.4f}, "
              f"L2 {baseline.l2_hit_rate:.4f}")
        cache = {}
        print(f"{'method':<12} {'CPI est':>8} {'CPI dev':>8} "
              f"{'L1 dev':>8} {'L2 dev':>8}")
        for name, plan in plans.items():
            evaluation = evaluate_plan(plan, simulator, baseline, cache=cache)
            deviation = evaluation.deviation
            print(f"{name:<12} {evaluation.estimate.cpi:>8.3f} "
                  f"{deviation.cpi:>8.2%} {deviation.l1_hit_rate:>8.3%} "
                  f"{deviation.l2_hit_rate:>8.3%}")

    print("\nThe deviations stay comparable across configurations — the "
          "framework is not architecture-sensitive (paper Table II).")


if __name__ == "__main__":
    main()
