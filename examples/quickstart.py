#!/usr/bin/env python
"""Quickstart: sample one benchmark with all three methods and compare.

Runs the complete pipeline on a scaled-down gzip (a few seconds):

1. generate the synthetic workload and unroll its trace;
2. profile it (fixed fine intervals + coarse outer-loop iterations);
3. build the SimPoint, COASTS and multi-level sampling plans;
4. run the full detailed baseline and the per-point simulations;
5. print estimates, deviations and modelled speedups.

Usage::

    python examples/quickstart.py [benchmark] [scale]

defaults: gzip at full (paper) scale; pass a smaller scale for a faster
smoke run (note: far below full scale, coarse points drop under the
re-sampling threshold and the multi-level plan degenerates to COASTS).
"""

import sys

from repro import (
    CONFIG_A,
    Coasts,
    DEFAULT_SAMPLING,
    FunctionalSimulator,
    MultiLevelSampler,
    SimPoint,
    TimingSimulator,
    build_trace,
    evaluate_plan,
    load_workload,
    speedup,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    print(f"== {benchmark} (scale {scale:g}) ==")
    workload = load_workload(benchmark, scale=scale)
    trace = build_trace(workload)
    print(f"program: {workload.program.n_blocks} blocks, "
          f"{trace.total_instructions:,} instructions, "
          f"{trace.spec.n_outer_iterations} outer iterations")

    # --- profiling (the paper's metrics-collection stage) ---------------
    functional = FunctionalSimulator(trace)
    fine_profile = functional.profile_fixed_intervals(
        DEFAULT_SAMPLING.fine_interval_size
    )
    print(f"profiled {fine_profile.n_intervals} fine intervals of "
          f"{fine_profile.interval_size} instructions")

    # --- sampling plans ---------------------------------------------------
    simpoint = SimPoint().sample(fine_profile, benchmark=benchmark)
    coasts = Coasts().sample(trace)
    multilevel = MultiLevelSampler().sample(trace, coarse_plan=coasts)
    for plan in (simpoint, coasts, multilevel):
        print(plan.describe())

    # --- detailed simulation -------------------------------------------
    simulator = TimingSimulator(trace, CONFIG_A)
    baseline = simulator.simulate_full().metrics()
    print(f"\nbaseline (full detailed run): CPI {baseline.cpi:.3f}, "
          f"L1 hit {baseline.l1_hit_rate:.4f}, "
          f"L2 hit {baseline.l2_hit_rate:.4f}")

    cache = {}
    print(f"\n{'method':<12} {'CPI est':>8} {'CPI dev':>8} "
          f"{'L1 dev':>8} {'L2 dev':>8} {'speedup':>8}")
    for plan in (simpoint, coasts, multilevel):
        evaluation = evaluate_plan(plan, simulator, baseline, cache=cache)
        deviation = evaluation.deviation
        print(f"{plan.method:<12} {evaluation.estimate.cpi:>8.3f} "
              f"{deviation.cpi:>8.2%} {deviation.l1_hit_rate:>8.3%} "
              f"{deviation.l2_hit_rate:>8.3%} "
              f"{speedup(plan, simpoint):>7.2f}x")

    print("\n(speedups are modelled simulation-time ratios over SimPoint; "
          "see repro.sampling.cost)")


if __name__ == "__main__":
    main()
