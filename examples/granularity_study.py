#!/usr/bin/env python
"""Figure 1 as an ASCII plot: fine vs coarse BBV curves on lucas.

The paper's motivating figure: the first principal component of the
per-interval BBVs is chaotic at fine (10M) granularity — many phases, some
simulation points near the end of the program — and smooth at coarse
(outer-loop iteration) granularity, where two early points suffice.

Usage::

    python examples/granularity_study.py [benchmark] [scale]

defaults: lucas at full (paper) scale.
"""

import sys

import numpy as np

from repro.harness import ExperimentRunner, ResultCache, granularity_experiment

#: Plot geometry.
WIDTH, HEIGHT = 100, 12


def ascii_plot(values: np.ndarray, selected, title: str) -> str:
    """Render a curve as ASCII, marking selected points with '*'."""
    n = len(values)
    columns = np.linspace(0, n - 1, WIDTH).astype(int)
    sampled = values[columns]
    low, high = float(sampled.min()), float(sampled.max())
    span = (high - low) or 1.0
    rows = ((sampled - low) / span * (HEIGHT - 1)).round().astype(int)
    selected_columns = {
        int(np.argmin(np.abs(columns - s))) for s in selected
    }
    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    for x, y in enumerate(rows):
        grid[HEIGHT - 1 - y][x] = "*" if x in selected_columns else "."
    lines = [title]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * WIDTH)
    lines.append(f" intervals: {n}, selected points: {len(selected)} "
                 f"(marked '*')")
    return "\n".join(lines)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "lucas"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0

    runner = ExperimentRunner(
        cache=ResultCache(enabled=False), workload_scale=scale
    )
    series = granularity_experiment(runner, benchmark)

    print(ascii_plot(
        series.fine_values, series.fine_selected,
        f"(a) fine-grained (10M) BBV curve of {benchmark} — "
        f"roughness {series.fine_variation:.2f}",
    ))
    print()
    print(ascii_plot(
        series.coarse_values, series.coarse_selected,
        f"(b) coarse-grained (outer-iteration) BBV curve — "
        f"roughness {series.coarse_variation:.2f}",
    ))
    print(
        f"\nFigure 1's claim: the fine curve is chaotic "
        f"({series.fine_variation:.2f} vs {series.coarse_variation:.2f}), "
        "so fine-grained sampling selects many points, some late; the "
        "coarse curve is smooth and two early points represent it."
    )


if __name__ == "__main__":
    main()
