"""Generator battery for the seeded program families.

Pins the determinism contract the registry, dispatcher workers and
result caches all lean on:

* same seed (family, index) => byte-identical spec AND trace arrays,
  across cache-cleared rebuilds (stand-in for "across processes");
* distinct indices / families => distinct programs;
* each family's axis measurably moves the property it claims to stress
  (CV floor, regime count vs Kmax, branch bias, working-set spread,
  cache hostility) relative to the hand-written suite norm.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HarnessError
from repro.workloads import families, registry
from repro.workloads.families import (
    CACHE_HOSTILE_MIN_WS,
    IRREGULAR_CV_FLOOR,
    MULTI_REGIME_WS_SPREAD,
    family_names,
    get_family,
    member_name,
    member_spec,
    parse_member_name,
    run_length_cv,
    run_lengths,
    spec_for,
)
from repro.workloads.suite import build_suite

FAMILIES = family_names()

#: The member whose trace digest the byte-identity test rebuilds twice.
PINNED_MEMBER = "fam:irregular[0]"


def _fresh_spec(family, index):
    """Build the member spec bypassing the lru cache."""
    member_spec.cache_clear()
    return member_spec(family, index)


def _trace_digest(name, scale=0.04):
    registry.clear_cache()
    trace = registry.load_trace(name, scale=scale)
    hasher = hashlib.sha256()
    for field, array in sorted(trace.arrays().items()):
        hasher.update(field.encode())
        hasher.update(np.ascontiguousarray(array, dtype=np.int64).tobytes())
    return hasher.hexdigest()


class TestNaming:
    def test_member_name_round_trip(self):
        assert member_name("irregular", 3) == "fam:irregular[3]"
        assert parse_member_name("fam:irregular[3]") == ("irregular", 3)

    @pytest.mark.parametrize("bad", [
        "irregular[3]", "fam:irregular", "fam:irregular[]",
        "fam:irregular[-1]", "fam:[3]", "gzip",
    ])
    def test_non_member_names_return_none(self, bad):
        assert parse_member_name(bad) is None

    def test_unknown_family_lists_known(self):
        with pytest.raises(HarnessError) as err:
            get_family("nope")
        for name in FAMILIES:
            assert name in str(err.value)

    @given(index=st.integers(0, 500),
           family=st.sampled_from(FAMILIES))
    @settings(max_examples=60, deadline=None)
    def test_member_name_parses_back(self, family, index):
        assert parse_member_name(member_name(family, index)) == \
            (family, index)


class TestDeterminism:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_same_seed_byte_identical_spec(self, family):
        first = repr(_fresh_spec(family, 5))
        second = repr(_fresh_spec(family, 5))
        assert first == second

    def test_same_seed_byte_identical_trace_arrays(self):
        name = "fam:input-dependent[2]"
        registry.clear_cache()
        first = registry.load_trace(name, scale=0.04).arrays()
        registry.clear_cache()
        member_spec.cache_clear()
        second = registry.load_trace(name, scale=0.04).arrays()
        assert sorted(first) == sorted(second)
        for field in first:
            assert first[field].tobytes() == second[field].tobytes(), field

    @pytest.mark.parametrize("family", FAMILIES)
    def test_distinct_indices_distinct_programs(self, family):
        reprs = {repr(member_spec(family, i)) for i in range(8)}
        assert len(reprs) == 8

    def test_distinct_families_distinct_programs(self):
        reprs = {repr(member_spec(family, 0)) for family in FAMILIES}
        assert len(reprs) == len(FAMILIES)

    def test_spec_name_matches_member_name(self):
        for family in FAMILIES:
            spec = member_spec(family, 7)
            assert spec.name == member_name(family, 7)

    def test_index_space_is_unbounded(self):
        spec = member_spec("irregular", 137)
        assert spec.name == "fam:irregular[137]"

    @given(index=st.integers(0, 64),
           family=st.sampled_from(FAMILIES))
    @settings(max_examples=30, deadline=None)
    def test_spec_for_matches_member_spec(self, family, index):
        assert spec_for(member_name(family, index)) is \
            member_spec(family, index)

    def test_spec_for_non_member_is_none(self):
        assert spec_for("gzip") is None
        assert spec_for("fam:irregular") is None

    def test_pinned_member_digest_is_stable(self):
        # Two full rebuilds must agree bit for bit; this is the
        # "byte-identity pinned" acceptance check without committing a
        # host-specific hash.
        assert _trace_digest(PINNED_MEMBER) == _trace_digest(PINNED_MEMBER)


class TestAxisProperties:
    """Each family measurably moves the property its axis names."""

    def test_irregular_cv_floor(self):
        # The typical suite schedule (cyclic/blocked) has near-uniform
        # runs; late_phase outliers make the max meaningless, so the
        # norm to beat is the median suite CV.
        suite_cv = float(np.median([
            run_length_cv(spec.schedule)
            for spec in build_suite().values()
        ]))
        for index in range(6):
            cv = run_length_cv(member_spec("irregular", index).schedule)
            assert cv >= IRREGULAR_CV_FLOOR
            assert cv > suite_cv

    def test_irregular_run_structure_preserved(self):
        # Rotation guarantees adjacent runs never merge, so the CV is
        # computed over the intended run lengths, not an accident.
        schedule = member_spec("irregular", 1).schedule
        lengths = run_lengths(schedule)
        assert sum(lengths) == len(schedule)
        assert len(lengths) >= 2

    def test_phase_heavy_exceeds_kmax(self):
        from repro.config import DEFAULT_SAMPLING
        counts = set()
        for index in range(7):
            spec = member_spec("phase-heavy", index)
            assert len(spec.regimes) >= 6 > DEFAULT_SAMPLING.coarse_kmax
            counts.add(len(spec.regimes))
        # The index drives the count: a 7-member slice sweeps 6..12.
        assert counts == set(range(6, 13))

    def test_input_dependent_branch_bias_below_suite_norm(self):
        for index in range(4):
            spec = member_spec("input-dependent", index)
            biases = [
                loop.branch_bias
                for regime in spec.regimes for loop in regime.loops
            ]
            assert max(biases) <= 0.85
            assert min(biases) >= 0.62

    def test_multi_regime_working_set_spread(self):
        for index in range(4):
            spec = member_spec("multi-regime", index)
            primary = [regime.loops[0].working_set
                       for regime in spec.regimes]
            assert max(primary) / min(primary) >= \
                MULTI_REGIME_WS_SPREAD * 0.9

    def test_cache_hostile_working_sets(self):
        modest = max(
            loop.working_set
            for spec in (member_spec("irregular", 0),)
            for regime in spec.regimes for loop in regime.loops
        )
        for index in range(4):
            spec = member_spec("cache-hostile", index)
            for regime in spec.regimes:
                for loop in regime.loops:
                    assert loop.working_set >= CACHE_HOSTILE_MIN_WS
                    assert loop.working_set > modest

    @pytest.mark.parametrize("family", FAMILIES)
    def test_members_generate_valid_workloads(self, family):
        # generate_workload re-validates the spec; building one member
        # per family proves the whole pipeline accepts them.
        workload = registry.load_workload(member_name(family, 0),
                                          scale=0.02)
        assert workload.spec.name == member_name(family, 0)
        assert len(workload.program.blocks) > 0
