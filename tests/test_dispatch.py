"""Tests for the distributed campaign dispatcher.

Covers the lease table's at-most-once bookkeeping (unit tests plus a
hypothesis property over arbitrary interleavings of expiry, steal and
late commit), the wire codec for task payloads, and the dispatched
backend end to end: a subprocess-worker suite must be byte-identical to
the serial path — clean, and under every injected dispatch fault
(``worker_exit``, ``heartbeat_drop``, ``partition``, ``stale_commit``,
plus an in-stage ``kill`` mirroring the shm worker-kill test) — and must
never leave an orphaned worker process behind.
"""

import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.config import CONFIG_A
from repro.errors import DispatchError, HarnessError
from repro.harness import (
    DispatchPool,
    ExperimentRunner,
    FaultPolicy,
    LeaseTable,
    LocalPool,
    ResultCache,
    decode_task_payload,
    encode_task_payload,
    make_pool,
)
from repro.harness.faults import FAULTS_ENV
from repro.obs import (
    DISPATCH_HEARTBEATS,
    DISPATCH_LEASES,
    DISPATCH_MISSED,
    DISPATCH_RECLAIMS,
    DISPATCH_STALE_COMMITS,
    DISPATCH_STEALS,
    MetricsRegistry,
)

from .conftest import TEST_SCALE

#: Benchmarks used by the dispatched suites (two keeps both workers busy).
SUITE_NAMES = ("gzip", "lucas")


def _runner(sampling, cache_dir, **policy_kwargs):
    policy_kwargs.setdefault("backoff_base", 0.0)
    return ExperimentRunner(
        sampling=sampling,
        cache=ResultCache(directory=cache_dir),
        workload_scale=TEST_SCALE,
        policy=FaultPolicy(**policy_kwargs),
    )


def _payload(outcome):
    return [json.dumps(run.to_dict(), sort_keys=True) for run in outcome]


def _assert_no_orphans(pool):
    """Every worker the pool ever spawned must be gone."""
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        alive = [
            pid for pid in pool.spawned_pids
            if os.path.exists(f"/proc/{pid}")
            # Zombies are reaped by Popen.wait(); a zombie here means the
            # wait just hasn't been observed yet, not a leak.
        ]
        if not alive:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned dispatch workers: {alive}")


def _dispatched(sampling, cache_dir, names=SUITE_NAMES, workers=2,
                lease_timeout=10.0, **policy_kwargs):
    runner = _runner(sampling, cache_dir, **policy_kwargs)
    pool = DispatchPool(workers=workers, lease_timeout=lease_timeout)
    outcome = runner.run_suite(CONFIG_A, names=names, pool=pool)
    _assert_no_orphans(pool)
    return runner, pool, outcome


@pytest.fixture
def serial_payload(tmp_path, test_sampling, monkeypatch):
    """Fault-free serial reference results for SUITE_NAMES."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    runner = _runner(test_sampling, tmp_path / "serial-ref")
    return _payload(runner.run_suite(CONFIG_A, names=SUITE_NAMES))


# ----------------------------------------------------------------------
# lease table
# ----------------------------------------------------------------------
class TestLeaseTable:
    def _table(self, metrics=None):
        return LeaseTable(
            lease_timeout=10.0, heartbeat_interval=2.0, metrics=metrics
        )

    def test_grant_settle_commits_once(self):
        metrics = MetricsRegistry()
        table = self._table(metrics)
        lease = table.grant(0, worker=1, now=0.0)
        assert table.active_count() == 1
        settled = table.settle(lease.lease_id, ok=True, now=1.0)
        assert settled is lease
        assert table.active_count() == 0
        # The same lease settling again is a stale commit, counted.
        assert table.settle(lease.lease_id, ok=True, now=2.0) is None
        assert metrics.value(DISPATCH_LEASES) == 1.0
        assert metrics.value(DISPATCH_STALE_COMMITS) == 1.0

    def test_committed_task_cannot_be_regranted(self):
        table = self._table()
        lease = table.grant(0, worker=1, now=0.0)
        table.settle(lease.lease_id, ok=True, now=1.0)
        with pytest.raises(DispatchError, match="already committed"):
            table.grant(0, worker=2, now=2.0)

    def test_active_task_cannot_be_double_leased(self):
        table = self._table()
        table.grant(0, worker=1, now=0.0)
        with pytest.raises(DispatchError, match="already leased"):
            table.grant(0, worker=2, now=0.0)

    def test_error_settle_frees_the_task_for_retry(self):
        table = self._table()
        lease = table.grant(0, worker=1, now=0.0)
        assert table.settle(lease.lease_id, ok=False, now=1.0) is lease
        # Not committed: the task can be granted again.
        table.grant(0, worker=1, now=2.0)

    def test_heartbeat_renews_and_sweep_expires(self):
        metrics = MetricsRegistry()
        table = self._table(metrics)
        lease = table.grant(0, worker=1, now=0.0)
        assert table.renew(lease.lease_id, now=9.0)
        assert table.sweep(now=15.0) == []  # renewed at t=9, deadline 19
        expired = table.sweep(now=20.0)
        assert [e.lease_id for e in expired] == [lease.lease_id]
        assert table.active_count() == 0
        assert metrics.value(DISPATCH_HEARTBEATS) == 1.0
        assert metrics.value(DISPATCH_RECLAIMS) == 1.0
        # 11s without contact at 2s heartbeat interval = 5 missed slots.
        assert metrics.value(DISPATCH_MISSED) == 5.0
        # The expired lease can no longer renew or commit.
        assert not table.renew(lease.lease_id, now=21.0)
        assert table.settle(lease.lease_id, ok=True, now=21.0) is None
        assert metrics.value(DISPATCH_STALE_COMMITS) == 1.0

    def test_steal_counted_only_across_workers(self):
        metrics = MetricsRegistry()
        table = self._table(metrics)
        lease = table.grant(0, worker=1, now=0.0)
        table.sweep(now=11.0)
        table.grant(0, worker=1, now=12.0)  # same worker retakes it
        assert metrics.value(DISPATCH_STEALS) == 0.0
        table.sweep(now=23.0)
        table.grant(0, worker=2, now=24.0)  # another worker steals it
        assert metrics.value(DISPATCH_STEALS) == 1.0
        assert lease.lease_id != table.active_ids()[0]

    def test_partitioned_lease_drops_messages_until_reclaimed(self):
        metrics = MetricsRegistry()
        table = self._table(metrics)
        lease = table.grant(0, worker=1, now=0.0, partitioned=True)
        assert table.is_partitioned(lease.lease_id)
        # Heartbeats and results concerning the lease vanish silently —
        # no stale-commit count, and the lease stays active.
        assert not table.renew(lease.lease_id, now=1.0)
        assert table.settle(lease.lease_id, ok=True, now=2.0) is None
        assert table.active_count() == 1
        assert metrics.value(DISPATCH_STALE_COMMITS) == 0.0
        (expired,) = table.sweep(now=11.0)
        assert expired.lease_id == lease.lease_id
        # Once reclaimed, the same result *is* a stale commit.
        assert table.settle(lease.lease_id, ok=True, now=12.0) is None
        assert metrics.value(DISPATCH_STALE_COMMITS) == 1.0

    def test_ungrant_rolls_back_without_counters(self):
        metrics = MetricsRegistry()
        table = self._table(metrics)
        lease = table.grant(0, worker=1, now=0.0)
        assert table.ungrant(lease.lease_id) is lease
        assert table.active_count() == 0
        assert metrics.value(DISPATCH_RECLAIMS) == 0.0
        table.grant(0, worker=2, now=1.0)  # re-grantable, not a steal
        assert metrics.value(DISPATCH_STEALS) == 0.0

    def test_validation(self):
        with pytest.raises(HarnessError):
            LeaseTable(lease_timeout=0.0, heartbeat_interval=1.0)
        with pytest.raises(HarnessError):
            LeaseTable(lease_timeout=1.0, heartbeat_interval=0.0)


class TestLeaseInterleavingProperty:
    """Any interleaving of expiry, steal and late commit is at-most-once."""

    @settings(deadline=None, max_examples=200)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["grant", "expire", "commit", "error", "late"]),
            st.integers(min_value=0, max_value=2),
        ),
        max_size=60,
    ))
    def test_exactly_one_journal_entry_per_run(self, actions):
        table = LeaseTable(lease_timeout=10.0, heartbeat_interval=2.0)
        now = 0.0
        next_worker = 0
        issued = {index: [] for index in range(3)}
        journal = []  # committed task indices, in commit order

        def _active_lease_of(index):
            for lease_id in table.active_ids():
                if table.get(lease_id).index == index:
                    return lease_id
            return None

        for action, index in actions:
            now += 1.0
            if action == "grant":
                try:
                    lease = table.grant(index, next_worker, now)
                except DispatchError:
                    continue  # already leased or committed
                next_worker += 1
                issued[index].append(lease.lease_id)
            elif action == "expire":
                now += 11.0
                table.sweep(now)
            elif action in ("commit", "error"):
                lease_id = _active_lease_of(index)
                if lease_id is None:
                    continue
                lease = table.settle(lease_id, ok=(action == "commit"),
                                     now=now)
                if lease is not None and action == "commit":
                    journal.append(index)
            elif action == "late":
                # A stale worker re-sends an old (reclaimed or settled)
                # lease's result: the gate must always reject it.
                for lease_id in issued[index]:
                    if table.get(lease_id) is None:
                        assert table.settle(lease_id, ok=True,
                                            now=now) is None
                        break

        for index in range(3):
            assert journal.count(index) <= 1
            if index in journal:
                with pytest.raises(DispatchError):
                    table.grant(index, 999, now + 100.0)


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
class TestTaskPayloadCodec:
    def test_json_roundtrip_rebuilds_configs(self, test_sampling, tmp_path):
        from repro.config import DEFAULT_COST_MODEL

        payload = {
            "sampling": test_sampling,
            "cost_model": DEFAULT_COST_MODEL,
            "config": CONFIG_A,
            "cache_dir": tmp_path / "cache",
            "cache_enabled": True,
            "workload_scale": TEST_SCALE,
            "methods": ("simpoint", "coasts"),
            "diagnostics": True,
            "benchmark": "gzip",
        }
        wire = json.loads(json.dumps(encode_task_payload(payload)))
        decoded = decode_task_payload(wire)
        assert decoded["sampling"] == test_sampling
        assert decoded["cost_model"] == DEFAULT_COST_MODEL
        assert decoded["config"] == CONFIG_A
        assert decoded["cache_dir"] == tmp_path / "cache"
        assert decoded["methods"] == ("simpoint", "coasts")
        assert decoded["benchmark"] == "gzip"


# ----------------------------------------------------------------------
# pool construction
# ----------------------------------------------------------------------
class TestPoolFactory:
    def test_make_pool_selects_backend(self):
        assert isinstance(make_pool(), LocalPool)
        assert isinstance(make_pool(jobs=4), LocalPool)
        pool = make_pool(dispatch=True, workers=3, lease_timeout=5.0)
        assert isinstance(pool, DispatchPool)
        assert pool.workers == 3
        assert pool.lease_timeout == 5.0

    def test_dispatch_pool_validation(self):
        with pytest.raises(HarnessError):
            DispatchPool(workers=0)
        with pytest.raises(HarnessError):
            DispatchPool(lease_timeout=0.0)
        with pytest.raises(HarnessError):
            DispatchPool(heartbeat_interval=-1.0)
        with pytest.raises(HarnessError):
            DispatchPool(launcher="   ").command()

    def test_launcher_prefix_is_shell_split(self):
        pool = DispatchPool(launcher="ssh node7 python -m repro.harness.worker")
        assert pool.command() == [
            "ssh", "node7", "python", "-m", "repro.harness.worker",
        ]

    def test_cli_flags_build_a_dispatch_pool(self):
        args = build_parser().parse_args([
            "suite", "--dispatch", "--workers", "3",
            "--lease-timeout", "7.5", "--launcher", "python -m x",
        ])
        assert args.dispatch and args.workers == 3
        assert args.lease_timeout == 7.5 and args.launcher == "python -m x"

    def test_broken_launcher_raises_dispatch_error(
            self, tmp_path, test_sampling):
        runner = _runner(test_sampling, tmp_path)
        pool = DispatchPool(
            workers=1, launcher="repro-no-such-worker-binary",
            lease_timeout=5.0,
        )
        with pytest.raises(DispatchError, match="cannot launch worker"):
            runner.run_suite(CONFIG_A, names=("gzip",), pool=pool,
                             journal=False)


# ----------------------------------------------------------------------
# dispatched suites end to end
# ----------------------------------------------------------------------
class TestDispatchedSuite:
    def test_clean_dispatch_matches_serial(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "dispatched"
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        metrics = runner.obs.metrics
        assert metrics.value(DISPATCH_LEASES) == float(len(SUITE_NAMES))
        assert metrics.value(DISPATCH_STALE_COMMITS) == 0.0
        assert len(pool.spawned_pids) == 2

    def test_local_pool_backend_matches_serial(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        runner = _runner(test_sampling, tmp_path / "local")
        outcome = runner.run_suite(
            CONFIG_A, names=SUITE_NAMES, pool=LocalPool(jobs=2)
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload

    def test_worker_exit_is_reclaimed_and_stolen(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        # Node loss: the worker holding gzip dies silently on receipt.
        # The monitor reclaims the lease, the replacement worker steals
        # the task, and the campaign still matches serial byte for byte.
        monkeypatch.setenv(FAULTS_ENV, "worker_exit:gzip:*:0")
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "exit", max_retries=2,
            lease_timeout=5.0,
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        metrics = runner.obs.metrics
        assert metrics.value(DISPATCH_RECLAIMS) >= 1.0
        assert metrics.value(DISPATCH_STEALS) >= 1.0
        assert metrics.value("repro_worker_crashes_total") >= 1.0
        assert len(pool.spawned_pids) > 2  # a replacement was spawned

    def test_in_stage_kill_mirrors_shm_worker_kill(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        # The pre-existing stage-level kill fault (os._exit mid-stage,
        # as in test_trace_shm) must be survivable under dispatch too.
        monkeypatch.setenv(FAULTS_ENV, "kill:gzip:trace_build:0")
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "killed", max_retries=2,
            lease_timeout=5.0,
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        assert runner.obs.metrics.value(DISPATCH_RECLAIMS) >= 1.0

    def test_stale_commit_rejected_at_most_once(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        # The worker finishes gzip but withholds the result (and stops
        # heartbeating); its lease expires, the task is re-run
        # elsewhere, and the withheld result — flushed when the worker
        # is told to shut down, deterministically after the reclaim —
        # must be counted stale and discarded, never double-committed.
        monkeypatch.setenv(FAULTS_ENV, "stale_commit:gzip:*:0")
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "stale", max_retries=2,
            lease_timeout=1.0,
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        metrics = runner.obs.metrics
        assert metrics.value(DISPATCH_RECLAIMS) >= 1.0
        assert metrics.value(DISPATCH_STALE_COMMITS) >= 1.0

    def test_partition_strands_worker_and_task_is_stolen(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        # The dispatcher drops every message for gzip's first lease; the
        # stranded worker's heartbeats and result vanish, the lease
        # expires, and a replacement worker re-runs the task.
        monkeypatch.setenv(FAULTS_ENV, "partition:gzip:*:0")
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "partition", max_retries=2,
            lease_timeout=1.5,
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        metrics = runner.obs.metrics
        assert metrics.value(DISPATCH_RECLAIMS) >= 1.0
        assert metrics.value(DISPATCH_STEALS) >= 1.0

    def test_heartbeat_drop_expires_the_lease(
            self, tmp_path, test_sampling, monkeypatch, serial_payload):
        # Heartbeats suppressed on gzip's first attempt: with a lease
        # far shorter than the run, the monitor must count the missed
        # beats and reclaim mid-execution.
        monkeypatch.setenv(FAULTS_ENV, "heartbeat_drop:gzip:*:0")
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "deaf", max_retries=2,
            lease_timeout=0.3,
        )
        assert outcome.ok
        assert _payload(outcome) == serial_payload
        metrics = runner.obs.metrics
        assert metrics.value(DISPATCH_MISSED) >= 1.0
        assert metrics.value(DISPATCH_RECLAIMS) >= 1.0

    def test_permanent_failure_is_isolated(
            self, tmp_path, test_sampling, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "raise:lucas:*:*")
        runner, pool, outcome = _dispatched(
            test_sampling, tmp_path / "perma", max_retries=1,
        )
        assert [run.benchmark for run in outcome] == ["gzip"]
        (failure,) = outcome.failures
        assert failure.benchmark == "lucas"
        assert failure.attempts == 2
        assert failure.stage is not None
        assert runner.failures == [failure]
