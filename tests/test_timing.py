"""Tests for the block-level timing simulator."""

import pytest

from repro.config import CONFIG_A, CONFIG_B
from repro.detailed import SimulationResult, TimingSimulator
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def simulator(small_trace):
    return TimingSimulator(small_trace, CONFIG_A)


@pytest.fixture(scope="module")
def full_result(simulator):
    return simulator.simulate_full()


class TestFullSimulation:
    def test_simulates_every_instruction(self, simulator, full_result,
                                         small_trace):
        assert full_result.instructions == small_trace.total_instructions

    def test_metrics_in_valid_ranges(self, full_result):
        metrics = full_result.metrics()
        assert metrics.cpi > 0
        assert 0 <= metrics.l1_hit_rate <= 1
        assert 0 <= metrics.l2_hit_rate <= 1

    def test_cpi_at_least_width_bound(self, full_result):
        assert full_result.cpi >= 1.0 / CONFIG_A.issue_width

    def test_deterministic(self, simulator, full_result):
        again = simulator.simulate_full()
        assert again.cycles == full_result.cycles
        assert again.l1d_misses == full_result.l1d_misses

    def test_branches_counted(self, full_result):
        assert full_result.branches > 0
        assert 0 <= full_result.mispredict_rate <= 1


class TestRangeSimulation:
    def test_ranges_compose_to_full(self, simulator, small_trace,
                                    full_result):
        state = simulator.new_state()
        result = SimulationResult()
        total = small_trace.total_instructions
        for bound in range(0, total, total // 7):
            end = min(bound + total // 7, total)
            if end > bound:
                simulator.simulate_range(bound, end, state=state,
                                         result=result)
        if total % (total // 7):
            pass  # last partial chunk already included above
        # Whole-rep rounding at the split points may duplicate a few reps.
        assert result.instructions >= full_result.instructions
        assert result.instructions <= full_result.instructions * 1.01
        assert result.cycles == pytest.approx(full_result.cycles, rel=0.02)

    def test_state_carries_warmth(self, simulator, small_trace):
        total = small_trace.total_instructions
        probe = (total // 2, total // 2 + 2000)

        cold = simulator.simulate_range(*probe)
        state = simulator.new_state()
        simulator.simulate_range(0, probe[0], state=state,
                                 result=SimulationResult())
        warm = simulator.simulate_range(*probe, state=state)
        assert warm.l1d_misses <= cold.l1d_misses
        assert warm.cycles <= cold.cycles

    def test_simulate_point_with_warmup(self, simulator, small_trace):
        total = small_trace.total_instructions
        result = simulator.simulate_point(total // 2, total // 2 + 1500,
                                          warmup=2000)
        assert result.instructions >= 1500

    def test_empty_point_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.simulate_point(100, 100)


class TestConfigSensitivity:
    def test_configs_produce_different_results(self, small_trace,
                                               full_result):
        b = TimingSimulator(small_trace, CONFIG_B).simulate_full()
        assert b.cycles != full_result.cycles

    def test_bigger_caches_hit_more(self, small_trace, full_result):
        b = TimingSimulator(small_trace, CONFIG_B).simulate_full()
        # Config B: 128K 2-way D$ vs 16K 4-way.
        assert b.l1_hit_rate >= full_result.l1_hit_rate


class TestPhaseSensitivity:
    def test_different_regimes_have_different_cpi(self, simulator,
                                                  small_trace):
        """Iterations of different regimes must differ in CPI, otherwise
        phase analysis would have nothing to find."""
        bounds = small_trace.outer_bounds()
        schedule = small_trace.spec.schedule
        state = simulator.new_state()
        result = SimulationResult()
        simulator.simulate_range(0, int(bounds[0][0]), state=state,
                                 result=result)
        per_regime = {}
        for (start, end), regime in zip(bounds, schedule):
            piece = SimulationResult()
            simulator.simulate_range(int(start), int(end), state=state,
                                     result=piece)
            per_regime.setdefault(regime, []).append(piece.cpi)
        means = {r: sum(v) / len(v) for r, v in per_regime.items()}
        values = sorted(means.values())
        assert values[-1] / values[0] > 1.05
