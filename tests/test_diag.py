"""Tests for the accuracy diagnostics (per-phase error attribution).

The load-bearing invariant: for every method, the signed per-phase
contributions plus the residual sum *exactly* to the method's total
signed deviation (the residual is defined as the difference, so the
check is that the attribution algebra is implemented consistently and
that the totals match the independently computed ``Deviation``).  gcc —
the paper's pathological benchmark — must light up the
giant-coarse-point telemetry.
"""

import json

import numpy as np
import pytest

from repro.analysis.bbv import normalize_rows
from repro.analysis.kmeans import KMeansResult, cluster_quality, kmeans
from repro.config import CONFIG_A
from repro.errors import ClusteringError
from repro.harness import ExperimentRunner, ResultCache
from repro.obs import MetricsRegistry
from repro.obs.diag import (
    DIAG_METRICS,
    MethodDiag,
    diag_views,
    format_diag_report,
    record_diag_metrics,
)

from .conftest import TEST_SCALE


@pytest.fixture(scope="module")
def gcc_run(test_sampling):
    """One fully diagnosed gcc run (module-shared: the baseline pass
    plus the diagnostics truth pass dominate this file's runtime)."""
    runner = ExperimentRunner(
        sampling=test_sampling,
        cache=ResultCache(enabled=False),
        workload_scale=TEST_SCALE,
    )
    run = runner.run_benchmark("gcc", CONFIG_A)
    return runner, run


class TestAttributionExactness:
    def test_contributions_plus_residual_equal_total(self, gcc_run):
        _, run = gcc_run
        assert set(run.diagnostics) == set(run.methods)
        for name, diag in run.diagnostics.items():
            for metric in DIAG_METRICS:
                total = diag.total_error[metric]
                explained = sum(
                    row.contributions.get(metric, 0.0)
                    for row in diag.phases
                ) + diag.residual[metric]
                assert explained == pytest.approx(total, abs=1e-9), \
                    (name, metric)

    def test_total_cpi_matches_reported_deviation(self, gcc_run):
        _, run = gcc_run
        for name, diag in run.diagnostics.items():
            deviation = run.methods[name].deviation
            assert abs(diag.total_error["cpi"]) == \
                pytest.approx(deviation.cpi, abs=1e-9), name
            assert abs(diag.total_error["l1"]) == \
                pytest.approx(deviation.l1_hit_rate, abs=1e-9), name

    def test_members_cleared_and_never_serialised(self, gcc_run):
        _, run = gcc_run
        for diag in run.diagnostics.values():
            assert diag.members == {}
            assert "members" not in diag.to_dict()


class TestGccPathology:
    def test_giant_coarse_point_flagged(self, gcc_run, test_sampling):
        _, run = gcc_run
        coasts = run.diagnostics["coasts"]
        assert coasts.resample_threshold == test_sampling.resample_threshold
        assert coasts.n_oversized >= 1
        oversized = [row for row in coasts.phases if row.oversized]
        assert all(
            row.point_size > test_sampling.resample_threshold
            for row in oversized
        )
        assert any(
            "GIANT-COASTS-POINT" not in row.flags()
            and "GIANT-COARSE-POINT" in row.flags()
            for row in oversized
        )

    def test_multilevel_marks_oversized_phases_resampled(self, gcc_run):
        _, run = gcc_run
        ml = run.diagnostics["multilevel"]
        assert ml.method == "multilevel"
        for row in ml.phases:
            assert row.resampled == row.oversized

    def test_report_renders_flags_and_residual(self, gcc_run):
        _, run = gcc_run
        views = {"gcc": run.diagnostics}
        report = format_diag_report(views, benchmark="gcc")
        assert "GIANT-COARSE-POINT" in report
        assert "coverage/aggregation" in report
        assert "gcc / coasts" in report
        # Worst phase first: the first table row carries the largest
        # absolute CPI contribution.
        coasts = run.diagnostics["coasts"]
        worst = coasts.sorted_phases()[0]
        table = [
            line for line in
            format_diag_report({"gcc": {"coasts": coasts}}).splitlines()
            if line.strip() and line.strip()[0].isdigit()
        ]
        assert table[0].split()[0] == str(worst.phase)


class TestRoundTrips:
    def test_dict_round_trip(self, gcc_run):
        _, run = gcc_run
        for diag in run.diagnostics.values():
            payload = json.loads(json.dumps(diag.to_dict()))
            rebuilt = MethodDiag.from_dict(payload)
            assert rebuilt.to_dict() == diag.to_dict()

    def test_registry_round_trip(self, gcc_run):
        """record_diag_metrics -> diag_views reconstructs the tables."""
        _, run = gcc_run
        registry = MetricsRegistry()
        record_diag_metrics(registry, run.diagnostics)
        views = diag_views(registry)
        assert set(views) == {"gcc"}
        assert set(views["gcc"]) == set(run.diagnostics)
        for name, original in run.diagnostics.items():
            rebuilt = views["gcc"][name]
            assert rebuilt.n_clusters == original.n_clusters
            assert rebuilt.total_error == pytest.approx(original.total_error)
            assert rebuilt.residual == pytest.approx(original.residual)
            assert [row.phase for row in rebuilt.phases] == \
                [row.phase for row in sorted(original.phases,
                                             key=lambda r: r.phase)]
            for row in rebuilt.phases:
                source = original.phase_by_id(row.phase)
                assert row.contributions == pytest.approx(
                    source.contributions
                )
                assert row.oversized == source.oversized

    def test_recording_is_idempotent(self, gcc_run):
        _, run = gcc_run
        registry = MetricsRegistry()
        record_diag_metrics(registry, run.diagnostics)
        once = registry.to_dict()
        record_diag_metrics(registry, run.diagnostics)
        assert registry.to_dict() == once

    def test_cache_hit_still_records_diag_gauges(self, tmp_path,
                                                 test_sampling):
        cache_dir = tmp_path / "cache"
        first = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(directory=cache_dir),
            workload_scale=TEST_SCALE,
        )
        first.run_benchmark("gzip", CONFIG_A)
        second = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(directory=cache_dir),
            workload_scale=TEST_SCALE,
        )
        run = second.run_benchmark("gzip", CONFIG_A)
        assert second.cache.hits == 1
        assert run.diagnostics  # survived the disk round-trip
        views = diag_views(second.obs.metrics)
        assert set(views.get("gzip", {})) == set(run.diagnostics)

    def test_diagnostics_off_skips_stage(self, test_sampling):
        runner = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(enabled=False),
            workload_scale=TEST_SCALE,
            diagnostics=False,
        )
        run = runner.run_benchmark("gzip", CONFIG_A)
        assert run.diagnostics == {}
        assert diag_views(runner.obs.metrics) == {}
        (record,) = runner.timing.runs
        assert "diagnostics" not in record.stages


class TestClusterQuality:
    def test_single_cluster_has_zero_silhouette(self):
        data = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 0.5]])
        result = KMeansResult(
            centroids=data.mean(axis=0, keepdims=True),
            labels=np.zeros(3, dtype=int),
            inertia=0.0,
        )
        quality = cluster_quality(data, result)
        assert quality.k == 1
        assert quality.silhouettes[0] == 0.0
        assert quality.mean_silhouette == 0.0
        assert quality.sizes[0] == 3
        assert quality.variances[0] == pytest.approx(
            np.mean(np.sum((data - data.mean(axis=0)) ** 2, axis=1))
        )

    def test_well_separated_clusters_score_high(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0.0, 0.01, size=(20, 3))
        b = rng.normal(5.0, 0.01, size=(20, 3))
        data = np.vstack([a, b])
        labels = np.array([0] * 20 + [1] * 20)
        centroids = np.vstack([a.mean(axis=0), b.mean(axis=0)])
        quality = cluster_quality(
            data, KMeansResult(centroids=centroids, labels=labels,
                               inertia=0.0)
        )
        assert quality.mean_silhouette > 0.9
        assert all(quality.member_distances < 0.1)

    def test_real_clustering_quality_is_consistent(self, small_fine_profile,
                                                   test_sampling):
        data = normalize_rows(small_fine_profile.bbv.astype(float))
        result = kmeans(data, 3, n_seeds=test_sampling.kmeans_seeds)
        quality = cluster_quality(data, result)
        assert quality.k == len(result.centroids)
        assert len(quality.member_distances) == len(data)
        assert len(quality.member_silhouettes) == len(data)
        assert all(-1.0 - 1e-9 <= s <= 1.0 + 1e-9
                   for s in quality.member_silhouettes)
        assert sum(quality.sizes) == len(data)

    def test_shape_mismatch_raises(self):
        data = np.zeros((4, 2))
        result = KMeansResult(
            centroids=np.zeros((1, 2)), labels=np.zeros(3, dtype=int),
            inertia=0.0,
        )
        with pytest.raises(ClusteringError):
            cluster_quality(data, result)
