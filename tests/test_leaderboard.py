"""Tests for the cross-method leaderboard and its history integration."""

import json

import pytest

from repro.detailed.results import Deviation, Metrics
from repro.errors import HarnessError
from repro.harness import (
    ACCURACY_PENALTY,
    BenchmarkRun,
    MethodResult,
    PlanStats,
    build_leaderboard,
)
from repro.obs import diff_records
from repro.obs.history import HistoryRecord


def _method(name, dev, detail_instructions):
    return MethodResult(
        stats=PlanStats(
            method=name, n_points=1, n_leaves=1, n_clusters=1,
            detail_instructions=detail_instructions,
            functional_instructions=0,
            mean_interval_size=float(detail_instructions),
            last_point_position=1.0,
        ),
        estimate=Metrics(cpi=1.0, l1_hit_rate=0.9, l2_hit_rate=0.9),
        deviation=Deviation(cpi=dev, l1_hit_rate=dev, l2_hit_rate=dev),
    )


def _run(benchmark, specs, total=100_000):
    """specs: {method: (uniform deviation, detail instructions)}."""
    return BenchmarkRun(
        benchmark=benchmark,
        config_name="config_a",
        total_instructions=total,
        baseline=Metrics(cpi=1.0, l1_hit_rate=0.9, l2_hit_rate=0.9),
        methods={
            name: _method(name, dev, detail)
            for name, (dev, detail) in specs.items()
        },
    )


class TestLeaderboardMath:
    def test_accurate_and_cheap_ranks_first(self):
        # Scores: sharp 100/2 = 50, slow 4/2 = 2, sloppy 100/101 ~ 0.99.
        run = _run("gzip", {
            "sharp": (0.01, 1_000),    # fast and accurate
            "sloppy": (1.00, 1_000),   # fast but wildly inaccurate
            "slow": (0.01, 25_000),    # accurate but slow
        })
        board = build_leaderboard([run])
        assert [r.method for r in board.aggregate] == \
            ["sharp", "slow", "sloppy"]
        assert board.ranks == {"sharp": 1.0, "slow": 2.0, "sloppy": 3.0}

    def test_score_formula(self):
        run = _run("gzip", {"only": (0.05, 10_000)})
        row = build_leaderboard([run]).aggregate[0]
        # detail-only plan, no functional work: speedup = total / detail
        assert row.speedup == pytest.approx(10.0)
        assert row.mean_abs_dev == pytest.approx(0.05)
        assert row.score == pytest.approx(
            10.0 / (1.0 + ACCURACY_PENALTY * 0.05)
        )

    def test_aggregate_uses_geomean_speedup_and_mean_dev(self):
        runs = [
            _run("gzip", {"m": (0.02, 25_000)}),   # speedup 4
            _run("mcf", {"m": (0.04, 1_000)}),     # speedup 100
        ]
        row = build_leaderboard(runs).aggregate[0]
        assert row.speedup == pytest.approx(20.0)  # sqrt(4 * 100)
        assert row.mean_abs_dev == pytest.approx(0.03)

    def test_tie_breaks_by_method_name(self):
        run = _run("gzip", {"zeta": (0.05, 10_000), "alpha": (0.05, 10_000)})
        board = build_leaderboard([run])
        assert [r.method for r in board.aggregate] == ["alpha", "zeta"]

    def test_per_benchmark_tables(self):
        runs = [
            _run("gzip", {"a": (0.01, 1_000), "b": (0.10, 1_000)}),
            _run("mcf", {"a": (0.10, 1_000), "b": (0.01, 1_000)}),
        ]
        board = build_leaderboard(runs)
        assert board.per_benchmark["gzip"][0].method == "a"
        assert board.per_benchmark["mcf"][0].method == "b"

    def test_no_runs_rejected(self):
        with pytest.raises(HarnessError):
            build_leaderboard([])

    def test_missing_method_rejected(self):
        run = _run("gzip", {"a": (0.01, 1_000)})
        with pytest.raises(HarnessError):
            build_leaderboard([run], methods=("a", "ghost"))

    def test_format_and_to_dict(self):
        run = _run("gzip", {"a": (0.01, 1_000), "b": (0.10, 1_000)})
        board = build_leaderboard([run])
        text = board.format()
        assert "leaderboard aggregate" in text
        assert "leaderboard: gzip" in text
        payload = json.loads(json.dumps(board.to_dict()))
        assert payload["methods"] == ["a", "b"]
        assert [r["method"] for r in payload["aggregate"]] == ["a", "b"]
        assert payload["aggregate"][0]["rank"] == 1


class TestRankHistory:
    def _record(self, ranks):
        record = HistoryRecord(kind="leaderboard", ranks=ranks)
        return record.seal()

    def test_rank_regression_flagged(self):
        a = self._record({"coasts": 1.0, "stratified": 2.0})
        b = self._record({"coasts": 2.0, "stratified": 1.0})
        diff = diff_records(a, b)
        by_name = {e.name: e.verdict for e in diff.entries}
        assert by_name["rank:coasts"] == "REGRESSED"
        assert by_name["rank:stratified"] == "IMPROVED"
        assert diff.verdict == "REGRESSED"

    def test_equal_ranks_pass(self):
        a = self._record({"coasts": 1.0})
        b = self._record({"coasts": 1.0})
        diff = diff_records(a, b)
        assert diff.verdict == "PASS"

    def test_absent_side_noted_not_regressed(self):
        a = self._record({"coasts": 1.0})
        b = self._record({"coasts": 1.0, "ranked_set": 2.0})
        diff = diff_records(a, b)
        assert any("ranked_set" in note for note in diff.notes)
        assert diff.verdict == "PASS"

    def test_from_dict_without_ranks_is_backward_compatible(self):
        payload = self._record({"coasts": 1.0}).to_dict()
        del payload["ranks"]
        record = HistoryRecord.from_dict(payload)
        assert record.ranks == {}

    def test_ranks_roundtrip(self):
        record = self._record({"coasts": 1.0})
        rebuilt = HistoryRecord.from_dict(record.to_dict())
        assert rebuilt.ranks == {"coasts": 1.0}


class TestLeaderboardCli:
    def test_leaderboard_command(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        json_path = tmp_path / "board.json"
        code = main([
            "--scale", "0.04", "leaderboard", "--benchmarks", "gzip",
            "--json", str(json_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "leaderboard aggregate" in out
        assert "leaderboard: gzip" in out
        payload = json.loads(json_path.read_text())
        assert len(payload["aggregate"]) >= 6
        ranks = {r["method"]: r["rank"] for r in payload["aggregate"]}
        assert set(ranks) >= {
            "simpoint", "early_sp", "coasts", "multilevel",
            "stratified", "ranked_set",
        }

    def test_leaderboard_appends_ranked_history(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.cli import main
        from repro.obs.history import RunHistory

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        history_dir = tmp_path / "hist"
        code = main([
            "--scale", "0.04", "leaderboard", "--benchmarks", "gzip",
            "--methods", "coasts", "stratified",
            "--history-dir", str(history_dir),
        ])
        capsys.readouterr()
        assert code == 0
        records = RunHistory(history_dir).load()
        assert len(records) == 1
        record = records[0]
        assert record.kind == "leaderboard"
        assert set(record.ranks) == {"coasts", "stratified"}
        assert sorted(record.ranks.values()) == [1.0, 2.0]
