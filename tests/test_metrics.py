"""Tests for the alternative phase-classification metrics (Section II)."""

import numpy as np
import pytest

from repro.analysis import (
    loop_frequency_matrix,
    metric_matrix,
    working_set_matrix,
)
from repro.errors import ClusteringError, SamplingError
from repro.sampling import SimPoint


class TestLoopFrequencyMatrix:
    def test_one_column_per_loop(self, small_fine_profile, small_trace):
        lfv = loop_frequency_matrix(small_fine_profile, small_trace.program)
        assert lfv.shape == (
            small_fine_profile.n_intervals,
            len(small_trace.program.loops),
        )
        assert (lfv >= 0).all()

    def test_counts_iterations_not_instructions(self, small_fine_profile,
                                                small_trace):
        """Total LFV mass across all intervals approximates the number of
        dynamic loop iterations, not the instruction count."""
        lfv = loop_frequency_matrix(small_fine_profile, small_trace.program)
        total_iterations = sum(
            seg.reps for seg in small_trace.segments if seg.loop_id >= 0
        )
        assert lfv.sum() == pytest.approx(total_iterations, rel=0.25)


class TestWorkingSetMatrix:
    def test_one_column_per_region_plus_compute(self, small_fine_profile,
                                                small_trace):
        wsv = working_set_matrix(small_fine_profile, small_trace.program)
        assert wsv.shape == (
            small_fine_profile.n_intervals,
            len(small_trace.program.regions) + 1,
        )

    def test_preserves_instruction_mass(self, small_fine_profile,
                                        small_trace):
        wsv = working_set_matrix(small_fine_profile, small_trace.program)
        assert wsv.sum() == pytest.approx(small_fine_profile.bbv.sum())

    def test_regions_distinguish_regimes(self, small_fine_profile,
                                         small_trace):
        wsv = working_set_matrix(small_fine_profile, small_trace.program)
        normalized = wsv / np.maximum(wsv.sum(axis=1, keepdims=True), 1e-12)
        spread = np.abs(normalized[1:] - normalized[:-1]).sum(axis=1)
        assert spread.max() > 0.1


class TestMetricDispatch:
    def test_bbv_passthrough(self, small_fine_profile, small_trace):
        out = metric_matrix("bbv", small_fine_profile, small_trace.program)
        assert out is small_fine_profile.bbv

    def test_unknown_metric(self, small_fine_profile, small_trace):
        with pytest.raises(ClusteringError):
            metric_matrix("vibes", small_fine_profile, small_trace.program)


class TestSimPointWithMetrics:
    def test_non_bbv_requires_program(self, small_fine_profile,
                                      test_sampling):
        sampler = SimPoint(test_sampling, metric="loop_frequency")
        with pytest.raises(SamplingError):
            sampler.sample(small_fine_profile)

    @pytest.mark.parametrize("metric", ["loop_frequency", "working_set"])
    def test_alternative_metrics_produce_valid_plans(
        self, metric, small_fine_profile, small_trace, test_sampling
    ):
        plan = SimPoint(test_sampling, metric=metric).sample(
            small_fine_profile, benchmark="gzip",
            program=small_trace.program,
        )
        assert 1 <= plan.n_points <= test_sampling.fine_kmax
        assert sum(p.weight for p in plan.points) == pytest.approx(1.0)
