"""Tests for branch predictors and their analytic counterparts."""

import numpy as np
import pytest

from repro.config import BranchPredictorConfig
from repro.errors import SimulationError
from repro.uarch import (
    BimodalPredictor,
    CombinedPredictor,
    GSharePredictor,
    advance_loop_branch,
    exit_loop_branch,
    make_predictor,
    stationary_mispredict_rate,
)


class TestLoopBranchAnalytic:
    def test_saturates_and_stops_mispredicting(self):
        state, mispredicts = advance_loop_branch(0, 100)
        assert state == 3
        assert mispredicts == 2  # counter at 0 and 1 predicted not-taken

    def test_warm_counter_never_mispredicts_takens(self):
        state, mispredicts = advance_loop_branch(3, 50)
        assert mispredicts == 0
        assert state == 3

    def test_exit_mispredicts_when_saturated(self):
        state, mispredict = exit_loop_branch(3)
        assert mispredict == 1
        assert state == 2

    def test_exit_correct_when_weak(self):
        state, mispredict = exit_loop_branch(1)
        assert mispredict == 0
        assert state == 0

    def test_matches_step_by_step_simulation(self):
        """The O(1) formula equals explicit 2-bit counter simulation."""
        for start in range(4):
            for takens in (0, 1, 2, 3, 10):
                counter, mispredicts = start, 0
                for _ in range(takens):
                    if counter < 2:
                        mispredicts += 1
                    counter = min(3, counter + 1)
                assert advance_loop_branch(start, takens) == \
                    (counter, mispredicts)

    def test_rejects_bad_state(self):
        with pytest.raises(SimulationError):
            advance_loop_branch(5, 1)


class TestStationaryRate:
    def test_deterministic_branches_never_mispredict(self):
        assert stationary_mispredict_rate(0.0) == 0.0
        assert stationary_mispredict_rate(1.0) == 0.0

    def test_symmetric(self):
        assert stationary_mispredict_rate(0.3) == pytest.approx(
            stationary_mispredict_rate(0.7)
        )

    def test_worst_at_half(self):
        assert stationary_mispredict_rate(0.5) == pytest.approx(0.5)
        assert stationary_mispredict_rate(0.9) < \
            stationary_mispredict_rate(0.6)

    def test_matches_monte_carlo(self):
        """The Markov stationary rate matches a simulated 2-bit counter."""
        rng = np.random.default_rng(1)
        p = 0.8
        counter, mispredicts, n = 1, 0, 200_000
        for taken in rng.random(n) < p:
            predicted = counter >= 2
            if predicted != taken:
                mispredicts += 1
            counter = min(3, counter + 1) if taken else max(0, counter - 1)
        assert mispredicts / n == pytest.approx(
            stationary_mispredict_rate(p), abs=0.01
        )


class TestStatefulPredictors:
    def test_bimodal_learns_bias(self):
        predictor = BimodalPredictor(1024)
        for _ in range(10):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_gshare_learns_alternating_pattern(self):
        predictor = GSharePredictor(1024, history_bits=4)
        pattern = [True, False] * 200
        for taken in pattern:
            predictor.update(0x400, taken)
        # After training, predictions should track the alternation.
        correct = 0
        for taken in [True, False] * 20:
            if predictor.predict(0x400) == taken:
                correct += 1
            predictor.update(0x400, taken)
        assert correct >= 35

    def test_combined_tracks_accuracy(self):
        predictor = CombinedPredictor(BranchPredictorConfig())
        for _ in range(100):
            predictor.update(0x100, True)
        assert predictor.predictions == 100
        assert predictor.mispredict_rate < 0.1

    def test_make_predictor_dispatch(self):
        assert isinstance(
            make_predictor(BranchPredictorConfig(kind="bimodal")),
            BimodalPredictor,
        )
        assert isinstance(
            make_predictor(BranchPredictorConfig(kind="gshare")),
            GSharePredictor,
        )
        assert isinstance(
            make_predictor(BranchPredictorConfig(kind="combined")),
            CombinedPredictor,
        )
