"""Tests for the pluggable sampler registry and sampler conformance.

Two halves:

* registry unit tests — registration order, validation, third-party
  registration driving the harness end to end;
* a conformance suite parametrized over *every* registered sampler —
  plan determinism, exact per-phase error attribution, and
  serial == parallel result identity.  A new sampler gets all of these
  for free the moment it registers.
"""

import pytest

from repro.config import CONFIG_A
from repro.errors import HarnessError, SamplingError
from repro.harness import ExperimentRunner, ResultCache
from repro.samplers import (
    PlanContext,
    SamplerSpec,
    add_spec,
    get_sampler,
    register_sampler,
    registered_methods,
    unregister_sampler,
)
from repro.sampling import SamplingPlan, SimulationPoint

#: The shipped registration order (paper methods, then related work).
BUILTINS = (
    "simpoint", "early_sp", "coasts", "multilevel",
    "stratified", "ranked_set",
)

#: Golden deviation pins for the two related-work samplers (gzip @
#: scale 0.04, config A, the golden-accuracy sampling config); same
#: re-pinning protocol as tests/test_golden_accuracy.py.
GOLDEN_NEW = {
    "stratified": {
        "cpi": 0.08417785393393411,
        "l1_hit_rate": 0.06223871217985388,
        "l2_hit_rate": 0.0529944983066456,
    },
    "ranked_set": {
        "cpi": 0.33646997098952275,
        "l1_hit_rate": 0.04848257982913784,
        "l2_hit_rate": 0.09929835809067378,
    },
}

RTOL = 1e-9


def _noop_build(ctx):  # pragma: no cover - registration fodder
    raise NotImplementedError


class TestRegistry:
    def test_builtin_registration_order(self):
        assert registered_methods() == BUILTINS

    def test_get_sampler_returns_spec(self):
        spec = get_sampler("stratified")
        assert spec.name == "stratified"
        assert "fine" in spec.requires
        assert "stratified_budget" in spec.config_knobs

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SamplingError) as err:
            get_sampler("magic")
        for name in BUILTINS:
            assert name in str(err.value)

    def test_duplicate_name_rejected(self):
        with pytest.raises(SamplingError):
            add_spec(SamplerSpec(
                name="simpoint", description="dup", build_plan=_noop_build,
            ))

    def test_unknown_requirement_rejected(self):
        with pytest.raises(SamplingError):
            add_spec(SamplerSpec(
                name="medium_sp", description="", build_plan=_noop_build,
                requires=("medium",),
            ))
        assert "medium_sp" not in registered_methods()

    def test_unknown_config_knob_rejected(self):
        with pytest.raises(SamplingError):
            add_spec(SamplerSpec(
                name="knobby", description="", build_plan=_noop_build,
                config_knobs=("bogus_knob",),
            ))
        assert "knobby" not in registered_methods()

    def test_unregister_unknown_is_noop(self):
        unregister_sampler("never_registered")


class TestThirdPartyRegistration:
    """Registering a sampler is the only step to enter the harness."""

    def test_runner_drives_custom_sampler(self, tmp_path, test_sampling):
        @register_sampler("first_interval", "first fine interval only",
                          requires=("fine",))
        def _build(ctx):
            profile = ctx.fine_profile()
            start = int(profile.starts[0])
            end = start + int(profile.instructions[0])
            plan = SamplingPlan(
                method="first_interval",
                benchmark=ctx.benchmark,
                points=(SimulationPoint(
                    start=start, end=end, weight=1.0, phase=0,
                    interval_index=0,
                ),),
                total_instructions=ctx.trace.total_instructions,
                n_clusters=1,
                origin=start,
            )
            return plan, None

        try:
            assert "first_interval" in registered_methods()
            runner = ExperimentRunner(
                sampling=test_sampling,
                cache=ResultCache(tmp_path / "cache"),
                workload_scale=0.04,
                methods=("first_interval",),
            )
            run = runner.run_benchmark("gzip", CONFIG_A)
            assert tuple(run.methods) == ("first_interval",)
            assert run.methods["first_interval"].estimate.cpi > 0
            # No clustering diag registered -> no diagnostics entry
            # required, and the unknown-method error names it while
            # registered.
            with pytest.raises(HarnessError) as err:
                ExperimentRunner(
                    sampling=test_sampling, methods=("bogus",)
                )
            assert "first_interval" in str(err.value)
        finally:
            unregister_sampler("first_interval")
        assert "first_interval" not in registered_methods()


# ----------------------------------------------------------------------
# Conformance: every registered sampler, one parametrized contract.

@pytest.fixture(scope="module")
def conformance_runner(tmp_path_factory, test_sampling):
    return ExperimentRunner(
        sampling=test_sampling,
        cache=ResultCache(tmp_path_factory.mktemp("conf_cache")),
        workload_scale=0.04,
    )


@pytest.fixture(scope="module")
def conformance_run(conformance_runner):
    return conformance_runner.run_benchmark("gzip", CONFIG_A)


@pytest.mark.parametrize("method", registered_methods())
class TestSamplerConformance:
    def test_plan_is_deterministic(self, method, small_trace,
                                   test_sampling):
        spec = get_sampler(method)
        plans = []
        for _ in range(2):
            context = PlanContext(small_trace, test_sampling, "gzip")
            plan, _diag = spec.build_plan(context)
            plans.append(plan)
        assert plans[0] == plans[1]

    def test_plan_covers_weight_one(self, method, conformance_runner):
        plan = conformance_runner.plans("gzip")[method]
        assert plan.method == method
        assert sum(p.weight for p in plan.points) == pytest.approx(1.0)

    def test_attribution_is_exact(self, method, conformance_run):
        """est - base splits exactly into phase terms plus residual."""
        diag = conformance_run.diagnostics[method]
        for metric, total in diag.total_error.items():
            recomposed = sum(
                row.contributions.get(metric, 0.0) for row in diag.phases
            ) + diag.residual[metric]
            assert recomposed == pytest.approx(total, abs=1e-9)

    def test_estimate_within_sanity_bounds(self, method, conformance_run):
        estimate = conformance_run.methods[method].estimate
        assert 0.0 < estimate.cpi < 10.0
        assert 0.0 <= estimate.l1_hit_rate <= 1.0
        assert 0.0 <= estimate.l2_hit_rate <= 1.0


def test_serial_equals_parallel(tmp_path, test_sampling):
    """All-methods results are byte-identical across execution modes."""
    def outcome(jobs, sub):
        runner = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(tmp_path / sub),
            workload_scale=0.04,
            jobs=jobs,
        )
        result = runner.run_suite(names=["gzip"], jobs=jobs)
        return [run.to_dict() for run in result]

    assert outcome(1, "serial") == outcome(2, "parallel")


# ----------------------------------------------------------------------
# Conformance over seeded family members: the same contracts must hold
# off the hand-written suite, since campaigns run mostly on fam: names.

FAMILY_MEMBERS = (
    "fam:irregular[0]",
    "fam:phase-heavy[1]",
    "fam:multi-regime[2]",
)


@pytest.fixture(scope="module")
def family_runs(conformance_runner):
    return {
        name: conformance_runner.run_benchmark(name, CONFIG_A)
        for name in FAMILY_MEMBERS
    }


# NB: the parameter is named `member`, not `benchmark` — pytest-benchmark
# owns a `benchmark` fixture and hijacks any funcarg of that name.
@pytest.mark.parametrize("member", FAMILY_MEMBERS)
class TestFamilyConformance:
    def test_plans_deterministic_across_rebuilds(self, member,
                                                 conformance_runner,
                                                 test_sampling):
        trace = conformance_runner.trace(member)
        for method in registered_methods():
            spec = get_sampler(method)
            first, _ = spec.build_plan(
                PlanContext(trace, test_sampling, member)
            )
            second, _ = spec.build_plan(
                PlanContext(trace, test_sampling, member)
            )
            assert first == second, method

    @pytest.mark.parametrize("method", registered_methods())
    def test_plan_covers_weight_one(self, member, method,
                                    conformance_runner, family_runs):
        plan = conformance_runner.plans(member)[method]
        assert plan.method == method
        assert plan.benchmark == member
        assert sum(p.weight for p in plan.points) == pytest.approx(1.0)

    @pytest.mark.parametrize("method", registered_methods())
    def test_attribution_is_exact(self, member, method, family_runs):
        diag = family_runs[member].diagnostics[method]
        for metric, total in diag.total_error.items():
            recomposed = sum(
                row.contributions.get(metric, 0.0) for row in diag.phases
            ) + diag.residual[metric]
            assert recomposed == pytest.approx(total, abs=1e-9)

    @pytest.mark.parametrize("method", registered_methods())
    def test_estimate_within_sanity_bounds(self, member, method,
                                           family_runs):
        estimate = family_runs[member].methods[method].estimate
        assert 0.0 < estimate.cpi < 10.0
        assert 0.0 <= estimate.l1_hit_rate <= 1.0
        assert 0.0 <= estimate.l2_hit_rate <= 1.0


def test_family_serial_equals_parallel(tmp_path, test_sampling):
    """Workers resolve fam: names by themselves; results are identical."""
    names = ["fam:input-dependent[0]", "fam:cache-hostile[1]"]

    def outcome(jobs, sub):
        runner = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(tmp_path / sub),
            workload_scale=0.04,
            jobs=jobs,
            methods=("simpoint", "multilevel"),
        )
        result = runner.run_suite(names=names, jobs=jobs)
        return [run.to_dict() for run in result]

    assert outcome(1, "serial") == outcome(2, "parallel")


class TestNewSamplerGoldens:
    @pytest.fixture(scope="class")
    def golden_run(self, test_sampling):
        runner = ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(enabled=False),
            workload_scale=0.04,
            methods=tuple(GOLDEN_NEW),
        )
        return runner.run_benchmark("gzip", CONFIG_A)

    @pytest.mark.parametrize("method", sorted(GOLDEN_NEW))
    def test_deviations_pinned(self, golden_run, method):
        deviation = golden_run.methods[method].deviation
        expected = GOLDEN_NEW[method]
        assert deviation.cpi == pytest.approx(expected["cpi"], rel=RTOL)
        assert deviation.l1_hit_rate == pytest.approx(
            expected["l1_hit_rate"], rel=RTOL
        )
        assert deviation.l2_hit_rate == pytest.approx(
            expected["l2_hit_rate"], rel=RTOL
        )

    def test_stratified_respects_budget(self, golden_run, test_sampling):
        stats = golden_run.methods["stratified"].stats
        assert stats.n_leaves <= test_sampling.stratified_budget

    def test_ranked_set_leaf_bound(self, golden_run, test_sampling):
        # At most size x cycles leaves; duplicates merge, so fewer is
        # legal too.
        stats = golden_run.methods["ranked_set"].stats
        assert stats.n_leaves <= (
            test_sampling.ranked_set_size * test_sampling.ranked_set_cycles
        )
