"""Tests for trace generation and slicing."""

import numpy as np
import pytest

from repro.engine import Segment, SegmentPiece, Trace, build_trace
from repro.errors import TraceError
from repro.workloads import generate_workload, get_spec, scaled_spec


class TestSegment:
    def test_rejects_empty_blocks(self):
        with pytest.raises(TraceError):
            Segment(blocks=(), reps=1)

    def test_rejects_zero_reps(self):
        with pytest.raises(TraceError):
            Segment(blocks=(0,), reps=0)


class TestTraceStructure:
    def test_total_matches_segment_sum(self, small_trace):
        assert small_trace.total_instructions == \
            int(small_trace.segment_instructions.sum())

    def test_segment_starts_monotone(self, small_trace):
        starts = small_trace.seg_starts
        assert np.all(np.diff(starts) > 0)
        assert starts[0] == 0

    def test_outer_bounds_partition_main_phase(self, small_trace):
        bounds = small_trace.outer_bounds()
        assert bounds[0, 0] == small_trace.prologue_end
        assert bounds[-1, 1] == small_trace.total_instructions
        # contiguity
        assert np.array_equal(bounds[1:, 0], bounds[:-1, 1])

    def test_outer_iteration_count_matches_schedule(self, small_trace):
        assert len(small_trace.outer_bounds()) == \
            small_trace.spec.n_outer_iterations

    def test_locate_finds_containing_segment(self, small_trace):
        for inst in (0, 1, small_trace.total_instructions - 1,
                     small_trace.total_instructions // 2):
            index = small_trace.locate(inst)
            start, end = small_trace.segment_span(index)
            assert start <= inst < end

    def test_locate_out_of_range(self, small_trace):
        with pytest.raises(TraceError):
            small_trace.locate(small_trace.total_instructions)
        with pytest.raises(TraceError):
            small_trace.locate(-1)

    def test_deterministic(self, small_workload):
        t1 = build_trace(small_workload)
        t2 = build_trace(small_workload)
        assert t1.segments == t2.segments

    def test_init_scans_emitted_in_prologue(self, small_trace):
        scan_blocks = {b for b, _ in small_trace.workload.init_scans}
        emitted = set()
        for index, seg in enumerate(small_trace.segments):
            if small_trace.seg_starts[index] >= small_trace.prologue_end:
                break
            emitted |= set(seg.blocks)
        assert scan_blocks <= emitted

    def test_visits_restart_iteration_base(self, small_trace):
        """Every loop-body segment restarts its sweep (iter_base == 0)."""
        for seg in small_trace.segments:
            assert seg.iter_base == 0


class TestClip:
    def test_clip_covers_requested_range(self, small_trace):
        total = small_trace.total_instructions
        start, end = total // 3, total // 3 + 5000
        pieces = list(small_trace.clip(start, end))
        assert pieces
        first = pieces[0]
        assert first.start_inst <= start
        last = pieces[-1]
        last_len = sum(
            small_trace.program.block_sizes[b] for b in last.segment.blocks
        )
        assert last.start_inst + last.n_reps * int(last_len) >= end

    def test_clip_pieces_are_contiguous_whole_reps(self, small_trace):
        total = small_trace.total_instructions
        pieces = list(small_trace.clip(total // 4, total // 2))
        for piece in pieces:
            assert isinstance(piece, SegmentPiece)
            assert 0 < piece.n_reps <= piece.segment.reps

    def test_clip_full_range_covers_everything(self, small_trace):
        pieces = list(small_trace.clip(0, small_trace.total_instructions))
        covered = 0
        for piece in pieces:
            rep_len = sum(
                int(small_trace.program.block_sizes[b])
                for b in piece.segment.blocks
            )
            covered += piece.n_reps * rep_len
        assert covered == small_trace.total_instructions

    def test_clip_rejects_bad_ranges(self, small_trace):
        with pytest.raises(TraceError):
            list(small_trace.clip(10, 10))
        with pytest.raises(TraceError):
            list(small_trace.clip(-5, 10))
        with pytest.raises(TraceError):
            list(small_trace.clip(0, small_trace.total_instructions + 1))


class TestLocateEdges:
    def test_locate_every_segment_boundary(self, small_trace):
        """The first instruction of each segment locates to that segment,
        and the instruction just before it to the previous one."""
        for index in range(small_trace.n_segments):
            start = int(small_trace.seg_starts[index])
            assert small_trace.locate(start) == index
            if start > 0:
                assert small_trace.locate(start - 1) == index - 1

    def test_locate_last_instruction(self, small_trace):
        assert small_trace.locate(small_trace.total_instructions - 1) == \
            small_trace.n_segments - 1


def _multi_rep_index(trace):
    """Index of a segment with several reps (rep-boundary test subject)."""
    candidates = np.flatnonzero(trace.reps >= 4)
    assert len(candidates)
    return int(candidates[0])


class TestClipEdges:
    def test_clip_on_exact_rep_boundary(self, small_trace):
        index = _multi_rep_index(small_trace)
        seg_start, _ = small_trace.segment_span(index)
        rep_len = int(small_trace.rep_lengths[index])
        start = seg_start + 2 * rep_len
        end = start + rep_len
        (piece,) = list(small_trace.clip(start, end))
        assert piece.seg_index == index
        assert piece.rep_offset == 2
        assert piece.n_reps == 1
        assert piece.start_inst == start

    def test_clip_mid_rep_rounds_outward(self, small_trace):
        index = _multi_rep_index(small_trace)
        seg_start, _ = small_trace.segment_span(index)
        rep_len = int(small_trace.rep_lengths[index])
        # One instruction inside rep 1 through one instruction into rep 2:
        # both partial reps must be included whole.
        pieces = list(small_trace.clip(seg_start + rep_len + 1,
                                       seg_start + 2 * rep_len + 1))
        (piece,) = pieces
        assert piece.rep_offset == 1
        assert piece.n_reps == 2
        assert piece.start_inst == seg_start + rep_len

    def test_clip_single_rep_segment_whole(self, small_trace):
        index = int(np.flatnonzero(small_trace.reps == 1)[0])
        start, end = small_trace.segment_span(index)
        (piece,) = list(small_trace.clip(start, end))
        assert piece.seg_index == index
        assert piece.rep_offset == 0
        assert piece.n_reps == 1
        assert piece.segment.reps == 1

    def test_clip_ending_on_segment_boundary_stops(self, small_trace):
        """A clip whose end coincides with a segment start must not
        yield a piece of that next segment."""
        index = small_trace.n_segments // 2
        boundary = int(small_trace.seg_starts[index])
        pieces = list(small_trace.clip(0, boundary))
        assert pieces[-1].seg_index == index - 1

    def test_clip_spanning_prologue_boundary(self, small_trace):
        """A range straddling prologue_end walks straight across the
        prologue/main-phase seam."""
        cut = small_trace.prologue_end
        pieces = list(small_trace.clip(cut - 1, cut + 1))
        indices = [p.seg_index for p in pieces]
        assert indices == sorted(indices)
        assert pieces[0].segment.outer_index == -1
        assert pieces[-1].segment.outer_index >= 0

    def test_clip_pieces_carry_seg_index(self, small_trace):
        total = small_trace.total_instructions
        for piece in small_trace.clip(total // 5, total // 2):
            assert piece.segment is small_trace.segment_at(piece.seg_index)


class TestGccTrace:
    def test_dominant_iteration_dominates(self):
        """gcc keeps its Section V-A pathology: one outer iteration holds
        ~60% of the instructions (trace building alone is cheap)."""
        trace = build_trace(generate_workload(get_spec("gcc")))
        bounds = trace.outer_bounds()
        sizes = bounds[:, 1] - bounds[:, 0]
        assert len(sizes) == 56
        assert 0.5 < sizes.max() / sizes.sum() < 0.7
