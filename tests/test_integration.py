"""End-to-end integration tests: the paper's claims at reduced scale.

These run the full pipeline (workload -> trace -> profile -> plans ->
baseline + point simulation -> estimates) on mid-scale workloads, asserting
the *shape* results the paper reports.
"""

import pytest

from repro.config import CONFIG_A, SamplingConfig
from repro.detailed import TimingSimulator
from repro.engine import FunctionalSimulator, build_trace
from repro.harness import ExperimentRunner, ResultCache
from repro.sampling import (
    Coasts,
    MultiLevelSampler,
    SimPoint,
    plan_cost,
    speedup,
)
from repro.workloads import generate_workload, get_spec, scaled_spec

#: Mid-scale factor: big enough for the coarse/fine cost hierarchy to
#: hold, small enough for CI.
SCALE = 0.25

#: Sampling config matched to the mid scale.
SAMPLING = SamplingConfig(
    fine_interval_size=1000,
    fine_kmax=5,
    coarse_kmax=3,
    resample_threshold=5000,  # = interval x Kmax, the paper's rule
    kmeans_seeds=3,
)


@pytest.fixture(scope="module")
def gzip_setup():
    trace = build_trace(generate_workload(scaled_spec(get_spec("gzip"), SCALE)))
    functional = FunctionalSimulator(trace)
    profile = functional.profile_fixed_intervals(SAMPLING.fine_interval_size)
    simpoint = SimPoint(SAMPLING).sample(profile, benchmark="gzip")
    coasts = Coasts(SAMPLING).sample(trace)
    multilevel = MultiLevelSampler(SAMPLING).sample(trace, coarse_plan=coasts)
    return trace, simpoint, coasts, multilevel


class TestPaperShapeOnGzip:
    def test_coasts_collapses_functional_time(self, gzip_setup):
        """Paper: ~90% functional-simulation reduction vs SimPoint."""
        _, simpoint, coasts, _ = gzip_setup
        assert coasts.functional_instructions < \
            0.4 * simpoint.functional_instructions

    def test_multilevel_cuts_detail_versus_coasts(self, gzip_setup):
        """Paper: ~50% detailed-simulation reduction via re-sampling."""
        _, _, coasts, multilevel = gzip_setup
        assert multilevel.detail_instructions < \
            0.8 * coasts.detail_instructions

    def test_speedup_ordering(self, gzip_setup):
        """multilevel > coasts > 1 over SimPoint (Figs 3 and 4)."""
        _, simpoint, coasts, multilevel = gzip_setup
        s_coasts = speedup(coasts, simpoint)
        s_multi = speedup(multilevel, simpoint)
        assert s_multi > s_coasts > 1.0

    def test_simpoint_functional_dominates_its_cost(self, gzip_setup):
        """Paper Table III: fixed-length SimPoint fast-forwards ~94% of the
        program."""
        _, simpoint, _, _ = gzip_setup
        assert simpoint.functional_fraction > 0.5
        cost = plan_cost(simpoint)
        assert cost.functional_fraction > cost.detail_fraction * 10

    def test_accuracy_of_all_methods(self, gzip_setup):
        trace, simpoint, coasts, multilevel = gzip_setup
        simulator = TimingSimulator(trace, CONFIG_A)
        baseline = simulator.simulate_full().metrics()
        from repro.sampling import evaluate_plan

        cache = {}
        for plan in (simpoint, coasts, multilevel):
            evaluation = evaluate_plan(plan, simulator, baseline,
                                       config=SAMPLING, cache=cache)
            assert evaluation.deviation.cpi < 0.5
            assert evaluation.deviation.l2_hit_rate < 0.5


class TestGccPathology:
    def test_coasts_loses_on_gcc_multilevel_recovers(self):
        """Section V-A/V-B: COASTS alone is slower than SimPoint on gcc;
        multi-level recovers most of the gap."""
        trace = build_trace(generate_workload(get_spec("gcc")))
        functional = FunctionalSimulator(trace)
        from repro.config import DEFAULT_SAMPLING

        profile = functional.profile_fixed_intervals(
            DEFAULT_SAMPLING.fine_interval_size
        )
        simpoint = SimPoint(DEFAULT_SAMPLING).sample(profile, benchmark="gcc")
        coasts = Coasts(DEFAULT_SAMPLING).sample(trace)
        multilevel = MultiLevelSampler(DEFAULT_SAMPLING).sample(
            trace, coarse_plan=coasts
        )
        assert speedup(coasts, simpoint) < 1.0
        assert speedup(multilevel, simpoint) > \
            5 * speedup(coasts, simpoint)
        # the giant coarse point is detail-simulated almost entirely
        assert coasts.detail_fraction > 0.5


class TestRunnerEndToEnd:
    def test_quick_suite_pipeline(self, tmp_path):
        runner = ExperimentRunner(
            sampling=SAMPLING,
            cache=ResultCache(tmp_path),
            workload_scale=SCALE,
            methods=("simpoint", "coasts", "multilevel"),
        )
        run = runner.run_benchmark("lucas", CONFIG_A)
        assert run.methods["coasts"].stats.n_points <= 3
        assert run.speedup("multilevel") > 1.0
        # cached rerun must agree
        assert runner.run_benchmark("lucas", CONFIG_A) == run
