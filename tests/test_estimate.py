"""Tests for metric estimation from sampling plans."""

import pytest

from repro.config import CONFIG_A
from repro.detailed import TimingSimulator
from repro.detailed.results import Deviation, Metrics, SimulationResult
from repro.sampling import Coasts, SimPoint, evaluate_plan
from repro.errors import SamplingError
from repro.sampling.estimate import (
    estimate_plan,
    plan_ranges,
    simulate_point_set,
    simulate_tagged_ranges,
)


@pytest.fixture(scope="module")
def simulator(small_trace):
    return TimingSimulator(small_trace, CONFIG_A)


@pytest.fixture(scope="module")
def baseline(simulator):
    return simulator.simulate_full().metrics()


class TestSimulatePointSet:
    def test_single_range(self, simulator, small_trace):
        total = small_trace.total_instructions
        ranges = [(total // 2, total // 2 + 2000)]
        results = simulate_point_set(simulator, ranges)
        assert set(results) == set(ranges)
        assert results[ranges[0]].instructions >= 2000

    def test_disjoint_ranges_sum_like_sequential(self, simulator,
                                                 small_trace):
        total = small_trace.total_instructions
        ranges = [(1000, 3000), (total // 2, total // 2 + 2000)]
        results = simulate_point_set(simulator, ranges)
        assert all(r.instructions >= 1900 for r in results.values())

    def test_nested_ranges_share_simulation(self, simulator, small_trace):
        outer = (10_000, 20_000)
        inner = (12_000, 14_000)
        results = simulate_point_set(simulator, [outer, inner])
        assert results[outer].instructions > results[inner].instructions
        # nested counts are contained in the outer result
        assert results[outer].cycles >= results[inner].cycles

    def test_warming_matters(self, simulator, small_trace):
        """Points simulated with full warming hit more than cold points."""
        total = small_trace.total_instructions
        rng = (total // 2, total // 2 + 2000)
        warmed = simulate_point_set(simulator, [rng])[rng]
        cold = simulator.simulate_point(*rng, warmup=0)
        assert warmed.l1d_misses <= cold.l1d_misses

    def test_empty_set(self, simulator):
        assert simulate_point_set(simulator, []) == {}


class TestSimulateTaggedRanges:
    def test_matches_point_set_for_single_range_tags(self, simulator,
                                                     small_trace):
        """One range per tag: identical numbers to simulate_point_set."""
        total = small_trace.total_instructions
        ranges = [(1000, 3000), (total // 2, total // 2 + 2000)]
        tagged = {r: [r] for r in ranges}
        by_tag = simulate_tagged_ranges(simulator, tagged)
        by_range = simulate_point_set(simulator, ranges)
        for r in ranges:
            assert by_tag[r].instructions == by_range[r].instructions
            assert by_tag[r].cycles == by_range[r].cycles

    def test_tag_accumulates_disjoint_members(self, simulator):
        """A tag's result merges all of its (possibly abutting) ranges."""
        tagged = {
            "a": [(1000, 2000), (2000, 3000)],  # abutting is legal
            "b": [(1500, 2500)],  # overlaps tag "a" — legal across tags
        }
        results = simulate_tagged_ranges(simulator, tagged)
        # Range ends land on basic-block boundaries, so counts may
        # overshoot slightly — same contract as simulate_point_set.
        assert 2000 <= results["a"].instructions < 2500
        assert 1000 <= results["b"].instructions < 1500
        assert results["a"].cycles > results["b"].cycles

    def test_overlap_within_tag_rejected(self, simulator):
        with pytest.raises(SamplingError):
            simulate_tagged_ranges(
                simulator, {"a": [(1000, 3000), (2000, 4000)]}
            )

    def test_bad_range_rejected(self, simulator):
        with pytest.raises(SamplingError):
            simulate_tagged_ranges(simulator, {"a": [(5, 5)]})

    def test_empty(self, simulator):
        assert simulate_tagged_ranges(simulator, {}) == {}
        assert simulate_tagged_ranges(simulator, {"a": []}) == {
            "a": SimulationResult()
        }


class TestEstimatePlan:
    def test_simpoint_estimate_same_magnitude(
        self, simulator, baseline, small_fine_profile, test_sampling
    ):
        """At the tiny test scale the estimate is noisy; full-scale accuracy
        is covered by the integration test and the Table II bench.  Here we
        only require the right order of magnitude."""
        plan = SimPoint(test_sampling).sample(small_fine_profile)
        estimate = estimate_plan(plan, simulator, config=test_sampling)
        assert 0.3 < estimate.cpi / baseline.cpi < 3.0

    def test_coasts_estimate_same_magnitude(
        self, simulator, baseline, small_trace, test_sampling
    ):
        plan = Coasts(test_sampling).sample(small_trace)
        estimate = estimate_plan(plan, simulator, config=test_sampling)
        assert 0.3 < estimate.cpi / baseline.cpi < 3.0

    def test_cache_shares_leaf_results(self, simulator, small_trace,
                                       test_sampling):
        plan = Coasts(test_sampling).sample(small_trace)
        cache = {}
        first = estimate_plan(plan, simulator, config=test_sampling,
                              cache=cache)
        assert set(cache) == set(plan_ranges(plan))
        # a second estimate must not re-simulate: poison detection by
        # replacing the simulator with None-like object would raise
        second = estimate_plan(plan, None, config=test_sampling, cache=cache)
        assert second == first

    def test_evaluate_plan_reports_deviation(self, simulator, baseline,
                                             small_trace, test_sampling):
        plan = Coasts(test_sampling).sample(small_trace)
        evaluation = evaluate_plan(plan, simulator, baseline,
                                   config=test_sampling)
        assert isinstance(evaluation.deviation, Deviation)
        assert evaluation.deviation.cpi >= 0
        assert evaluation.benchmark == plan.benchmark


class TestDeviationMath:
    def test_between(self):
        baseline = Metrics(cpi=2.0, l1_hit_rate=0.9, l2_hit_rate=0.5)
        estimate = Metrics(cpi=2.2, l1_hit_rate=0.85, l2_hit_rate=0.6)
        deviation = Deviation.between(estimate, baseline)
        assert deviation.cpi == pytest.approx(0.1)
        assert deviation.l1_hit_rate == pytest.approx(0.05)
        assert deviation.l2_hit_rate == pytest.approx(0.1)

    def test_merge_accumulates(self):
        a = SimulationResult(instructions=10, cycles=20.0, branches=2)
        b = SimulationResult(instructions=5, cycles=5.0, branches=1)
        a.merge(b)
        assert a.instructions == 15
        assert a.cycles == 25.0
        assert a.branches == 3
