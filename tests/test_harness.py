"""Tests for the experiment harness: cache, runner, tables, experiments."""

import pytest

from repro.config import CONFIG_A
from repro.errors import HarnessError
from repro.harness import (
    BenchmarkRun,
    ExperimentRunner,
    ResultCache,
    arithmetic_mean,
    format_percent,
    format_table,
    geomean,
    granularity_experiment,
    motivation_experiment,
    rows_to_csv,
    speedup_experiment,
    statistics_experiment,
)


@pytest.fixture(scope="module")
def runner(tmp_path_factory, test_sampling):
    cache_dir = tmp_path_factory.mktemp("cache")
    # 0.12 keeps the coarse/fine cost hierarchy intact (at very small
    # scales COASTS' few-but-huge points stop beating SimPoint, which is
    # itself a property the integration tests cover at full scale).
    return ExperimentRunner(
        sampling=test_sampling,
        cache=ResultCache(cache_dir),
        workload_scale=0.12,
    )


@pytest.fixture(scope="module")
def gzip_run(runner):
    return runner.run_benchmark("gzip", CONFIG_A)


class TestTables:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(HarnessError):
            geomean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0

    def test_format_table_alignment(self):
        text = format_table(["name", "x"], [["a", 1.0], ["bb", 20.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(HarnessError):
            format_table(["a"], [["x", "y"]])

    def test_format_percent(self):
        assert format_percent(0.1234) == "12.34%"

    def test_rows_to_csv(self):
        csv = rows_to_csv(["a", "b"], [[1.0, "x"]])
        assert csv.splitlines() == ["a,b", "1.00,x"]


class TestRunner:
    def test_run_contains_all_methods(self, gzip_run):
        assert set(gzip_run.methods) == {
            "simpoint", "early_sp", "coasts", "multilevel",
            "stratified", "ranked_set",
        }
        assert gzip_run.baseline.cpi > 0

    def test_speedup_of_self_is_one(self, gzip_run):
        assert gzip_run.speedup("simpoint") == pytest.approx(1.0)

    def test_coasts_speedup_over_simpoint(self, gzip_run):
        assert gzip_run.speedup("coasts") > 1.0

    def test_unknown_method_raises(self, gzip_run):
        with pytest.raises(HarnessError):
            gzip_run.speedup("magic")

    def test_serialization_roundtrip(self, gzip_run):
        payload = gzip_run.to_dict()
        rebuilt = BenchmarkRun.from_dict(payload)
        assert rebuilt == gzip_run

    def test_cache_hit_returns_equal_run(self, runner, gzip_run):
        again = runner.run_benchmark("gzip", CONFIG_A)
        assert again == gzip_run

    def test_unknown_methods_rejected(self, test_sampling):
        with pytest.raises(HarnessError):
            ExperimentRunner(sampling=test_sampling, methods=("bogus",))

    def test_plans_memoised(self, runner):
        assert runner.plans("gzip") is runner.plans("gzip")

    def test_speedup_over_full_exceeds_one(self, gzip_run):
        for method in gzip_run.methods:
            assert gzip_run.speedup_over_full(method) > 1.0


class TestMethodSetCache:
    """Cached runs extend, rather than invalidate, when methods grow."""

    def _runner(self, tmp_path, test_sampling, methods):
        return ExperimentRunner(
            sampling=test_sampling,
            cache=ResultCache(tmp_path / "cache"),
            workload_scale=0.12,
            methods=methods,
        )

    def test_subset_request_is_pure_hit(self, tmp_path, test_sampling):
        full = self._runner(tmp_path, test_sampling,
                            ("simpoint", "coasts"))
        full.run_benchmark("gzip", CONFIG_A)
        sub = self._runner(tmp_path, test_sampling, ("coasts",))
        run = sub.run_benchmark("gzip", CONFIG_A)
        assert tuple(run.methods) == ("coasts",)
        record = sub.timing.runs[-1]
        assert record.cache_hit

    def test_extension_computes_only_missing(self, tmp_path,
                                             test_sampling):
        first = self._runner(tmp_path, test_sampling, ("coasts",))
        base = first.run_benchmark("gzip", CONFIG_A)
        both = self._runner(tmp_path, test_sampling,
                            ("coasts", "multilevel"))
        extended = both.run_benchmark("gzip", CONFIG_A)
        assert set(extended.methods) == {"coasts", "multilevel"}
        # The cached method came back byte-identical...
        assert extended.methods["coasts"] == base.methods["coasts"]
        assert extended.baseline == base.baseline
        # ...and the new one matches a fresh missing-only run exactly.
        fresh = self._runner(tmp_path / "other", test_sampling,
                             ("multilevel",))
        alone = fresh.run_benchmark("gzip", CONFIG_A)
        assert extended.methods["multilevel"] == \
            alone.methods["multilevel"]

    def test_extension_then_full_set_is_pure_hit(self, tmp_path,
                                                 test_sampling):
        self._runner(tmp_path, test_sampling,
                     ("coasts",)).run_benchmark("gzip", CONFIG_A)
        both = self._runner(tmp_path, test_sampling,
                            ("coasts", "ranked_set"))
        both.run_benchmark("gzip", CONFIG_A)
        again = self._runner(tmp_path, test_sampling,
                             ("coasts", "ranked_set"))
        run = again.run_benchmark("gzip", CONFIG_A)
        assert set(run.methods) == {"coasts", "ranked_set"}
        assert again.timing.runs[-1].cache_hit


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"a": 1})
        assert cache.get("k") == {"a": 1}

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("absent") is None

    def test_disabled_cache_stores_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        cache.put("k", 1)
        assert cache.get("k") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", 1)
        assert cache.clear() == 1
        assert cache.get("k") is None


class TestExperiments:
    def test_speedup_experiment(self, runner):
        series = speedup_experiment(
            runner, "coasts", names=["gzip", "lucas"]
        )
        assert set(series.speedups) == {"gzip", "lucas"}
        assert series.geomean > 0

    def test_statistics_experiment(self, runner):
        rows = statistics_experiment(runner, names=["gzip"])
        methods = [r.method for r in rows]
        assert methods == ["coasts", "simpoint", "multilevel"]
        coasts, simpoint, _ = rows
        assert coasts.mean_interval_size > simpoint.mean_interval_size
        assert coasts.mean_functional_fraction < \
            simpoint.mean_functional_fraction

    def test_motivation_experiment(self, runner):
        rows = motivation_experiment(runner, kmax=8, names=["gzip"])
        assert rows[0].benchmark == "gzip"
        assert 1 <= rows[0].phase_count <= 8
        assert 0 < rows[0].last_point_position <= 1

    def test_granularity_experiment(self, runner):
        series = granularity_experiment(runner, benchmark="lucas")
        assert len(series.fine_values) > len(series.coarse_values)
        assert series.fine_selected and series.coarse_selected
        # Figure 1's claim: the fine-grained curve is more chaotic.
        assert series.fine_variation > series.coarse_variation
