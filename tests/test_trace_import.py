"""Golden round-trip and quarantine battery for the trace-import adapter.

* export -> import round-trips bit-identically in BOTH formats (.jsonl
  and .npz), and an end-to-end run over the imported benchmark produces
  the same plan/estimate JSON as the original — only the benchmark-name
  fields may differ;
* corrupt inputs are quarantined: TraceImportError (CLI exit 1) plus a
  counted ``repro_trace_import_rejected_total{reason=...}`` sample per
  rejection;
* the import cache is content-addressed — editing the file in place is
  picked up, not stale-served.
"""

import copy
import json

import numpy as np
import pytest

from repro.cli import main
from repro.config import CONFIG_A
from repro.errors import HarnessError, TraceImportError
from repro.harness import ExperimentRunner, ResultCache
from repro.obs.metrics import TRACE_IMPORT_REJECTED, MetricsRegistry
from repro.workloads import registry, trace_import
from repro.workloads.trace_import import (
    FORMAT_NAME,
    FORMAT_VERSION,
    export_trace,
    load_import,
)

SCALE = 0.04


@pytest.fixture(autouse=True)
def _fresh_import_cache():
    trace_import.clear_cache()
    yield
    trace_import.clear_cache()


@pytest.fixture(scope="module")
def gzip_trace():
    return registry.load_trace("gzip", scale=SCALE)


def _export(trace, path):
    return export_trace(trace, path, benchmark="gzip", scale=SCALE)


def _rewrite_jsonl(src, dst, mutate):
    """Parse, mutate and rewrite a JSONL export (header + segments)."""
    lines = [json.loads(line) for line in src.read_text().splitlines()]
    mutate(lines)
    dst.write_text("".join(json.dumps(obj) + "\n" for obj in lines))
    return dst


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
    def test_arrays_bit_identical(self, suffix, gzip_trace, tmp_path):
        path = _export(gzip_trace, tmp_path / f"gzip{suffix}")
        record = load_import(str(path))
        original = gzip_trace.arrays()
        assert sorted(record.arrays) == sorted(original)
        for field, array in original.items():
            assert array.dtype == record.arrays[field].dtype
            assert array.tobytes() == record.arrays[field].tobytes(), field

    @pytest.mark.parametrize("suffix", [".jsonl", ".npz"])
    def test_imported_trace_matches_source(self, suffix, gzip_trace,
                                           tmp_path):
        path = _export(gzip_trace, tmp_path / f"gzip{suffix}")
        trace = trace_import.imported_trace(str(path))
        assert trace.total_instructions == gzip_trace.total_instructions
        assert trace.n_segments == gzip_trace.n_segments
        for field, array in gzip_trace.arrays().items():
            assert np.array_equal(array, trace.arrays()[field]), field

    def test_end_to_end_run_identical_modulo_name(self, gzip_trace,
                                                  tmp_path, test_sampling):
        path = _export(gzip_trace, tmp_path / "gzip.jsonl")
        name = f"import:{path}"

        def run_of(benchmark):
            runner = ExperimentRunner(
                sampling=test_sampling,
                cache=ResultCache(enabled=False),
                workload_scale=SCALE,
                methods=("simpoint", "coasts"),
            )
            return runner.run_benchmark(benchmark, CONFIG_A).to_dict()

        original, imported = run_of("gzip"), run_of(name)

        def normalise(payload):
            payload = copy.deepcopy(payload)
            payload["benchmark"] = "<name>"
            for diag in payload.get("diagnostics", {}).values():
                diag["benchmark"] = "<name>"
            return payload

        assert original != imported  # the names really do differ...
        assert normalise(original) == normalise(imported)  # ...only they

    def test_registry_resolves_import_names(self, gzip_trace, tmp_path):
        path = _export(gzip_trace, tmp_path / "gzip.npz")
        name = f"import:{path}"
        spec = registry.get_spec(name)
        assert spec.name == name
        assert load_import(str(path)).digest[:16] in spec.description

    def test_cache_invalidated_on_edit(self, gzip_trace, tmp_path):
        path = _export(gzip_trace, tmp_path / "gzip.jsonl")
        first = load_import(str(path))
        assert load_import(str(path)) is first  # digest-hit: cached
        # Edit in place: halve the stream (keeping it consistent would
        # be harder, so just expect the re-validation to notice).
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(TraceImportError):
            load_import(str(path))


class TestQuarantine:
    """Each corruption is rejected with its own counted reason."""

    def _reject(self, path, reason):
        metrics = MetricsRegistry()
        with pytest.raises(TraceImportError):
            load_import(str(path), metrics=metrics)
        assert metrics.value(TRACE_IMPORT_REJECTED, reason=reason) == 1.0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        self._reject(path, "empty")

    def test_unparseable_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        self._reject(path, "bad_json")

    def test_wrong_format_name(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "fmt.jsonl",
            lambda lines: lines[0].__setitem__("format", "gem5"),
        )
        self._reject(path, "bad_format")

    def test_wrong_version(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "ver.jsonl",
            lambda lines: lines[0].__setitem__("version",
                                               FORMAT_VERSION + 1),
        )
        self._reject(path, "bad_version")

    def test_zero_reps(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "reps.jsonl",
            lambda lines: lines[3].__setitem__("reps", 0),
        )
        self._reject(path, "bad_reps")

    def test_block_out_of_range(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "blocks.jsonl",
            lambda lines: lines[2].__setitem__("blocks", [10**6]),
        )
        self._reject(path, "block_range")

    def test_truncated_stream(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = tmp_path / "trunc.jsonl"
        lines = src.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        self._reject(path, "segment_count")

    def test_total_tampered(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "total.jsonl",
            lambda lines: lines[0].__setitem__("total_instructions", 7),
        )
        self._reject(path, "total_mismatch")

    def test_unknown_base_benchmark(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "base.jsonl",
            lambda lines: lines[0].__setitem__("benchmark", "doom3"),
        )
        self._reject(path, "unknown_base")

    def test_recursive_base_rejected(self, gzip_trace, tmp_path):
        src = _export(gzip_trace, tmp_path / "src.jsonl")
        path = _rewrite_jsonl(
            src, tmp_path / "rec.jsonl",
            lambda lines: lines[0].__setitem__("benchmark",
                                               "import:src.jsonl"),
        )
        self._reject(path, "recursive_base")

    def test_npz_missing_arrays(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, meta=np.array([json.dumps({
            "format": FORMAT_NAME, "version": FORMAT_VERSION,
            "benchmark": "gzip", "scale": SCALE,
            "n_segments": 1, "total_instructions": 1,
        })]), reps=np.array([1]))
        self._reject(path, "missing_arrays")

    def test_missing_file_is_usage_error(self, tmp_path):
        with pytest.raises(HarnessError):
            load_import(str(tmp_path / "nope.jsonl"))

    def test_unknown_suffix_is_usage_error(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("x")
        with pytest.raises(HarnessError):
            load_import(str(path))

    def test_rejections_accumulate_per_reason(self, tmp_path):
        metrics = MetricsRegistry()
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            path.write_text("")
            with pytest.raises(TraceImportError):
                load_import(str(path), metrics=metrics)
        assert metrics.value(TRACE_IMPORT_REJECTED, reason="empty") == 2.0


class TestCli:
    def test_export_then_run_round_trip(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "gzip.npz"
        assert main(["trace", "export", "gzip", "--out", str(out),
                     "--scale", "0.04"]) == 0
        assert main(["trace", "import", str(out)]) == 0
        report = capsys.readouterr().out
        assert "valid" in report and "sha256" in report
        assert main(["--scale", "0.04", "run", f"import:{out}",
                     "--methods", "simpoint"]) == 0
        assert "baseline CPI" in capsys.readouterr().out

    def test_corrupt_import_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        assert main(["trace", "import", str(path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_missing_import_exits_2(self, tmp_path, capsys):
        assert main(["trace", "import",
                     str(tmp_path / "missing.jsonl")]) == 2

    def test_export_rejects_multi_benchmark_expression(self, tmp_path,
                                                       capsys):
        assert main(["trace", "export", "quick",
                     "--out", str(tmp_path / "x.jsonl")]) == 2
        assert "exactly one" in capsys.readouterr().err
