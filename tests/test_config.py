"""Tests for machine/sampling configuration (Table I encoding)."""

import pytest

from repro.config import (
    CONFIG_A,
    CONFIG_B,
    DEFAULT_COST_MODEL,
    DEFAULT_SAMPLING,
    FINE_INTERVAL_SIZE,
    FINE_KMAX,
    RESAMPLE_THRESHOLD,
    SCALE,
    BranchPredictorConfig,
    CacheConfig,
    CostModel,
    FunctionalUnits,
    MachineConfig,
    SamplingConfig,
)
from repro.errors import ConfigError


class TestScaling:
    def test_fine_interval_is_ten_paper_m(self):
        assert FINE_INTERVAL_SIZE == 10 * SCALE

    def test_resample_threshold_is_interval_times_kmax(self):
        # The paper derives 300M as 10M * 30.
        assert RESAMPLE_THRESHOLD == FINE_INTERVAL_SIZE * FINE_KMAX


class TestCacheConfig:
    def test_table1_dl1_geometry(self):
        dl1 = CONFIG_A.dcache
        assert dl1.size == 16 * 1024
        assert dl1.assoc == 4
        assert dl1.line_size == 32
        assert dl1.n_sets == 128
        assert dl1.n_lines == 512

    def test_direct_mapped_has_one_way_per_set(self):
        il1 = CONFIG_B.icache
        assert il1.assoc == 1
        assert il1.n_sets == il1.n_lines

    def test_rejects_inconsistent_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size=1000, assoc=3, line_size=32, latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size=1024, assoc=1, line_size=32, latency=-1)


class TestMachineConfig:
    def test_config_a_matches_table1_part_a(self):
        assert CONFIG_A.issue_width == 8
        assert CONFIG_A.rob_entries == 128
        assert CONFIG_A.lsq_entries == 64
        assert CONFIG_A.functional_units.int_alu == 8
        assert CONFIG_A.functional_units.load_store == 4
        assert CONFIG_A.l2cache.size == 1024 * 1024
        assert CONFIG_A.mem_latency_first == 150

    def test_config_b_matches_table1_part_b(self):
        assert CONFIG_B.functional_units.int_alu == 6
        assert CONFIG_B.functional_units.load_store == 2
        assert CONFIG_B.functional_units.fp_add == 6
        assert CONFIG_B.dcache.size == 128 * 1024
        assert CONFIG_B.dcache.assoc == 2
        assert CONFIG_B.icache.assoc == 1
        assert CONFIG_B.l2cache.size == 4 * 1024 * 1024
        assert CONFIG_B.mem_latency_first == 200

    def test_with_name_preserves_other_fields(self):
        renamed = CONFIG_A.with_name("other")
        assert renamed.name == "other"
        assert renamed.dcache == CONFIG_A.dcache

    def test_rejects_memory_faster_than_l2(self):
        with pytest.raises(ConfigError):
            MachineConfig(name="bad", mem_latency_first=5)

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            MachineConfig(name="bad", issue_width=0)


class TestBranchPredictorConfig:
    def test_default_is_combined_8k(self):
        assert CONFIG_A.branch.kind == "combined"
        assert CONFIG_A.branch.bht_entries == 8192

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(bht_entries=1000)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(kind="neural")


class TestFunctionalUnits:
    def test_rejects_zero_units(self):
        with pytest.raises(ConfigError):
            FunctionalUnits(int_alu=0)


class TestSamplingConfig:
    def test_defaults_match_paper(self):
        assert DEFAULT_SAMPLING.fine_kmax == 30
        assert DEFAULT_SAMPLING.coarse_kmax == 3
        assert DEFAULT_SAMPLING.projection_dim == 15
        assert DEFAULT_SAMPLING.min_structure_coverage == 0.01

    def test_rejects_threshold_below_interval(self):
        with pytest.raises(ConfigError):
            SamplingConfig(fine_interval_size=1000, resample_threshold=500)

    def test_rejects_bad_coverage(self):
        with pytest.raises(ConfigError):
            SamplingConfig(min_structure_coverage=1.5)


class TestCostModel:
    def test_calibrated_ratio_reproduces_paper_speedups(self):
        """Plugging Table III's fractions into the cost model must land near
        the paper's 6.78x and 14.04x headline speedups."""
        model = DEFAULT_COST_MODEL
        t_simpoint = 0.0009 * model.detail_cost + 0.9376
        t_coasts = 0.0037 * model.detail_cost + 0.0221
        t_multilevel = 0.0005 * model.detail_cost + 0.0506
        assert t_simpoint / t_coasts == pytest.approx(6.78, rel=0.05)
        assert t_simpoint / t_multilevel == pytest.approx(14.04, rel=0.05)

    def test_rejects_detail_cheaper_than_functional(self):
        with pytest.raises(ConfigError):
            CostModel(detail_cost=0.5, functional_cost=1.0)
