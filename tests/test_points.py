"""Tests for simulation points, plans and cost accounting."""

import pytest

from repro.config import CostModel
from repro.errors import SamplingError
from repro.sampling import (
    SamplingPlan,
    SimulationPoint,
    full_detail_cost,
    plan_cost,
    speedup,
    speedup_over_full,
)


def point(start, end, weight, phase=0, index=0, children=()):
    return SimulationPoint(start=start, end=end, weight=weight, phase=phase,
                           interval_index=index, children=children)


def plan(points, total=100_000, method="test", origin=0):
    return SamplingPlan(method=method, benchmark="bench",
                        points=tuple(points), total_instructions=total,
                        n_clusters=len(points), origin=origin)


class TestSimulationPoint:
    def test_rejects_empty_range(self):
        with pytest.raises(SamplingError):
            point(10, 10, 0.5)

    def test_rejects_bad_weight(self):
        with pytest.raises(SamplingError):
            point(0, 10, 1.5)

    def test_children_must_nest(self):
        child = point(5, 15, 0.5)
        with pytest.raises(SamplingError):
            point(0, 10, 0.5, children=(child,))

    def test_leaves_of_plain_point(self):
        p = point(0, 10, 1.0)
        assert list(p.leaves()) == [p]

    def test_leaves_of_resampled_point(self):
        children = (point(0, 5, 0.6), point(5, 10, 0.4))
        p = point(0, 10, 1.0, children=children)
        assert list(p.leaves()) == list(children)
        assert p.is_resampled


class TestSamplingPlan:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(SamplingError):
            plan([point(0, 10, 0.4), point(20, 30, 0.4)])

    def test_points_must_fit_program(self):
        with pytest.raises(SamplingError):
            plan([point(0, 200_000, 1.0)], total=100_000)

    def test_child_weights_must_compose(self):
        children = (point(0, 5, 0.2),)  # parent weight 1.0
        with pytest.raises(SamplingError):
            plan([point(0, 1000, 1.0, children=children)])

    def test_accounting_simple(self):
        p = plan([point(1000, 2000, 0.3), point(5000, 6000, 0.7)])
        assert p.detail_instructions == 2000
        assert p.last_end == 6000
        assert p.functional_instructions == 4000
        assert p.detail_fraction == pytest.approx(0.02)
        assert p.last_point_position == pytest.approx(0.06)

    def test_accounting_multilevel(self):
        children = (
            point(10_000, 10_500, 0.3),
            point(30_000, 30_500, 0.3),
        )
        coarse = point(10_000, 50_000, 0.6, children=children)
        tail = point(60_000, 61_000, 0.4)
        p = plan([coarse, tail])
        # detail = two 500-inst children + the 1000-inst leaf point
        assert p.detail_instructions == 2000
        assert p.n_leaves == 3
        assert p.last_end == 61_000
        assert p.functional_instructions == 61_000 - 2000

    def test_origin_offsets_accounting(self):
        p = plan([point(10_000, 11_000, 1.0)], total=20_000, origin=5_000)
        assert p.functional_instructions == 11_000 - 5_000 - 1_000
        assert p.last_point_position == pytest.approx(6_000 / 20_000)

    def test_describe_mentions_method(self):
        text = plan([point(0, 10, 1.0)]).describe()
        assert "test" in text and "points" in text


class TestCost:
    def test_time_formula(self):
        p = plan([point(1000, 2000, 1.0)])
        cost = plan_cost(p)
        model = CostModel(detail_cost=10.0, functional_cost=1.0)
        assert cost.time(model) == 1000 * 10 + 1000 * 1

    def test_profiling_cost_optional(self):
        p = plan([point(1000, 2000, 1.0)])
        cost = plan_cost(p)
        model = CostModel(detail_cost=10.0, functional_cost=1.0,
                          profile_cost=0.5)
        assert cost.time(model, include_profiling=True) == \
            cost.time(model) + 0.5 * 100_000

    def test_speedup_ratio(self):
        fast = plan([point(1000, 2000, 1.0)])
        slow = plan([point(90_000, 91_000, 1.0)])
        assert speedup(fast, slow) > 1.0
        assert speedup(fast, slow) == pytest.approx(
            plan_cost(slow).time() / plan_cost(fast).time()
        )

    def test_speedup_over_full(self):
        p = plan([point(1000, 2000, 1.0)])
        assert speedup_over_full(p) == pytest.approx(
            full_detail_cost(100_000).time() / plan_cost(p).time()
        )
        assert speedup_over_full(p) > 10
